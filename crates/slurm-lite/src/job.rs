//! Jobs and their lifecycle.

use cwx_util::time::{SimDuration, SimTime};

/// Identifies a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(pub u64);

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job{}", self.0)
    }
}

/// Lifecycle of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Waiting in the queue.
    Pending,
    /// Executing on its allocation.
    Running,
    /// Finished successfully.
    Completed,
    /// Hit its time limit and was killed.
    TimedOut,
    /// A node in its allocation failed.
    NodeFail,
    /// Cancelled by the user.
    Cancelled,
}

impl JobState {
    /// Terminal states never change again.
    pub fn is_terminal(self) -> bool {
        !matches!(self, JobState::Pending | JobState::Running)
    }
}

/// What a user submits.
#[derive(Debug, Clone, PartialEq)]
pub struct JobRequest {
    /// Submitting user.
    pub user: String,
    /// Target partition (empty = default).
    pub partition: String,
    /// Nodes required.
    pub nodes: u32,
    /// Wall-clock limit the user declared.
    pub time_limit: SimDuration,
    /// True runtime (known to the simulator, not the scheduler).
    pub actual_runtime: SimDuration,
    /// Exclusive node access (the default; `false` allows sharing —
    /// "exclusive and/or non-exclusive access").
    pub exclusive: bool,
}

impl JobRequest {
    /// A simple exclusive batch job.
    pub fn batch(user: &str, nodes: u32, limit_secs: u64, runtime_secs: u64) -> Self {
        JobRequest {
            user: user.to_string(),
            partition: String::new(),
            nodes,
            time_limit: SimDuration::from_secs(limit_secs),
            actual_runtime: SimDuration::from_secs(runtime_secs),
            exclusive: true,
        }
    }
}

/// A job as tracked by the controller.
#[derive(Debug, Clone, PartialEq)]
pub struct Job {
    /// Id.
    pub id: JobId,
    /// The request.
    pub request: JobRequest,
    /// Current state.
    pub state: JobState,
    /// Submission time.
    pub submitted: SimTime,
    /// Start time (when allocated).
    pub started: Option<SimTime>,
    /// End time (terminal transition).
    pub ended: Option<SimTime>,
    /// Allocated node indices.
    pub allocation: Vec<u32>,
    /// Whether the backfill pass (not the head-of-queue pass) started it.
    pub backfilled: bool,
}

impl Job {
    /// Queue wait (start − submit); `None` while pending.
    pub fn wait(&self) -> Option<SimDuration> {
        self.started.map(|s| s.since(self.submitted))
    }

    /// When the job will finish if it runs to its actual runtime.
    pub fn expected_end(&self) -> Option<SimTime> {
        self.started
            .map(|s| s + self.request.actual_runtime.min(self.request.time_limit))
    }

    /// The latest time the scheduler must assume the job holds its
    /// nodes (start + declared limit).
    pub fn limit_end(&self) -> Option<SimTime> {
        self.started.map(|s| s + self.request.time_limit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminal_states() {
        assert!(!JobState::Pending.is_terminal());
        assert!(!JobState::Running.is_terminal());
        assert!(JobState::Completed.is_terminal());
        assert!(JobState::TimedOut.is_terminal());
        assert!(JobState::NodeFail.is_terminal());
        assert!(JobState::Cancelled.is_terminal());
    }

    #[test]
    fn job_time_accessors() {
        let mut j = Job {
            id: JobId(1),
            request: JobRequest::batch("u", 2, 100, 60),
            state: JobState::Pending,
            submitted: SimTime::from_nanos(0),
            started: None,
            ended: None,
            allocation: vec![],
            backfilled: false,
        };
        assert!(j.wait().is_none());
        j.started = Some(SimTime::ZERO + SimDuration::from_secs(10));
        assert_eq!(j.wait().unwrap().as_millis(), 10_000);
        assert_eq!(
            j.expected_end().unwrap(),
            SimTime::ZERO + SimDuration::from_secs(70),
            "actual runtime below the limit"
        );
        assert_eq!(
            j.limit_end().unwrap(),
            SimTime::ZERO + SimDuration::from_secs(110)
        );
    }

    #[test]
    fn runtime_clamped_by_limit() {
        let j = Job {
            id: JobId(1),
            request: JobRequest::batch("u", 1, 50, 500),
            state: JobState::Running,
            submitted: SimTime::ZERO,
            started: Some(SimTime::ZERO),
            ended: None,
            allocation: vec![0],
            backfilled: false,
        };
        assert_eq!(
            j.expected_end().unwrap(),
            SimTime::ZERO + SimDuration::from_secs(50)
        );
    }
}
