//! SLURM-lite: the Simple Linux Utility for Resource Management the
//! paper presents as future work (§6), reproduced as a library.
//!
//! "SLURM provides three key functions. First, it allocates exclusive
//! and/or non-exclusive access to resources (compute nodes) to users for
//! some duration of time so they can perform work. Second, it provides a
//! framework for starting, executing, and monitoring work (typically a
//! parallel job) on a set of allocated nodes. Finally, it arbitrates
//! conflicting requests for resources by managing a queue of pending
//! work. SLURM is not a sophisticated batch system, but it does provide
//! an Applications Programming Interface (API) for integration with
//! external schedulers such as The Maui Scheduler. ... SLURM is highly
//! tolerant of system failures including failure of the node executing
//! its control functions."
//!
//! * [`job`] — jobs, requests, lifecycle states.
//! * [`controller`] — the control daemon: node registry, partitions,
//!   pending queue, allocation, completion, node-failure handling, and
//!   failover (the controller state is cloneable; a backup resumes from
//!   a replica).
//! * [`sched`] — FIFO and EASY-backfill schedulers, plus the external
//!   scheduler hook (a priority function — the Maui integration point).
//! * [`trace`] — synthetic job-trace generation for the experiments.

#![warn(missing_docs)]

pub mod controller;
pub mod job;
pub mod sched;
pub mod trace;

pub use controller::{Controller, ControllerStats, NodeAllocState, SlurmError};
pub use job::{JobId, JobRequest, JobState};
pub use sched::SchedulerKind;
