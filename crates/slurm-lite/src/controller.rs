//! The control daemon: queue, allocation, completion, failover.

use std::collections::BTreeMap;

use cwx_util::time::SimTime;

use crate::job::{Job, JobId, JobRequest, JobState};
use crate::sched::{fifo_priority, PriorityFn, SchedulerKind};

/// Allocation state of one compute node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeAllocState {
    /// Free.
    Idle,
    /// Held by a job.
    Allocated(JobId),
    /// Failed or drained.
    Down,
}

/// API errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SlurmError {
    /// Request asks for more nodes than the partition has.
    TooLarge {
        /// Nodes requested.
        requested: u32,
        /// Nodes in the partition.
        partition_size: u32,
    },
    /// Unknown partition name.
    NoSuchPartition(String),
    /// Unknown job.
    NoSuchJob(JobId),
    /// Job is already terminal.
    AlreadyFinished(JobId),
}

impl std::fmt::Display for SlurmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SlurmError::TooLarge {
                requested,
                partition_size,
            } => {
                write!(
                    f,
                    "job needs {requested} nodes, partition has {partition_size}"
                )
            }
            SlurmError::NoSuchPartition(p) => write!(f, "no such partition: {p}"),
            SlurmError::NoSuchJob(id) => write!(f, "no such job: {id}"),
            SlurmError::AlreadyFinished(id) => write!(f, "{id} already finished"),
        }
    }
}

impl std::error::Error for SlurmError {}

/// Aggregate counters.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ControllerStats {
    /// Jobs submitted.
    pub submitted: u64,
    /// Jobs completed successfully.
    pub completed: u64,
    /// Jobs killed at their time limit.
    pub timed_out: u64,
    /// Jobs lost to node failures.
    pub node_failed: u64,
    /// Jobs cancelled.
    pub cancelled: u64,
    /// Jobs started by the backfill pass.
    pub backfilled: u64,
    /// Integral of allocated nodes over time (node-seconds).
    pub busy_node_secs: f64,
    /// Sum of queue waits of started jobs (seconds).
    pub total_wait_secs: f64,
}

/// The SLURM-lite control daemon. `Clone` is the failover mechanism:
/// replicate the controller onto a backup host; if the primary dies the
/// replica carries on (every piece of state is plain data).
#[derive(Debug, Clone)]
pub struct Controller {
    nodes: Vec<NodeAllocState>,
    /// shared (non-exclusive) occupants per node, one cpu slot each
    shared: Vec<Vec<JobId>>,
    /// draining nodes: no new work lands; existing work runs out
    draining: Vec<bool>,
    /// cpu slots per node available to shared jobs
    cpus_per_node: u32,
    partitions: BTreeMap<String, Vec<u32>>,
    jobs: BTreeMap<JobId, Job>,
    /// pending job ids in submission order
    queue: Vec<JobId>,
    next_id: u64,
    kind: SchedulerKind,
    priority: PriorityFn,
    requeue_on_node_fail: bool,
    stats: ControllerStats,
    last_advance: SimTime,
}

impl Controller {
    /// A controller managing `n_nodes` in one default partition.
    pub fn new(n_nodes: u32, kind: SchedulerKind) -> Self {
        let mut partitions = BTreeMap::new();
        partitions.insert(String::new(), (0..n_nodes).collect());
        Controller {
            nodes: vec![NodeAllocState::Idle; n_nodes as usize],
            shared: vec![Vec::new(); n_nodes as usize],
            draining: vec![false; n_nodes as usize],
            cpus_per_node: 2,
            partitions,
            jobs: BTreeMap::new(),
            queue: Vec::new(),
            next_id: 1,
            kind,
            priority: fifo_priority,
            requeue_on_node_fail: true,
            stats: ControllerStats::default(),
            last_advance: SimTime::ZERO,
        }
    }

    /// Install an external scheduler's priority function (the Maui
    /// hook).
    pub fn set_priority_fn(&mut self, f: PriorityFn) {
        self.priority = f;
    }

    /// Whether jobs hit by node failures go back in the queue.
    pub fn set_requeue_on_node_fail(&mut self, requeue: bool) {
        self.requeue_on_node_fail = requeue;
    }

    /// Define a named partition over specific node indices.
    pub fn add_partition(&mut self, name: &str, nodes: Vec<u32>) {
        self.partitions.insert(name.to_string(), nodes);
    }

    /// Counters.
    pub fn stats(&self) -> ControllerStats {
        self.stats
    }

    /// A job's current record.
    pub fn job(&self, id: JobId) -> Option<&Job> {
        self.jobs.get(&id)
    }

    /// All jobs (for reporting).
    pub fn jobs(&self) -> impl Iterator<Item = &Job> {
        self.jobs.values()
    }

    /// Pending queue length.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Node allocation states.
    pub fn nodes(&self) -> &[NodeAllocState] {
        &self.nodes
    }

    /// Set the cpu slots shared jobs may use per node (default 2,
    /// dual-processor nodes of the era).
    pub fn set_cpus_per_node(&mut self, cpus: u32) {
        self.cpus_per_node = cpus.max(1);
    }

    /// Shared occupants of a node.
    pub fn shared_jobs(&self, node: u32) -> &[JobId] {
        &self.shared[node as usize]
    }

    /// Whether a node currently holds work (exclusive or shared).
    pub fn node_busy(&self, node: u32) -> bool {
        matches!(self.nodes[node as usize], NodeAllocState::Allocated(_))
            || !self.shared[node as usize].is_empty()
    }

    /// Start draining a node: the scheduler places no new work on it;
    /// work already there runs to completion. This is the handshake the
    /// ClusterWorX control plane uses before power actions on allocated
    /// nodes (paper §6).
    pub fn drain_node(&mut self, node: u32) {
        self.draining[node as usize] = true;
    }

    /// Return a draining node to scheduling service.
    pub fn undrain_node(&mut self, node: u32) {
        self.draining[node as usize] = false;
    }

    /// Whether a drain has been requested for a node.
    pub fn is_draining(&self, node: u32) -> bool {
        self.draining[node as usize]
    }

    /// Whether a requested drain has completed: the drain mark is set
    /// and no job (exclusive or shared) remains on the node.
    pub fn is_drained(&self, node: u32) -> bool {
        self.draining[node as usize] && !self.node_busy(node)
    }

    /// Nodes in a partition free for an exclusive allocation: idle relay
    /// state and no shared occupants.
    fn idle_in(&self, partition: &[u32]) -> Vec<u32> {
        partition
            .iter()
            .copied()
            .filter(|&i| {
                self.nodes[i as usize] == NodeAllocState::Idle
                    && self.shared[i as usize].is_empty()
                    && !self.draining[i as usize]
            })
            .collect()
    }

    /// Nodes in a partition with at least one free shared cpu slot
    /// (not down, not exclusively held, slot available).
    fn shared_capacity_in(&self, partition: &[u32]) -> Vec<u32> {
        partition
            .iter()
            .copied()
            .filter(|&i| {
                self.nodes[i as usize] == NodeAllocState::Idle
                    && (self.shared[i as usize].len() as u32) < self.cpus_per_node
                    && !self.draining[i as usize]
            })
            .collect()
    }

    /// Submit a job. It enters the pending queue; call
    /// [`Controller::advance`] to let the scheduler place it.
    pub fn submit(&mut self, now: SimTime, request: JobRequest) -> Result<JobId, SlurmError> {
        let partition = self
            .partitions
            .get(&request.partition)
            .ok_or_else(|| SlurmError::NoSuchPartition(request.partition.clone()))?;
        if request.nodes > partition.len() as u32 || request.nodes == 0 {
            return Err(SlurmError::TooLarge {
                requested: request.nodes,
                partition_size: partition.len() as u32,
            });
        }
        let id = JobId(self.next_id);
        self.next_id += 1;
        self.jobs.insert(
            id,
            Job {
                id,
                request,
                state: JobState::Pending,
                submitted: now,
                started: None,
                ended: None,
                allocation: vec![],
                backfilled: false,
            },
        );
        self.queue.push(id);
        self.stats.submitted += 1;
        Ok(id)
    }

    /// Cancel a pending or running job.
    pub fn cancel(&mut self, now: SimTime, id: JobId) -> Result<(), SlurmError> {
        let job = self.jobs.get_mut(&id).ok_or(SlurmError::NoSuchJob(id))?;
        if job.state.is_terminal() {
            return Err(SlurmError::AlreadyFinished(id));
        }
        let allocation = std::mem::take(&mut job.allocation);
        job.state = JobState::Cancelled;
        job.ended = Some(now);
        self.stats.cancelled += 1;
        let exclusive = self.jobs[&id].request.exclusive;
        for n in allocation {
            if exclusive {
                self.nodes[n as usize] = NodeAllocState::Idle;
            } else {
                self.shared[n as usize].retain(|&j| j != id);
            }
        }
        self.queue.retain(|&q| q != id);
        Ok(())
    }

    /// Mark a node failed. The job holding it (if any) dies with
    /// `NodeFail` and is optionally requeued.
    pub fn node_fail(&mut self, now: SimTime, node: u32) {
        let prev = self.nodes[node as usize];
        self.nodes[node as usize] = NodeAllocState::Down;
        // shared occupants die with the node
        for id in std::mem::take(&mut self.shared[node as usize]) {
            let job = self.jobs.get_mut(&id).expect("shared job exists");
            if job.state != JobState::Running {
                continue;
            }
            let allocation = std::mem::take(&mut job.allocation);
            job.state = JobState::NodeFail;
            job.ended = Some(now);
            let request = job.request.clone();
            self.stats.node_failed += 1;
            for n in allocation {
                if n != node {
                    self.shared[n as usize].retain(|&j| j != id);
                }
            }
            if self.requeue_on_node_fail {
                let _ = self.submit(now, request);
            }
        }
        if let NodeAllocState::Allocated(id) = prev {
            let job = self.jobs.get_mut(&id).expect("allocated job exists");
            let allocation = std::mem::take(&mut job.allocation);
            job.state = JobState::NodeFail;
            job.ended = Some(now);
            let request = job.request.clone();
            self.stats.node_failed += 1;
            for n in allocation {
                if n != node {
                    self.nodes[n as usize] = NodeAllocState::Idle;
                }
            }
            if self.requeue_on_node_fail {
                // resubmitted under a fresh id, keeping queue fairness
                let _ = self.submit(now, request);
            }
        }
    }

    /// Return a failed node to service.
    pub fn node_resume(&mut self, node: u32) {
        if self.nodes[node as usize] == NodeAllocState::Down {
            self.nodes[node as usize] = NodeAllocState::Idle;
        }
    }

    /// The next instant something completes on its own (for simulation
    /// drivers).
    pub fn next_completion(&self) -> Option<SimTime> {
        self.jobs
            .values()
            .filter(|j| j.state == JobState::Running)
            .filter_map(|j| j.expected_end())
            .min()
    }

    /// Advance to `now`: finish due jobs, then run the scheduler.
    pub fn advance(&mut self, now: SimTime) {
        // utilisation integral
        let dt = now.since(self.last_advance).as_secs_f64();
        if dt > 0.0 {
            let busy = self
                .nodes
                .iter()
                .zip(&self.shared)
                .filter(|(n, shared)| {
                    matches!(n, NodeAllocState::Allocated(_)) || !shared.is_empty()
                })
                .count();
            self.stats.busy_node_secs += busy as f64 * dt;
            self.last_advance = now;
        }

        // completions
        let due: Vec<JobId> = self
            .jobs
            .values()
            .filter(|j| j.state == JobState::Running)
            .filter(|j| j.expected_end().is_some_and(|e| e <= now))
            .map(|j| j.id)
            .collect();
        for id in due {
            let job = self.jobs.get_mut(&id).expect("running job exists");
            let timed_out = job.request.actual_runtime > job.request.time_limit;
            job.state = if timed_out {
                JobState::TimedOut
            } else {
                JobState::Completed
            };
            job.ended = job.expected_end();
            let allocation = std::mem::take(&mut job.allocation);
            let exclusive = job.request.exclusive;
            if timed_out {
                self.stats.timed_out += 1;
            } else {
                self.stats.completed += 1;
            }
            for n in allocation {
                if exclusive {
                    if self.nodes[n as usize] == NodeAllocState::Allocated(id) {
                        self.nodes[n as usize] = NodeAllocState::Idle;
                    }
                } else {
                    self.shared[n as usize].retain(|&j| j != id);
                }
            }
        }

        self.schedule(now);
    }

    fn start_job(&mut self, now: SimTime, id: JobId, nodes: Vec<u32>, backfilled: bool) {
        let exclusive = self.jobs[&id].request.exclusive;
        for &n in &nodes {
            if exclusive {
                self.nodes[n as usize] = NodeAllocState::Allocated(id);
            } else {
                self.shared[n as usize].push(id);
            }
        }
        let job = self.jobs.get_mut(&id).expect("pending job exists");
        job.state = JobState::Running;
        job.started = Some(now);
        job.allocation = nodes;
        job.backfilled = backfilled;
        self.stats.total_wait_secs += now.since(job.submitted).as_secs_f64();
        if backfilled {
            self.stats.backfilled += 1;
        }
        self.queue.retain(|&q| q != id);
    }

    /// One scheduling pass.
    fn schedule(&mut self, now: SimTime) {
        // order pending ids by (priority desc, submit order)
        let mut order: Vec<JobId> = self.queue.clone();
        let pri = self.priority;
        order.sort_by_key(|id| {
            let j = &self.jobs[id];
            (std::cmp::Reverse(pri(j, now)), j.submitted, j.id)
        });

        let mut i = 0;
        while i < order.len() {
            let id = order[i];
            let (nodes_needed, partition, exclusive) = {
                let j = &self.jobs[&id];
                (
                    j.request.nodes,
                    self.partitions[&j.request.partition].clone(),
                    j.request.exclusive,
                )
            };
            let idle = if exclusive {
                self.idle_in(&partition)
            } else {
                self.shared_capacity_in(&partition)
            };
            if idle.len() as u32 >= nodes_needed {
                let alloc: Vec<u32> = idle.into_iter().take(nodes_needed as usize).collect();
                self.start_job(now, id, alloc, false);
                i += 1;
                continue;
            }
            // head job blocked
            if self.kind == SchedulerKind::Fifo {
                return;
            }
            self.backfill_pass(now, id, &partition, &order[i + 1..]);
            return;
        }
    }

    /// EASY backfill: compute the head job's reservation, start later
    /// jobs that cannot delay it.
    fn backfill_pass(&mut self, now: SimTime, head: JobId, partition: &[u32], rest: &[JobId]) {
        let head_needs = self.jobs[&head].request.nodes as usize;
        // when do nodes come back? assume running jobs hold until their
        // declared limit (the scheduler cannot see actual runtimes)
        let mut releases: Vec<(SimTime, u32)> = self
            .jobs
            .values()
            .filter(|j| j.state == JobState::Running)
            .filter_map(|j| j.limit_end().map(|e| (e, j.allocation.len() as u32)))
            .collect();
        releases.sort();
        let idle_now = self.idle_in(partition).len();
        let mut free = idle_now;
        let mut shadow = SimTime::MAX;
        for (t, n) in &releases {
            free += *n as usize;
            if free >= head_needs {
                shadow = *t;
                break;
            }
        }
        // nodes free at the shadow time beyond what the head will take
        let extra_at_shadow = free.saturating_sub(head_needs);

        for &id in rest {
            let (nodes_needed, time_limit, exclusive) = {
                let j = &self.jobs[&id];
                if j.request.partition.as_str() != "" && partition.is_empty() {
                    continue;
                }
                (
                    j.request.nodes as usize,
                    j.request.time_limit,
                    j.request.exclusive,
                )
            };
            let idle = if exclusive {
                self.idle_in(partition)
            } else {
                self.shared_capacity_in(partition)
            };
            if idle.len() < nodes_needed {
                continue;
            }
            let fits_before_shadow = shadow == SimTime::MAX || now + time_limit <= shadow;
            let fits_beside_head = nodes_needed <= extra_at_shadow;
            if fits_before_shadow || fits_beside_head {
                let alloc: Vec<u32> = idle.into_iter().take(nodes_needed).collect();
                self.start_job(now, id, alloc, true);
            }
        }
    }

    /// Cluster utilisation over `[0, now]`, in `[0,1]`.
    pub fn utilization(&self, now: SimTime) -> f64 {
        let total = self.nodes.len() as f64 * now.as_secs_f64();
        if total <= 0.0 {
            0.0
        } else {
            self.stats.busy_node_secs / total
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::ZERO + cwx_util::time::SimDuration::from_secs(s)
    }

    #[test]
    fn submit_and_run_to_completion() {
        let mut c = Controller::new(4, SchedulerKind::Fifo);
        let id = c
            .submit(t(0), JobRequest::batch("alice", 2, 100, 60))
            .unwrap();
        c.advance(t(0));
        assert_eq!(c.job(id).unwrap().state, JobState::Running);
        assert_eq!(c.job(id).unwrap().allocation.len(), 2);
        assert_eq!(c.next_completion(), Some(t(60)));
        c.advance(t(60));
        assert_eq!(c.job(id).unwrap().state, JobState::Completed);
        assert!(c.nodes().iter().all(|n| *n == NodeAllocState::Idle));
        assert_eq!(c.stats().completed, 1);
    }

    #[test]
    fn exclusive_queueing_arbitrates_conflicts() {
        let mut c = Controller::new(4, SchedulerKind::Fifo);
        let a = c.submit(t(0), JobRequest::batch("a", 3, 100, 100)).unwrap();
        let b = c.submit(t(0), JobRequest::batch("b", 3, 100, 100)).unwrap();
        c.advance(t(0));
        assert_eq!(c.job(a).unwrap().state, JobState::Running);
        assert_eq!(c.job(b).unwrap().state, JobState::Pending);
        c.advance(t(100));
        assert_eq!(c.job(b).unwrap().state, JobState::Running);
        assert_eq!(c.job(b).unwrap().wait().unwrap().as_millis(), 100_000);
    }

    #[test]
    fn time_limit_enforced() {
        let mut c = Controller::new(1, SchedulerKind::Fifo);
        let id = c.submit(t(0), JobRequest::batch("a", 1, 50, 500)).unwrap();
        c.advance(t(0));
        c.advance(t(50));
        assert_eq!(c.job(id).unwrap().state, JobState::TimedOut);
        assert_eq!(c.stats().timed_out, 1);
    }

    #[test]
    fn fifo_head_blocks_backfill_does_not() {
        let build = |kind| {
            let mut c = Controller::new(4, kind);
            // wide long job takes everything
            c.submit(t(0), JobRequest::batch("w", 4, 1000, 1000))
                .unwrap();
            c.advance(t(0));
            // head needs all 4 nodes -> blocked until t=1000
            c.submit(t(1), JobRequest::batch("head", 4, 1000, 1000))
                .unwrap();
            // a small short job that fits in the shadow... no idle nodes
            // though; free a couple first
            c
        };
        // variant with idle nodes: wide job takes 2 of 4
        let run = |kind| {
            let mut c = Controller::new(4, kind);
            c.submit(t(0), JobRequest::batch("w", 2, 1000, 1000))
                .unwrap();
            c.advance(t(0));
            let head = c
                .submit(t(1), JobRequest::batch("head", 4, 1000, 1000))
                .unwrap();
            let small = c
                .submit(t(2), JobRequest::batch("small", 1, 100, 100))
                .unwrap();
            c.advance(t(2));
            (c.job(head).unwrap().state, c.job(small).unwrap().state)
        };
        let _ = build;
        let (head_f, small_f) = run(SchedulerKind::Fifo);
        assert_eq!(head_f, JobState::Pending);
        assert_eq!(
            small_f,
            JobState::Pending,
            "FIFO: blocked head blocks the queue"
        );
        let (head_b, small_b) = run(SchedulerKind::Backfill);
        assert_eq!(head_b, JobState::Pending);
        assert_eq!(
            small_b,
            JobState::Running,
            "backfill slips the short job in"
        );
    }

    #[test]
    fn backfill_cannot_delay_the_head_job() {
        let mut c = Controller::new(4, SchedulerKind::Backfill);
        c.submit(t(0), JobRequest::batch("w", 2, 1000, 1000))
            .unwrap();
        c.advance(t(0));
        let head = c
            .submit(t(1), JobRequest::batch("head", 4, 1000, 1000))
            .unwrap();
        // long job that WOULD delay the head (2 nodes, 5000s > shadow)
        let long = c
            .submit(t(2), JobRequest::batch("long", 2, 5000, 5000))
            .unwrap();
        c.advance(t(2));
        assert_eq!(
            c.job(long).unwrap().state,
            JobState::Pending,
            "must not delay head"
        );
        // head eventually runs at the shadow time
        c.advance(t(1000));
        assert_eq!(c.job(head).unwrap().state, JobState::Running);
    }

    #[test]
    fn node_failure_kills_and_requeues() {
        let mut c = Controller::new(3, SchedulerKind::Fifo);
        let id = c
            .submit(t(0), JobRequest::batch("a", 2, 1000, 500))
            .unwrap();
        c.advance(t(0));
        let victim = c.job(id).unwrap().allocation[0];
        c.node_fail(t(100), victim);
        assert_eq!(c.job(id).unwrap().state, JobState::NodeFail);
        assert_eq!(c.stats().node_failed, 1);
        // requeued under a new id and running on surviving nodes
        c.advance(t(100));
        let requeued: Vec<&Job> = c.jobs().filter(|j| j.state == JobState::Running).collect();
        assert_eq!(requeued.len(), 1);
        assert!(!requeued[0].allocation.contains(&victim));
        // failed node comes back
        c.node_resume(victim);
        assert_eq!(c.nodes()[victim as usize], NodeAllocState::Idle);
    }

    #[test]
    fn cancel_pending_and_running() {
        let mut c = Controller::new(2, SchedulerKind::Fifo);
        let a = c.submit(t(0), JobRequest::batch("a", 2, 100, 100)).unwrap();
        let b = c.submit(t(0), JobRequest::batch("b", 2, 100, 100)).unwrap();
        c.advance(t(0));
        c.cancel(t(10), a).unwrap();
        assert_eq!(c.job(a).unwrap().state, JobState::Cancelled);
        c.advance(t(10));
        assert_eq!(
            c.job(b).unwrap().state,
            JobState::Running,
            "freed nodes reused"
        );
        c.cancel(t(20), b).unwrap();
        assert_eq!(c.cancel(t(21), b), Err(SlurmError::AlreadyFinished(b)));
    }

    #[test]
    fn oversized_and_bad_partition_rejected() {
        let mut c = Controller::new(2, SchedulerKind::Fifo);
        assert!(matches!(
            c.submit(t(0), JobRequest::batch("a", 3, 10, 10)),
            Err(SlurmError::TooLarge {
                requested: 3,
                partition_size: 2
            })
        ));
        let mut req = JobRequest::batch("a", 1, 10, 10);
        req.partition = "gpu".into();
        assert!(matches!(
            c.submit(t(0), req),
            Err(SlurmError::NoSuchPartition(_))
        ));
    }

    #[test]
    fn partitions_scope_allocation() {
        let mut c = Controller::new(4, SchedulerKind::Fifo);
        c.add_partition("io", vec![2, 3]);
        let mut req = JobRequest::batch("a", 2, 100, 100);
        req.partition = "io".into();
        let id = c.submit(t(0), req).unwrap();
        c.advance(t(0));
        let alloc = &c.job(id).unwrap().allocation;
        assert!(
            alloc.iter().all(|n| *n >= 2),
            "io partition nodes only: {alloc:?}"
        );
    }

    #[test]
    fn failover_replica_carries_on() {
        let mut primary = Controller::new(4, SchedulerKind::Backfill);
        for k in 0..6 {
            primary
                .submit(t(0), JobRequest::batch("u", 1 + k % 3, 200, 100 + k as u64))
                .unwrap();
        }
        primary.advance(t(0));
        // replicate to the backup host, then the primary dies
        let mut backup = primary.clone();
        drop(primary);
        while let Some(next) = backup.next_completion() {
            backup.advance(next);
        }
        let s = backup.stats();
        assert_eq!(s.completed, 6, "all jobs finish under the replica: {s:?}");
        assert_eq!(backup.queue_len(), 0);
    }

    #[test]
    fn external_priority_reorders_queue() {
        let mut c = Controller::new(2, SchedulerKind::Backfill);
        c.set_priority_fn(crate::sched::maui_like_priority);
        // hold the cluster briefly so both submissions queue
        let hold = c
            .submit(t(0), JobRequest::batch("hold", 2, 50, 50))
            .unwrap();
        c.advance(t(0));
        let big = c
            .submit(t(1), JobRequest::batch("big", 2, 10_000, 100))
            .unwrap();
        let small = c
            .submit(t(2), JobRequest::batch("small", 1, 60, 60))
            .unwrap();
        c.advance(t(50));
        let _ = hold;
        // despite 'big' being first by submission, maui-like priority
        // runs 'small' first
        assert_eq!(c.job(small).unwrap().state, JobState::Running);
        assert_eq!(c.job(big).unwrap().state, JobState::Pending);
    }

    #[test]
    fn drain_completes_when_the_job_leaves() {
        let mut c = Controller::new(2, SchedulerKind::Fifo);
        let a = c.submit(t(0), JobRequest::batch("a", 1, 100, 60)).unwrap();
        c.advance(t(0));
        let node = c.job(a).unwrap().allocation[0];
        c.drain_node(node);
        assert!(c.is_draining(node));
        assert!(!c.is_drained(node), "job still running");
        assert!(c.node_busy(node));
        // no new work lands on a draining node
        let b = c.submit(t(1), JobRequest::batch("b", 2, 100, 60)).unwrap();
        c.advance(t(1));
        assert_eq!(
            c.job(b).unwrap().state,
            JobState::Pending,
            "needs the draining node, must wait"
        );
        // the running job finishes; the drain is complete
        c.advance(t(60));
        assert!(c.is_drained(node));
        assert!(!c.node_busy(node));
        assert_eq!(c.job(b).unwrap().state, JobState::Pending, "still fenced");
        // undrain returns the node to service
        c.undrain_node(node);
        c.advance(t(61));
        assert_eq!(c.job(b).unwrap().state, JobState::Running);
    }

    #[test]
    fn drain_on_an_idle_node_is_immediately_complete() {
        let mut c = Controller::new(1, SchedulerKind::Fifo);
        assert!(!c.is_drained(0), "no drain requested");
        c.drain_node(0);
        assert!(c.is_drained(0));
    }

    #[test]
    fn drain_fences_shared_slots_too() {
        let mut c = Controller::new(1, SchedulerKind::Fifo);
        c.set_cpus_per_node(2);
        let shared = JobRequest {
            exclusive: false,
            ..JobRequest::batch("s", 1, 100, 60)
        };
        let a = c.submit(t(0), shared.clone()).unwrap();
        c.advance(t(0));
        c.drain_node(0);
        assert!(!c.is_drained(0), "shared occupant still running");
        // the free shared slot is fenced
        let b = c.submit(t(1), shared).unwrap();
        c.advance(t(1));
        assert_eq!(c.job(b).unwrap().state, JobState::Pending);
        c.advance(t(60));
        assert!(c.is_drained(0));
        let _ = a;
    }

    #[test]
    fn utilization_integral() {
        let mut c = Controller::new(2, SchedulerKind::Fifo);
        c.submit(t(0), JobRequest::batch("a", 2, 100, 100)).unwrap();
        c.advance(t(0));
        c.advance(t(50));
        c.advance(t(100));
        // both nodes busy for 100 s of 100 s
        assert!((c.utilization(t(100)) - 1.0).abs() < 1e-9);
        c.advance(t(200));
        assert!((c.utilization(t(200)) - 0.5).abs() < 1e-9);
    }
}

#[cfg(test)]
mod shared_tests {
    use super::*;
    use cwx_util::time::SimDuration;

    fn t(s: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(s)
    }

    fn shared_req(nodes: u32, limit: u64, runtime: u64) -> JobRequest {
        JobRequest {
            exclusive: false,
            ..JobRequest::batch("s", nodes, limit, runtime)
        }
    }

    #[test]
    fn shared_jobs_colocate_up_to_cpu_slots() {
        let mut c = Controller::new(1, SchedulerKind::Fifo);
        c.set_cpus_per_node(2);
        let a = c.submit(t(0), shared_req(1, 100, 100)).unwrap();
        let b = c.submit(t(0), shared_req(1, 100, 100)).unwrap();
        let third = c.submit(t(0), shared_req(1, 100, 100)).unwrap();
        c.advance(t(0));
        assert_eq!(c.job(a).unwrap().state, JobState::Running);
        assert_eq!(
            c.job(b).unwrap().state,
            JobState::Running,
            "two shared jobs on one dual-cpu node"
        );
        assert_eq!(
            c.job(third).unwrap().state,
            JobState::Pending,
            "no third slot"
        );
        assert_eq!(c.shared_jobs(0), &[a, b]);
        // a completes, the third slips in
        c.advance(t(100));
        assert_eq!(c.job(third).unwrap().state, JobState::Running);
    }

    #[test]
    fn exclusive_jobs_refuse_shared_company() {
        // backfill lets the small job pass the blocked 2-node head
        let mut c = Controller::new(2, SchedulerKind::Backfill);
        let shared = c.submit(t(0), shared_req(1, 1000, 1000)).unwrap();
        c.advance(t(0));
        let node_of_shared = c.job(shared).unwrap().allocation[0];
        // an exclusive 2-node job cannot start: one node is shared-occupied
        let excl = c.submit(t(1), JobRequest::batch("e", 2, 100, 100)).unwrap();
        c.advance(t(1));
        assert_eq!(c.job(excl).unwrap().state, JobState::Pending);
        // but an exclusive 1-node job lands on the other node
        let one = c.submit(t(2), JobRequest::batch("o", 1, 100, 100)).unwrap();
        c.advance(t(2));
        assert_eq!(c.job(one).unwrap().state, JobState::Running);
        assert_ne!(c.job(one).unwrap().allocation[0], node_of_shared);
    }

    #[test]
    fn shared_jobs_cannot_enter_exclusive_nodes() {
        let mut c = Controller::new(1, SchedulerKind::Fifo);
        let excl = c
            .submit(t(0), JobRequest::batch("e", 1, 1000, 1000))
            .unwrap();
        c.advance(t(0));
        assert_eq!(c.job(excl).unwrap().state, JobState::Running);
        let sh = c.submit(t(1), shared_req(1, 100, 100)).unwrap();
        c.advance(t(1));
        assert_eq!(c.job(sh).unwrap().state, JobState::Pending);
    }

    #[test]
    fn node_failure_kills_shared_occupants_too() {
        let mut c = Controller::new(2, SchedulerKind::Fifo);
        let a = c.submit(t(0), shared_req(1, 1000, 500)).unwrap();
        let b = c.submit(t(0), shared_req(1, 1000, 500)).unwrap();
        c.advance(t(0));
        let node = c.job(a).unwrap().allocation[0];
        assert_eq!(c.job(b).unwrap().allocation[0], node, "colocated");
        c.node_fail(t(10), node);
        assert_eq!(c.job(a).unwrap().state, JobState::NodeFail);
        assert_eq!(c.job(b).unwrap().state, JobState::NodeFail);
        assert_eq!(c.stats().node_failed, 2);
        // both requeued and restarted on the surviving node
        c.advance(t(10));
        let running = c.jobs().filter(|j| j.state == JobState::Running).count();
        assert_eq!(running, 2);
    }

    #[test]
    fn cancel_frees_a_shared_slot() {
        let mut c = Controller::new(1, SchedulerKind::Fifo);
        let a = c.submit(t(0), shared_req(1, 1000, 1000)).unwrap();
        let b = c.submit(t(0), shared_req(1, 1000, 1000)).unwrap();
        c.advance(t(0));
        c.cancel(t(5), a).unwrap();
        assert_eq!(c.shared_jobs(0), &[b]);
        let d = c.submit(t(6), shared_req(1, 100, 100)).unwrap();
        c.advance(t(6));
        assert_eq!(c.job(d).unwrap().state, JobState::Running);
    }

    #[test]
    fn shared_failover_replica_consistent() {
        let mut c = Controller::new(4, SchedulerKind::Backfill);
        for k in 0..8u64 {
            let _ = c.submit(t(0), shared_req(1 + (k % 2) as u32, 300, 100 + k));
        }
        c.advance(t(0));
        let mut replica = c.clone();
        drop(c);
        while let Some(next) = replica.next_completion() {
            replica.advance(next);
        }
        assert_eq!(replica.stats().completed, 8);
        assert!(replica.nodes().iter().all(|n| *n == NodeAllocState::Idle));
        assert!((0..4).all(|n| replica.shared_jobs(n).is_empty()));
    }
}
