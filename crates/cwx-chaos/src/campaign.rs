//! Fault campaigns: deterministic, timestamped schedules of faults
//! across every layer of the simulated cluster.
//!
//! A [`Campaign`] is data, not code: a seed, a fleet size, a duration
//! and a list of [`FaultEvent`]s. The same campaign under the same seed
//! replays byte-for-byte — [`crate::run_campaign`] hashes the control
//! plane's audit trail so reproducibility is checkable, not aspirational.

use std::fmt;

/// One injectable fault. The variants span the injection surface the
/// framework exposes: network segments, ICE Box chassis, monitoring
/// agents, node hardware, and temperature probes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// Unplug a rack segment's uplink (needs the rack topology).
    PartitionRack(usize),
    /// Plug the rack back in.
    HealRack(usize),
    /// Degrade a rack segment to the given per-receiver loss.
    RackLoss(usize, f64),
    /// Renegotiate a rack segment down to the given bandwidth (bytes/s).
    RackBandwidth(usize, u64),
    /// Crash and restart a chassis controller: relays hold, pending
    /// sequenced energizations are lost.
    ChassisRestart(usize),
    /// Kill a node's monitoring daemon (a reboot restarts it).
    AgentCrash(u32),
    /// Wedge a node's monitoring daemon for the given seconds.
    AgentHang(u32, f64),
    /// Delay every report from a node by the given seconds.
    AgentDelay(u32, f64),
    /// Duplicate every report from a node.
    AgentDuplicate(u32),
    /// Clear any agent fault on a node (daemon restored).
    AgentRecover(u32),
    /// Panic a node's kernel.
    KernelPanic(u32),
    /// Stop a node's CPU fan.
    FanFailure(u32),
    /// Kill a node's power supply.
    PsuFailure(u32),
    /// Start a runaway memory leak on a node.
    MemoryLeak(u32),
    /// Freeze a node's chassis temperature probe at its last reading.
    ProbeStuck(u32),
    /// Skew a node's chassis temperature probe by the given °C.
    ProbeSkew(u32, f64),
    /// Repair a node's chassis temperature probe.
    ProbeClear(u32),
    /// Spray garbage bytes onto a node's console relay.
    ConsoleGarbage(u32),
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use FaultKind::*;
        match self {
            PartitionRack(r) => write!(f, "partition-rack {r}"),
            HealRack(r) => write!(f, "heal-rack {r}"),
            RackLoss(r, l) => write!(f, "rack-loss {r} {l}"),
            RackBandwidth(r, b) => write!(f, "rack-bandwidth {r} {b}"),
            ChassisRestart(c) => write!(f, "chassis-restart {c}"),
            AgentCrash(n) => write!(f, "agent-crash {n}"),
            AgentHang(n, s) => write!(f, "agent-hang {n} {s}s"),
            AgentDelay(n, s) => write!(f, "agent-delay {n} {s}s"),
            AgentDuplicate(n) => write!(f, "agent-duplicate {n}"),
            AgentRecover(n) => write!(f, "agent-recover {n}"),
            KernelPanic(n) => write!(f, "kernel-panic {n}"),
            FanFailure(n) => write!(f, "fan-failure {n}"),
            PsuFailure(n) => write!(f, "psu-failure {n}"),
            MemoryLeak(n) => write!(f, "memory-leak {n}"),
            ProbeStuck(n) => write!(f, "probe-stuck {n}"),
            ProbeSkew(n, d) => write!(f, "probe-skew {n} {d}C"),
            ProbeClear(n) => write!(f, "probe-clear {n}"),
            ConsoleGarbage(n) => write!(f, "console-garbage {n}"),
        }
    }
}

impl FaultKind {
    /// The node a fault targets, when it targets exactly one.
    pub fn node(&self) -> Option<u32> {
        use FaultKind::*;
        match *self {
            AgentCrash(n)
            | AgentHang(n, _)
            | AgentDelay(n, _)
            | AgentDuplicate(n)
            | AgentRecover(n)
            | KernelPanic(n)
            | FanFailure(n)
            | PsuFailure(n)
            | MemoryLeak(n)
            | ProbeStuck(n)
            | ProbeSkew(n, _)
            | ProbeClear(n)
            | ConsoleGarbage(n) => Some(n),
            _ => None,
        }
    }

    /// Whether this fault takes a node (or its whole rack) down — the
    /// kinds the availability/MTTR metrics track.
    pub fn is_outage(&self) -> bool {
        matches!(
            self,
            FaultKind::KernelPanic(_) | FaultKind::PsuFailure(_) | FaultKind::PartitionRack(_)
        )
    }
}

/// A fault scheduled at a campaign-relative time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// Seconds after campaign start.
    pub at_secs: f64,
    /// What happens.
    pub kind: FaultKind,
}

/// A deterministic fault schedule over a simulated fleet.
#[derive(Debug, Clone, PartialEq)]
pub struct Campaign {
    /// Campaign name (reports and the CLI use it).
    pub name: String,
    /// Seed for every random draw in the run.
    pub seed: u64,
    /// Fleet size.
    pub n_nodes: u32,
    /// Active phase: faults must land inside `[0, duration_secs]`.
    pub duration_secs: f64,
    /// Quiet tail after the last fault for the cluster to converge
    /// before the final invariants are checked.
    pub settle_secs: f64,
    /// Override the cluster's flap threshold (`0` disables flap
    /// detection — e.g. for pure network campaigns, where the engine's
    /// reboot-the-unreachable rule would otherwise thrash partitioned
    /// racks straight into quarantine).
    pub flap_threshold: Option<u32>,
    /// Auto-release quarantined nodes after this many seconds (`None`
    /// keeps the cluster default: manual release only).
    pub quarantine_release_secs: Option<f64>,
    /// The schedule.
    pub events: Vec<FaultEvent>,
}

impl Campaign {
    /// Start an empty campaign.
    pub fn new(name: &str, seed: u64, n_nodes: u32, duration_secs: f64) -> Campaign {
        Campaign {
            name: name.to_string(),
            seed,
            n_nodes,
            duration_secs,
            settle_secs: 600.0,
            flap_threshold: None,
            quarantine_release_secs: None,
            events: Vec::new(),
        }
    }

    /// Builder: schedule `kind` at `at_secs`.
    pub fn at(mut self, at_secs: f64, kind: FaultKind) -> Campaign {
        assert!(
            at_secs.is_finite() && at_secs >= 0.0,
            "fault time must be a nonnegative number"
        );
        self.events.push(FaultEvent { at_secs, kind });
        self
    }

    /// Builder: set the settle window.
    pub fn settle(mut self, secs: f64) -> Campaign {
        self.settle_secs = secs;
        self
    }

    /// Builder: override the flap threshold (`0` disables detection).
    pub fn flap_threshold(mut self, threshold: u32) -> Campaign {
        self.flap_threshold = Some(threshold);
        self
    }

    /// Builder: auto-release quarantined nodes after `secs`.
    pub fn release_after(mut self, secs: f64) -> Campaign {
        self.quarantine_release_secs = Some(secs);
        self
    }

    /// Parse a campaign from the TOML subset below (hand-rolled — the
    /// container builds without a TOML crate):
    ///
    /// ```toml
    /// name = "example"
    /// seed = 7
    /// nodes = 40
    /// duration = 1200
    /// settle = 300
    ///
    /// [[fault]]
    /// at = 300
    /// kind = "partition-rack"
    /// rack = 1
    ///
    /// [[fault]]
    /// at = 500
    /// kind = "agent-crash"
    /// node = 12
    /// ```
    ///
    /// Scalar keys per fault: `at`, `kind`, and the kind's operands
    /// (`rack`, `node`, `secs`, `loss`, `bps`, `delta`).
    pub fn from_toml(text: &str) -> Result<Campaign, String> {
        let mut c = Campaign::new("unnamed", 0, 0, 0.0);
        let mut faults: Vec<RawFault> = Vec::new();
        let mut in_fault = false;
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            if line == "[[fault]]" {
                faults.push(RawFault::default());
                in_fault = true;
                continue;
            }
            if line.starts_with('[') {
                return Err(format!("line {}: unknown section {line}", lineno + 1));
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("line {}: expected key = value", lineno + 1))?;
            let key = key.trim();
            let value = value.trim().trim_matches('"');
            if in_fault {
                let f = faults.last_mut().unwrap();
                match key {
                    "at" => f.at = Some(parse_f64(key, value)?),
                    "kind" => f.kind = Some(value.to_string()),
                    "rack" => f.rack = Some(parse_f64(key, value)? as usize),
                    "node" => f.node = Some(parse_f64(key, value)? as u32),
                    "secs" => f.secs = Some(parse_f64(key, value)?),
                    "loss" => f.loss = Some(parse_f64(key, value)?),
                    "bps" => f.bps = Some(parse_f64(key, value)? as u64),
                    "delta" => f.delta = Some(parse_f64(key, value)?),
                    _ => return Err(format!("line {}: unknown fault key {key}", lineno + 1)),
                }
            } else {
                match key {
                    "name" => c.name = value.to_string(),
                    "seed" => c.seed = parse_f64(key, value)? as u64,
                    "nodes" => c.n_nodes = parse_f64(key, value)? as u32,
                    "duration" => c.duration_secs = parse_f64(key, value)?,
                    "settle" => c.settle_secs = parse_f64(key, value)?,
                    "flap_threshold" => c.flap_threshold = Some(parse_f64(key, value)? as u32),
                    "release" => c.quarantine_release_secs = Some(parse_f64(key, value)?),
                    _ => return Err(format!("line {}: unknown key {key}", lineno + 1)),
                }
            }
        }
        if c.n_nodes == 0 {
            return Err("campaign needs `nodes > 0`".into());
        }
        if c.duration_secs <= 0.0 {
            return Err("campaign needs `duration > 0`".into());
        }
        for f in faults {
            c.events.push(f.build()?);
        }
        Ok(c)
    }
}

fn parse_f64(key: &str, value: &str) -> Result<f64, String> {
    value
        .parse::<f64>()
        .map_err(|_| format!("{key}: expected a number, got {value:?}"))
}

#[derive(Default)]
struct RawFault {
    at: Option<f64>,
    kind: Option<String>,
    rack: Option<usize>,
    node: Option<u32>,
    secs: Option<f64>,
    loss: Option<f64>,
    bps: Option<u64>,
    delta: Option<f64>,
}

impl RawFault {
    fn build(self) -> Result<FaultEvent, String> {
        let at_secs = self.at.ok_or("fault missing `at`")?;
        let kind = self.kind.as_deref().ok_or("fault missing `kind`")?;
        let rack = || self.rack.ok_or(format!("{kind} needs `rack`"));
        let node = || self.node.ok_or(format!("{kind} needs `node`"));
        let secs = || self.secs.ok_or(format!("{kind} needs `secs`"));
        let kind = match kind {
            "partition-rack" => FaultKind::PartitionRack(rack()?),
            "heal-rack" => FaultKind::HealRack(rack()?),
            "rack-loss" => FaultKind::RackLoss(rack()?, self.loss.ok_or("rack-loss needs `loss`")?),
            "rack-bandwidth" => {
                FaultKind::RackBandwidth(rack()?, self.bps.ok_or("rack-bandwidth needs `bps`")?)
            }
            "chassis-restart" => FaultKind::ChassisRestart(rack()?),
            "agent-crash" => FaultKind::AgentCrash(node()?),
            "agent-hang" => FaultKind::AgentHang(node()?, secs()?),
            "agent-delay" => FaultKind::AgentDelay(node()?, secs()?),
            "agent-duplicate" => FaultKind::AgentDuplicate(node()?),
            "agent-recover" => FaultKind::AgentRecover(node()?),
            "kernel-panic" => FaultKind::KernelPanic(node()?),
            "fan-failure" => FaultKind::FanFailure(node()?),
            "psu-failure" => FaultKind::PsuFailure(node()?),
            "memory-leak" => FaultKind::MemoryLeak(node()?),
            "probe-stuck" => FaultKind::ProbeStuck(node()?),
            "probe-skew" => {
                FaultKind::ProbeSkew(node()?, self.delta.ok_or("probe-skew needs `delta`")?)
            }
            "probe-clear" => FaultKind::ProbeClear(node()?),
            "console-garbage" => FaultKind::ConsoleGarbage(node()?),
            other => return Err(format!("unknown fault kind {other:?}")),
        };
        Ok(FaultEvent { at_secs, kind })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_orders_and_records() {
        let c = Campaign::new("t", 1, 8, 600.0)
            .at(10.0, FaultKind::AgentCrash(3))
            .at(20.0, FaultKind::PartitionRack(0))
            .settle(120.0);
        assert_eq!(c.events.len(), 2);
        assert_eq!(c.settle_secs, 120.0);
        assert_eq!(c.events[1].kind, FaultKind::PartitionRack(0));
    }

    #[test]
    fn toml_roundtrip_covers_operand_shapes() {
        let text = r#"
# a comment
name = "demo"
seed = 9
nodes = 30
duration = 900
settle = 200

[[fault]]
at = 100
kind = "partition-rack"
rack = 2

[[fault]]
at = 150.5
kind = "agent-hang"
node = 4
secs = 60

[[fault]]
at = 200
kind = "rack-loss"
rack = 1
loss = 0.2

[[fault]]
at = 300
kind = "probe-skew"
node = 11
delta = -5
"#;
        let c = Campaign::from_toml(text).expect("parses");
        assert_eq!(c.name, "demo");
        assert_eq!((c.seed, c.n_nodes), (9, 30));
        assert_eq!(c.events.len(), 4);
        assert_eq!(c.events[0].kind, FaultKind::PartitionRack(2));
        assert_eq!(c.events[1].kind, FaultKind::AgentHang(4, 60.0));
        assert_eq!(c.events[2].kind, FaultKind::RackLoss(1, 0.2));
        assert_eq!(c.events[3].kind, FaultKind::ProbeSkew(11, -5.0));
        assert_eq!(c.events[1].at_secs, 150.5);
    }

    #[test]
    fn toml_rejects_nonsense() {
        assert!(Campaign::from_toml("nodes = 0\nduration = 10").is_err());
        assert!(Campaign::from_toml("nodes = 4\nduration = 10\n[[fault]]\nat = 1").is_err());
        assert!(Campaign::from_toml(
            "nodes = 4\nduration = 10\n[[fault]]\nat = 1\nkind = \"warp-core-breach\""
        )
        .is_err());
        assert!(Campaign::from_toml("gibberish").is_err());
    }
}
