//! Fault campaigns: deterministic, timestamped schedules of faults
//! across every layer of the simulated cluster.
//!
//! A [`Campaign`] is data, not code: a seed, a fleet size, a duration
//! and a list of [`FaultEvent`]s. The same campaign under the same seed
//! replays byte-for-byte — [`crate::run_campaign`] hashes the control
//! plane's audit trail so reproducibility is checkable, not aspirational.

use std::fmt;

/// One injectable fault. The variants span the injection surface the
/// framework exposes: network segments, ICE Box chassis, monitoring
/// agents, node hardware, and temperature probes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// Unplug a rack segment's uplink (needs the rack topology).
    PartitionRack(usize),
    /// Plug the rack back in.
    HealRack(usize),
    /// Degrade a rack segment to the given per-receiver loss.
    RackLoss(usize, f64),
    /// Renegotiate a rack segment down to the given bandwidth (bytes/s).
    RackBandwidth(usize, u64),
    /// Crash and restart a chassis controller: relays hold, pending
    /// sequenced energizations are lost.
    ChassisRestart(usize),
    /// Kill a node's monitoring daemon (a reboot restarts it).
    AgentCrash(u32),
    /// Wedge a node's monitoring daemon for the given seconds.
    AgentHang(u32, f64),
    /// Delay every report from a node by the given seconds.
    AgentDelay(u32, f64),
    /// Duplicate every report from a node.
    AgentDuplicate(u32),
    /// Clear any agent fault on a node (daemon restored).
    AgentRecover(u32),
    /// Panic a node's kernel.
    KernelPanic(u32),
    /// Stop a node's CPU fan.
    FanFailure(u32),
    /// Kill a node's power supply.
    PsuFailure(u32),
    /// Start a runaway memory leak on a node.
    MemoryLeak(u32),
    /// Freeze a node's chassis temperature probe at its last reading.
    ProbeStuck(u32),
    /// Skew a node's chassis temperature probe by the given °C.
    ProbeSkew(u32, f64),
    /// Repair a node's chassis temperature probe.
    ProbeClear(u32),
    /// Spray garbage bytes onto a node's console relay.
    ConsoleGarbage(u32),
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use FaultKind::*;
        match self {
            PartitionRack(r) => write!(f, "partition-rack {r}"),
            HealRack(r) => write!(f, "heal-rack {r}"),
            RackLoss(r, l) => write!(f, "rack-loss {r} {l}"),
            RackBandwidth(r, b) => write!(f, "rack-bandwidth {r} {b}"),
            ChassisRestart(c) => write!(f, "chassis-restart {c}"),
            AgentCrash(n) => write!(f, "agent-crash {n}"),
            AgentHang(n, s) => write!(f, "agent-hang {n} {s}s"),
            AgentDelay(n, s) => write!(f, "agent-delay {n} {s}s"),
            AgentDuplicate(n) => write!(f, "agent-duplicate {n}"),
            AgentRecover(n) => write!(f, "agent-recover {n}"),
            KernelPanic(n) => write!(f, "kernel-panic {n}"),
            FanFailure(n) => write!(f, "fan-failure {n}"),
            PsuFailure(n) => write!(f, "psu-failure {n}"),
            MemoryLeak(n) => write!(f, "memory-leak {n}"),
            ProbeStuck(n) => write!(f, "probe-stuck {n}"),
            ProbeSkew(n, d) => write!(f, "probe-skew {n} {d}C"),
            ProbeClear(n) => write!(f, "probe-clear {n}"),
            ConsoleGarbage(n) => write!(f, "console-garbage {n}"),
        }
    }
}

/// Every fault-kind slug, in declaration order. The scenario coverage
/// scoreboard uses this as its denominator and manifest parsers as the
/// legal `kind` vocabulary.
pub const FAULT_SLUGS: [&str; 18] = [
    "partition-rack",
    "heal-rack",
    "rack-loss",
    "rack-bandwidth",
    "chassis-restart",
    "agent-crash",
    "agent-hang",
    "agent-delay",
    "agent-duplicate",
    "agent-recover",
    "kernel-panic",
    "fan-failure",
    "psu-failure",
    "memory-leak",
    "probe-stuck",
    "probe-skew",
    "probe-clear",
    "console-garbage",
];

impl FaultKind {
    /// Stable kind-only name (no operands): the `kind` strings scenario
    /// manifests use and the coverage scoreboard's row labels.
    pub fn slug(&self) -> &'static str {
        use FaultKind::*;
        match self {
            PartitionRack(_) => "partition-rack",
            HealRack(_) => "heal-rack",
            RackLoss(..) => "rack-loss",
            RackBandwidth(..) => "rack-bandwidth",
            ChassisRestart(_) => "chassis-restart",
            AgentCrash(_) => "agent-crash",
            AgentHang(..) => "agent-hang",
            AgentDelay(..) => "agent-delay",
            AgentDuplicate(_) => "agent-duplicate",
            AgentRecover(_) => "agent-recover",
            KernelPanic(_) => "kernel-panic",
            FanFailure(_) => "fan-failure",
            PsuFailure(_) => "psu-failure",
            MemoryLeak(_) => "memory-leak",
            ProbeStuck(_) => "probe-stuck",
            ProbeSkew(..) => "probe-skew",
            ProbeClear(_) => "probe-clear",
            ConsoleGarbage(_) => "console-garbage",
        }
    }

    /// The node a fault targets, when it targets exactly one.
    pub fn node(&self) -> Option<u32> {
        use FaultKind::*;
        match *self {
            AgentCrash(n)
            | AgentHang(n, _)
            | AgentDelay(n, _)
            | AgentDuplicate(n)
            | AgentRecover(n)
            | KernelPanic(n)
            | FanFailure(n)
            | PsuFailure(n)
            | MemoryLeak(n)
            | ProbeStuck(n)
            | ProbeSkew(n, _)
            | ProbeClear(n)
            | ConsoleGarbage(n) => Some(n),
            _ => None,
        }
    }

    /// Whether this fault takes a node (or its whole rack) down — the
    /// kinds the availability/MTTR metrics track.
    pub fn is_outage(&self) -> bool {
        matches!(
            self,
            FaultKind::KernelPanic(_) | FaultKind::PsuFailure(_) | FaultKind::PartitionRack(_)
        )
    }
}

/// A fault scheduled at a campaign-relative time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// Seconds after campaign start.
    pub at_secs: f64,
    /// What happens.
    pub kind: FaultKind,
}

/// A deterministic fault schedule over a simulated fleet.
#[derive(Debug, Clone, PartialEq)]
pub struct Campaign {
    /// Campaign name (reports and the CLI use it).
    pub name: String,
    /// Seed for every random draw in the run.
    pub seed: u64,
    /// Fleet size.
    pub n_nodes: u32,
    /// Active phase: faults must land inside `[0, duration_secs]`.
    pub duration_secs: f64,
    /// Quiet tail after the last fault for the cluster to converge
    /// before the final invariants are checked.
    pub settle_secs: f64,
    /// Override the cluster's flap threshold (`0` disables flap
    /// detection — e.g. for pure network campaigns, where the engine's
    /// reboot-the-unreachable rule would otherwise thrash partitioned
    /// racks straight into quarantine).
    pub flap_threshold: Option<u32>,
    /// Auto-release quarantined nodes after this many seconds (`None`
    /// keeps the cluster default: manual release only).
    pub quarantine_release_secs: Option<f64>,
    /// The schedule.
    pub events: Vec<FaultEvent>,
}

impl Campaign {
    /// Start an empty campaign.
    pub fn new(name: &str, seed: u64, n_nodes: u32, duration_secs: f64) -> Campaign {
        Campaign {
            name: name.to_string(),
            seed,
            n_nodes,
            duration_secs,
            settle_secs: 600.0,
            flap_threshold: None,
            quarantine_release_secs: None,
            events: Vec::new(),
        }
    }

    /// Builder: schedule `kind` at `at_secs`.
    pub fn at(mut self, at_secs: f64, kind: FaultKind) -> Campaign {
        assert!(
            at_secs.is_finite() && at_secs >= 0.0,
            "fault time must be a nonnegative number"
        );
        self.events.push(FaultEvent { at_secs, kind });
        self
    }

    /// Builder: set the settle window.
    pub fn settle(mut self, secs: f64) -> Campaign {
        self.settle_secs = secs;
        self
    }

    /// Builder: override the flap threshold (`0` disables detection).
    pub fn flap_threshold(mut self, threshold: u32) -> Campaign {
        self.flap_threshold = Some(threshold);
        self
    }

    /// Builder: auto-release quarantined nodes after `secs`.
    pub fn release_after(mut self, secs: f64) -> Campaign {
        self.quarantine_release_secs = Some(secs);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_orders_and_records() {
        let c = Campaign::new("t", 1, 8, 600.0)
            .at(10.0, FaultKind::AgentCrash(3))
            .at(20.0, FaultKind::PartitionRack(0))
            .settle(120.0);
        assert_eq!(c.events.len(), 2);
        assert_eq!(c.settle_secs, 120.0);
        assert_eq!(c.events[1].kind, FaultKind::PartitionRack(0));
    }

    #[test]
    fn slugs_match_display_prefixes() {
        use FaultKind::*;
        let one_of_each = [
            PartitionRack(1),
            HealRack(1),
            RackLoss(1, 0.1),
            RackBandwidth(1, 1000),
            ChassisRestart(1),
            AgentCrash(1),
            AgentHang(1, 1.0),
            AgentDelay(1, 1.0),
            AgentDuplicate(1),
            AgentRecover(1),
            KernelPanic(1),
            FanFailure(1),
            PsuFailure(1),
            MemoryLeak(1),
            ProbeStuck(1),
            ProbeSkew(1, 1.0),
            ProbeClear(1),
            ConsoleGarbage(1),
        ];
        assert_eq!(one_of_each.len(), FAULT_SLUGS.len());
        for (kind, slug) in one_of_each.iter().zip(FAULT_SLUGS) {
            assert_eq!(kind.slug(), slug);
            assert!(
                kind.to_string().starts_with(slug),
                "{kind} vs {slug}: Display must lead with the slug"
            );
        }
    }
}
