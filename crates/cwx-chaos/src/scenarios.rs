//! Canned chaos campaigns: the three scenarios experiment E14 and the
//! `cwx chaos` CLI ship with.
//!
//! Each targets a different layer of the management plane. All use a
//! 120 s warm-up (autostart boots finish well inside it), inject during
//! the active phase, heal everything they broke, and leave a settle
//! window for convergence.

use crate::campaign::{Campaign, FaultKind::*};

/// Names of the canned scenarios, in presentation order.
pub const SCENARIO_NAMES: [&str; 3] = ["partition-storm", "chassis-carnage", "flaky-fleet"];

/// Look up a canned scenario by name.
pub fn scenario(name: &str) -> Option<Campaign> {
    match name {
        "partition-storm" => Some(partition_storm()),
        "chassis-carnage" => Some(chassis_carnage()),
        "flaky-fleet" => Some(flaky_fleet()),
        "soak" => Some(soak(4001)),
        _ => None,
    }
}

/// Overlapping rack partitions plus degraded links: the network layer
/// misbehaves while nodes themselves stay healthy. Tests that the
/// server's liveness view diverges and re-converges without the control
/// plane inventing failures.
pub fn partition_storm() -> Campaign {
    // Flap detection off: the engine reboots unreachable nodes, so a
    // partitioned rack's nodes re-enter Up several times through no
    // fault of their own — quarantining them would test the wrong layer.
    Campaign::new("partition-storm", 1401, 60, 1500.0)
        .flap_threshold(0)
        .at(200.0, PartitionRack(1))
        .at(260.0, RackLoss(3, 0.25)) // lossy, not dead
        .at(320.0, PartitionRack(2)) // overlaps rack 1's outage
        .at(500.0, HealRack(1))
        .at(560.0, PartitionRack(4))
        .at(700.0, HealRack(2))
        .at(900.0, HealRack(4))
        .at(960.0, RackLoss(3, 0.0))
        .settle(600.0)
}

/// Chassis controller crashes and probe faults: the out-of-band layer
/// lies or goes dark. Sequenced energizations are lost mid-boot, probes
/// stick and skew, consoles fill with garbage.
pub fn chassis_carnage() -> Campaign {
    Campaign::new("chassis-carnage", 1402, 60, 1500.0)
        .at(180.0, ProbeStuck(12))
        .at(200.0, ChassisRestart(0))
        .at(240.0, ConsoleGarbage(3))
        .at(300.0, ProbeSkew(21, 8.0))
        .at(400.0, ChassisRestart(2))
        .at(420.0, AgentCrash(22)) // same rack as the restart
        .at(700.0, ChassisRestart(0)) // again, while recovering
        .at(800.0, ProbeClear(12))
        .at(820.0, ProbeClear(21))
        .at(900.0, AgentRecover(22))
        .settle(600.0)
}

/// Node and agent chaos: kernel panics (one node flaps hard enough to
/// trip quarantine), crashed/hung/duplicating agents. Tests flap
/// detection, the boot watchdog and notifier rate limiting.
pub fn flaky_fleet() -> Campaign {
    Campaign::new("flaky-fleet", 1403, 60, 2400.0)
        // node 7 flaps: every panic triggers the engine's reboot, and
        // the third Up-entry inside the window trips quarantine
        .at(200.0, KernelPanic(7))
        .at(500.0, KernelPanic(7))
        .at(800.0, KernelPanic(7))
        .at(1100.0, KernelPanic(7))
        // background noise on other racks
        .at(300.0, AgentCrash(31))
        .at(350.0, AgentHang(45, 400.0))
        .at(420.0, AgentDuplicate(18))
        .at(600.0, AgentDelay(52, 20.0))
        .at(900.0, KernelPanic(40)) // one-off panic: reboots, stays up
        .at(1400.0, AgentRecover(31))
        .at(1500.0, AgentRecover(18))
        .at(1600.0, AgentRecover(52))
        .settle(600.0)
}

/// The big one: a simulated-hour campaign at 400 nodes (40 racks) with
/// everything at once — overlapping rack partitions, a lossy rack,
/// chassis-controller restarts (one chassis twice), crashed / hung /
/// lying agents, one-off panics and a node that flaps hard enough to
/// trip quarantine. Parameterised by seed so CI can sweep several.
///
/// Tuning notes: partitions stay short (≈4 minutes) so the engine's
/// reboot-the-unreachable loop gives partitioned nodes at most 2–3
/// Up-entries, below the campaign's flap threshold of 6; the flapper
/// panics every 150 s, crossing the threshold at its sixth boot. A
/// 500 s timed release lets the (by then cured) flapper rejoin, so the
/// fleet converges to all-Up inside the settle window.
pub fn soak(seed: u64) -> Campaign {
    Campaign::new("soak", seed, 400, 2600.0)
        .flap_threshold(6)
        .release_after(500.0)
        // the flapper: node 7 panics every 150 s until quarantined
        .at(240.0, KernelPanic(7))
        .at(390.0, KernelPanic(7))
        .at(540.0, KernelPanic(7))
        .at(690.0, KernelPanic(7))
        .at(840.0, KernelPanic(7))
        .at(990.0, KernelPanic(7))
        .at(1140.0, KernelPanic(7)) // lands while parked dark: no-op
        .at(1290.0, KernelPanic(7))
        // overlapping rack partitions
        .at(300.0, PartitionRack(3))
        .at(400.0, PartitionRack(17)) // overlaps rack 3's outage
        .at(520.0, HealRack(3))
        .at(640.0, HealRack(17))
        .at(700.0, PartitionRack(8))
        .at(930.0, HealRack(8))
        .at(1500.0, PartitionRack(25))
        .at(1740.0, HealRack(25))
        // a rack with a bad uplink for ten minutes
        .at(600.0, RackLoss(30, 0.2))
        .at(1300.0, RackLoss(30, 0.0))
        // chassis-controller restarts, one chassis twice
        .at(450.0, ChassisRestart(5))
        .at(1000.0, ChassisRestart(12))
        .at(1900.0, ChassisRestart(5))
        // agent misbehaviour across the fleet
        .at(350.0, AgentCrash(101))
        .at(500.0, AgentDuplicate(55))
        .at(750.0, AgentDelay(160, 15.0))
        .at(800.0, AgentCrash(222))
        .at(900.0, AgentHang(333, 500.0))
        .at(1600.0, AgentRecover(101))
        .at(1700.0, AgentRecover(55))
        .at(1750.0, AgentRecover(160))
        .at(1800.0, AgentRecover(222))
        // a one-off panic far from the flapper: reboots, stays up
        .at(1200.0, KernelPanic(350))
        .settle(800.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canned_scenarios_resolve_and_fit_their_windows() {
        for name in SCENARIO_NAMES {
            let c = scenario(name).expect(name);
            assert_eq!(c.name, name);
            assert!(c.n_nodes > 0 && !c.events.is_empty());
            for ev in &c.events {
                assert!(
                    ev.at_secs < c.duration_secs,
                    "{name}: fault at {} outside active phase",
                    ev.at_secs
                );
            }
        }
        assert!(scenario("no-such-thing").is_none());
    }
}
