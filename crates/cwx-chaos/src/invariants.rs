//! Runtime invariant checking over a running cluster simulation.
//!
//! The checker watches a campaign from the outside: it reads the
//! control plane's lifecycle tracker and audit trail, the server's
//! liveness table and the simulated hardware truth, and records a
//! [`Violation`] whenever the system breaks one of its own promises —
//! regardless of how much chaos the campaign is injecting.

use clusterworx::lifecycle::{legal_transition, LifecycleState};
use clusterworx::{AuditEntry, AuditRecord, World};
use cwx_util::time::SimTime;

/// Tunables for the runtime checks.
#[derive(Debug, Clone, Copy)]
pub struct InvariantPolicy {
    /// Period of the runtime scan.
    pub check_every_secs: f64,
    /// How long a node may sit in a transient lifecycle state
    /// (`PoweringOn`/`Bios`/`Cloning`/`Draining`) before it counts as
    /// stuck. Must comfortably exceed the boot watchdog's full retry
    /// budget, or healthy recovery reads as a hang.
    pub transient_deadline_secs: f64,
    /// Staleness bound (seconds) for "the engine is eventually
    /// consistent": at the final check every running node's last report
    /// must be at most this old.
    pub freshness_secs: f64,
}

impl Default for InvariantPolicy {
    fn default() -> Self {
        InvariantPolicy {
            check_every_secs: 5.0,
            // default watchdog: 5 retries x 300 s, plus boot time slack
            transient_deadline_secs: 2400.0,
            freshness_secs: 60.0,
        }
    }
}

/// Stable names of every invariant the checker can report, in the
/// order JUnit artifacts list them. Each [`Violation::invariant`] is
/// one of these.
pub const INVARIANT_NAMES: [&str; 6] = [
    "illegal-transition",
    "command-accounting",
    "stuck-transient",
    "hw-lifecycle-divergence",
    "stale-engine-view",
    "store-unreadable",
];

/// One broken promise.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// Simulation time of the observation, seconds.
    pub at_secs: f64,
    /// Which invariant (stable short name).
    pub invariant: &'static str,
    /// Human-readable specifics.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{:10.1}s] {}: {}",
            self.at_secs, self.invariant, self.detail
        )
    }
}

/// The campaign-long invariant checker.
#[derive(Debug)]
pub struct InvariantChecker {
    policy: InvariantPolicy,
    violations: Vec<Violation>,
    /// Nodes already reported stuck (one violation per incident).
    stuck_reported: Vec<bool>,
}

impl InvariantChecker {
    /// A checker for a fleet of `n_nodes`.
    pub fn new(n_nodes: u32, policy: InvariantPolicy) -> InvariantChecker {
        InvariantChecker {
            policy,
            violations: Vec::new(),
            stuck_reported: vec![false; n_nodes as usize],
        }
    }

    /// Violations recorded so far.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Consume the checker, returning its findings.
    pub fn into_violations(self) -> Vec<Violation> {
        self.violations
    }

    fn report(&mut self, now: SimTime, invariant: &'static str, detail: String) {
        self.violations.push(Violation {
            at_secs: now.as_secs_f64(),
            invariant,
            detail,
        });
    }

    /// Runtime scan: no node stuck in a transient lifecycle state past
    /// the deadline. Ran periodically during the campaign.
    pub fn scan(&mut self, now: SimTime, w: &World) {
        let lc = w.control.lifecycle();
        for node in 0..w.nodes.len() as u32 {
            let state = lc.state(node);
            let transient = matches!(
                state,
                LifecycleState::PoweringOn
                    | LifecycleState::Bios
                    | LifecycleState::Cloning
                    | LifecycleState::Draining
            );
            if !transient {
                self.stuck_reported[node as usize] = false;
                continue;
            }
            let held = now.since(lc.since(node)).as_secs_f64();
            if held > self.policy.transient_deadline_secs && !self.stuck_reported[node as usize] {
                self.stuck_reported[node as usize] = true;
                self.report(
                    now,
                    "stuck-transient",
                    format!("node {node} has sat in {state:?} for {held:.0}s"),
                );
            }
        }
    }

    /// The history store answers queries (ran right after every
    /// destructive fault: a kill must never take the archive with it).
    pub fn check_store_readable(&mut self, now: SimTime, w: &World) {
        // any node that has been up long enough to report will do; the
        // point is that the read path works, not which sample comes back
        let readable = (0..w.nodes.len() as u32).any(|n| {
            w.server
                .history()
                .latest(n, &cwx_monitor::monitor::MonitorKey::new("load.one"))
                .is_some()
        });
        if !readable {
            self.report(
                now,
                "store-unreadable",
                "history store returned nothing for any node after a kill".into(),
            );
        }
    }

    /// Every recorded lifecycle transition crosses a legal edge. The
    /// tracker enforces this for `transition()`, but forced transitions
    /// (hardware events, provisioning claims) bypass the table — this
    /// re-validates the whole log after the fact.
    pub fn check_transition_legality(&mut self, w: &World) {
        for t in w.control.lifecycle().log() {
            if !legal_transition(t.from, t.to) {
                self.report(
                    t.time,
                    "illegal-transition",
                    format!("node {}: {:?} -> {:?}", t.node, t.from, t.to),
                );
            }
        }
    }

    /// No control-plane command silently dropped: completions never
    /// exceed issues, and every first issue is accounted for by a
    /// terminal audit record or a still-pending command.
    pub fn check_command_accounting(&mut self, now: SimTime, w: &World) {
        let audit: &[AuditRecord] = w.control.audit();
        let (mut issued, mut completed, mut failed, mut aborted) = (0u64, 0u64, 0u64, 0u64);
        for r in audit {
            match &r.entry {
                AuditEntry::CommandIssued { attempt: 1, .. } => issued += 1,
                AuditEntry::CommandCompleted { .. } => completed += 1,
                AuditEntry::CommandFailed { .. } => failed += 1,
                AuditEntry::CommandAborted { .. } => aborted += 1,
                _ => {}
            }
        }
        let outstanding = w.control.outstanding() as u64;
        if completed + failed > issued {
            self.report(
                now,
                "command-accounting",
                format!("{completed} completions + {failed} failures exceed {issued} issues"),
            );
        }
        // aborts also cover never-issued queued commands, so they may
        // overshoot; what they must never allow is a silent gap
        if issued > completed + failed + aborted + outstanding {
            self.report(
                now,
                "command-accounting",
                format!(
                    "{issued} issued but only {completed} completed + {failed} failed + \
                     {aborted} aborted + {outstanding} outstanding"
                ),
            );
        }
    }

    /// Eventual consistency after the faults heal: the control plane
    /// and the event engine agree with simulated hardware truth.
    ///
    /// Call once at the end of the settle window. `expect_up` excludes
    /// nodes a campaign legitimately leaves down (quarantined, failed,
    /// powered off by an action).
    pub fn check_convergence(&mut self, now: SimTime, w: &World) {
        let lc = w.control.lifecycle();
        for node in 0..w.nodes.len() as u32 {
            let hw_up = w.nodes[node as usize].hw.is_up();
            let state = lc.state(node);
            let lc_up = matches!(state, LifecycleState::Up | LifecycleState::Draining);
            if hw_up != lc_up {
                self.report(
                    now,
                    "hw-lifecycle-divergence",
                    format!(
                        "node {node}: hardware up={hw_up} but lifecycle says {state:?} \
                         after the settle window"
                    ),
                );
                continue;
            }
            if !hw_up {
                continue;
            }
            match w.server.node_status(node) {
                Some(s) if s.reachable => {
                    let age = now.since(s.last_report).as_secs_f64();
                    if age > self.policy.freshness_secs {
                        self.report(
                            now,
                            "stale-engine-view",
                            format!("node {node} is up but its last report is {age:.0}s old"),
                        );
                    }
                }
                _ => self.report(
                    now,
                    "stale-engine-view",
                    format!("node {node} is up but the server still sees it unreachable"),
                ),
            }
        }
    }
}

/// FNV-1a hash of the audit trail's debug rendering: a cheap,
/// dependency-free fingerprint for byte-reproducibility assertions.
/// Delegates to the workspace-canonical [`cwx_util::hash`] fold so the
/// chaos report, the federation head and the snapshot subsystem all
/// agree on what "the audit hash" means.
pub fn audit_hash(audit: &[AuditRecord]) -> u64 {
    cwx_util::hash::fnv1a_debug(audit)
}
