//! cwx-chaos — deterministic chaos campaigns for the ClusterWorX
//! reproduction.
//!
//! The paper sells ClusterWorX on resilience claims — failed nodes are
//! detected, power-cycled, quarantined; the administrator hears about
//! each incident once. This crate turns those claims into executable
//! checks. A [`Campaign`] is a timestamped schedule of faults across
//! every layer (network segments, ICE Box chassis, monitoring agents,
//! node hardware, temperature probes); [`run_campaign`] replays it on a
//! simulated fleet under one seed while an [`InvariantChecker`] watches
//! the management plane's promises:
//!
//! 1. every lifecycle transition crosses a legal edge,
//! 2. no control-plane command is silently dropped (audit accounting),
//! 3. no node sits in a transient state past its deadline,
//! 4. the event engine re-converges with hardware truth once faults
//!    heal, and
//! 5. the history store answers queries after every kill.
//!
//! Identical (campaign, seed) pairs produce identical audit trails —
//! [`CampaignReport::audit_hash`] makes that checkable.

#![warn(missing_docs)]

pub mod campaign;
pub mod invariants;
pub mod run;
pub mod scenarios;

pub use campaign::{Campaign, FaultEvent, FaultKind, FAULT_SLUGS};
pub use invariants::{audit_hash, InvariantChecker, InvariantPolicy, Violation, INVARIANT_NAMES};
pub use run::{
    apply_fault, campaign_config, run_campaign, run_campaign_sim, run_campaign_sim_observed,
    run_campaign_with, CampaignReport,
};
pub use scenarios::{scenario, soak, SCENARIO_NAMES};
