//! Campaign execution: wire a [`Campaign`] onto a simulated cluster,
//! inject every scheduled fault, run the invariant checker alongside,
//! and measure how the management plane coped.

use std::cell::RefCell;
use std::rc::Rc;

use clusterworx::{
    chassis_restart, schedule_fault, set_agent_fault, Cluster, ClusterConfig, World,
};
use cwx_icebox::ProbeFault;
use cwx_monitor::AgentFault;
use cwx_util::sim::Sim;
use cwx_util::time::{SimDuration, SimTime};

use crate::campaign::{Campaign, FaultKind};
use crate::invariants::{audit_hash, InvariantChecker, InvariantPolicy, Violation};

/// What a campaign run produced.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Campaign name.
    pub name: String,
    /// Seed used.
    pub seed: u64,
    /// Fleet size.
    pub n_nodes: u32,
    /// Invariant violations (empty = the management plane kept every
    /// promise).
    pub violations: Vec<Violation>,
    /// FNV-1a fingerprint of the audit trail — identical for identical
    /// (campaign, seed) pairs.
    pub audit_hash: u64,
    /// Audit records written.
    pub audit_len: usize,
    /// Mean seconds from an outage fault to the server noticing it
    /// (NaN when the campaign had no detectable outage).
    pub detection_latency_secs: f64,
    /// Mean seconds from an outage fault to the node back up and
    /// reachable (NaN when nothing recovered).
    pub mttr_secs: f64,
    /// Mean fraction of the fleet up, sampled over the whole run.
    pub availability: f64,
    /// Nodes with their OS up at the end of the settle window.
    pub final_up: usize,
    /// Nodes quarantined by flap detection at the end.
    pub quarantined: Vec<u32>,
    /// Emails the notifier actually sent.
    pub emails: usize,
    /// Storm episodes the notifier rate-limited.
    pub storms: u64,
}

/// Per-outage bookkeeping for the detection/MTTR metrics.
#[derive(Debug, Clone, Copy)]
struct Outage {
    node: u32,
    t0: SimTime,
    detected: Option<SimTime>,
    recovered: Option<SimTime>,
}

#[derive(Debug, Default)]
struct Metrics {
    outages: Vec<Outage>,
    up_samples: f64,
    samples: u64,
}

/// Apply one fault to the running world.
pub fn apply_fault(sim: &mut Sim<World>, kind: FaultKind) {
    let now = sim.now();
    match kind {
        FaultKind::PartitionRack(r) => {
            let seg = sim.world().rack_segment(r);
            sim.world_mut().net.partition(seg);
        }
        FaultKind::HealRack(r) => {
            let seg = sim.world().rack_segment(r);
            sim.world_mut().net.heal(seg);
        }
        FaultKind::RackLoss(r, loss) => {
            let seg = sim.world().rack_segment(r);
            sim.world_mut().net.set_loss(seg, loss);
        }
        FaultKind::RackBandwidth(r, bps) => {
            let seg = sim.world().rack_segment(r);
            sim.world_mut().net.set_bandwidth(seg, bps);
        }
        FaultKind::ChassisRestart(c) => chassis_restart(sim, c),
        FaultKind::AgentCrash(n) => set_agent_fault(sim, n, Some(AgentFault::Crashed)),
        FaultKind::AgentHang(n, secs) => set_agent_fault(
            sim,
            n,
            Some(AgentFault::Hung {
                until: Some(now + SimDuration::from_secs_f64(secs)),
            }),
        ),
        FaultKind::AgentDelay(n, secs) => set_agent_fault(
            sim,
            n,
            Some(AgentFault::DelayedReports {
                extra: SimDuration::from_secs_f64(secs),
            }),
        ),
        FaultKind::AgentDuplicate(n) => {
            set_agent_fault(sim, n, Some(AgentFault::DuplicatedReports))
        }
        FaultKind::AgentRecover(n) => set_agent_fault(sim, n, None),
        FaultKind::KernelPanic(n) => schedule_fault(sim, now, n, cwx_hw::node::Fault::KernelPanic),
        FaultKind::FanFailure(n) => schedule_fault(sim, now, n, cwx_hw::node::Fault::FanFailure),
        FaultKind::PsuFailure(n) => schedule_fault(sim, now, n, cwx_hw::node::Fault::PsuFailure),
        FaultKind::MemoryLeak(n) => schedule_fault(sim, now, n, cwx_hw::node::Fault::MemoryLeak),
        FaultKind::ProbeStuck(n) => {
            let (bx, port) = World::rack_of(n);
            sim.world_mut().iceboxes[bx].set_probe_fault(port, Some(ProbeFault::Stuck));
        }
        FaultKind::ProbeSkew(n, delta) => {
            let (bx, port) = World::rack_of(n);
            sim.world_mut().iceboxes[bx]
                .set_probe_fault(port, Some(ProbeFault::Skewed { delta_c: delta }));
        }
        FaultKind::ProbeClear(n) => {
            let (bx, port) = World::rack_of(n);
            sim.world_mut().iceboxes[bx].set_probe_fault(port, None);
        }
        FaultKind::ConsoleGarbage(n) => {
            let (bx, port) = World::rack_of(n);
            let seed = sim.world().cfg.seed ^ (n as u64);
            sim.world_mut().iceboxes[bx].feed_garbage(port, seed, 256);
        }
    }
}

/// Base cluster configuration for a campaign: the rack topology (so
/// partitions have a blast radius smaller than "everything") with the
/// campaign's fleet size and seed. Callers may tweak the result before
/// [`run_campaign_with`].
pub fn campaign_config(c: &Campaign) -> ClusterConfig {
    let mut cfg = ClusterConfig {
        n_nodes: c.n_nodes,
        seed: c.seed,
        rack_network: true,
        ..ClusterConfig::default()
    };
    if let Some(t) = c.flap_threshold {
        cfg.flap_threshold = t;
    }
    if let Some(secs) = c.quarantine_release_secs {
        cfg.quarantine_release_after = Some(SimDuration::from_secs_f64(secs));
    }
    cfg
}

/// Run `campaign` on a default cluster; see [`run_campaign_with`].
pub fn run_campaign(campaign: &Campaign) -> CampaignReport {
    run_campaign_with(
        campaign,
        campaign_config(campaign),
        InvariantPolicy::default(),
    )
}

/// Run `campaign` on a cluster built from `cfg`, checking invariants
/// under `policy` throughout, and report.
pub fn run_campaign_with(
    campaign: &Campaign,
    cfg: ClusterConfig,
    policy: InvariantPolicy,
) -> CampaignReport {
    run_campaign_sim(campaign, cfg, policy).0
}

/// Like [`run_campaign_with`], but also hand back the finished
/// simulation so callers (soak tests, the CLI) can dig into the audit
/// trail, outbox or per-node state beyond what the report summarises.
pub fn run_campaign_sim(
    campaign: &Campaign,
    cfg: ClusterConfig,
    policy: InvariantPolicy,
) -> (CampaignReport, Sim<World>) {
    run_campaign_sim_observed(campaign, cfg, policy, &[], &mut |_, _| {})
}

/// Like [`run_campaign_sim`], pausing at each time in `observe_at`
/// (simulated nanoseconds, strictly ascending — nanos, not seconds, so
/// a capture time recorded in a snapshot file replays to the exact
/// same instant) to hand the paused simulation to `observer`
/// read-only — the snapshot subsystem's capture hook.
///
/// The pauses are fingerprint-neutral: the run is split with
/// [`Sim::run_until`], which executes exactly the events a straight
/// `run_for` would, allocates no sequence numbers, and advances the
/// clock to each boundary exactly as the unsplit run does — so a run
/// observed at any set of times is byte-identical to one never
/// observed at all (pinned by `observed_run_is_fingerprint_neutral`).
pub fn run_campaign_sim_observed(
    campaign: &Campaign,
    cfg: ClusterConfig,
    policy: InvariantPolicy,
    observe_at: &[u64],
    observer: &mut dyn FnMut(u64, &Sim<World>),
) -> (CampaignReport, Sim<World>) {
    assert_eq!(
        cfg.n_nodes, campaign.n_nodes,
        "config/campaign fleet mismatch"
    );
    assert!(
        cfg.rack_network
            || !campaign.events.iter().any(|e| {
                matches!(e.kind, FaultKind::PartitionRack(_) | FaultKind::HealRack(_))
            }),
        "rack partitions need cfg.rack_network"
    );
    let n = campaign.n_nodes;
    let mut sim = Cluster::build(cfg);

    let checker = Rc::new(RefCell::new(InvariantChecker::new(n, policy)));
    let metrics = Rc::new(RefCell::new(Metrics::default()));

    // the fault schedule
    for ev in &campaign.events {
        let kind = ev.kind;
        let checker = Rc::clone(&checker);
        let metrics = Rc::clone(&metrics);
        sim.schedule_at(
            SimTime::ZERO + SimDuration::from_secs_f64(ev.at_secs),
            move |sim| {
                if kind.is_outage() {
                    let now = sim.now();
                    let mut m = metrics.borrow_mut();
                    match kind {
                        FaultKind::PartitionRack(r) => {
                            for node in rack_nodes(sim.world(), r) {
                                m.outages.push(Outage {
                                    node,
                                    t0: now,
                                    detected: None,
                                    recovered: None,
                                });
                            }
                        }
                        _ => {
                            if let Some(node) = kind.node() {
                                m.outages.push(Outage {
                                    node,
                                    t0: now,
                                    detected: None,
                                    recovered: None,
                                });
                            }
                        }
                    }
                }
                apply_fault(sim, kind);
                if destructive(kind) {
                    // the archive must survive every kill
                    let checker = Rc::clone(&checker);
                    sim.schedule_in(SimDuration::from_secs(1), move |sim| {
                        checker
                            .borrow_mut()
                            .check_store_readable(sim.now(), sim.world());
                    });
                }
            },
        );
    }

    // the runtime scan: stuck-transient checks, metric sampling
    {
        let checker = Rc::clone(&checker);
        let metrics = Rc::clone(&metrics);
        let every = SimDuration::from_secs_f64(policy.check_every_secs.max(1.0));
        sim.schedule_every(every, move |sim| {
            let now = sim.now();
            let w = sim.world();
            checker.borrow_mut().scan(now, w);
            let mut m = metrics.borrow_mut();
            m.up_samples += w.up_count() as f64 / w.nodes.len().max(1) as f64;
            m.samples += 1;
            for o in m.outages.iter_mut() {
                let hw_up = w.nodes[o.node as usize].hw.is_up();
                let reachable = w
                    .server
                    .node_status(o.node)
                    .map(|s| s.reachable)
                    .unwrap_or(false);
                if o.detected.is_none() && (!reachable || !hw_up) {
                    o.detected = Some(now);
                }
                if o.detected.is_some() && o.recovered.is_none() && hw_up && reachable {
                    o.recovered = Some(now);
                }
            }
            true
        });
    }

    let total = SimDuration::from_secs_f64(campaign.duration_secs + campaign.settle_secs);
    debug_assert!(
        observe_at.windows(2).all(|w| w[0] < w[1]),
        "observe_at must be strictly ascending"
    );
    for &t in observe_at.iter().filter(|&&t| t <= total.as_nanos()) {
        sim.run_until(SimTime::ZERO + SimDuration::from_nanos(t));
        observer(t, &sim);
    }
    sim.run_until(SimTime::ZERO + total);

    // end-of-run checks over the full record
    let now = sim.now();
    {
        let mut ck = checker.borrow_mut();
        let w = sim.world();
        ck.check_transition_legality(w);
        ck.check_command_accounting(now, w);
        ck.check_convergence(now, w);
    }

    let w = sim.world();
    let m = metrics.borrow();
    let det: Vec<f64> = m
        .outages
        .iter()
        .filter_map(|o| o.detected.map(|t| t.since(o.t0).as_secs_f64()))
        .collect();
    let rec: Vec<f64> = m
        .outages
        .iter()
        .filter_map(|o| o.recovered.map(|t| t.since(o.t0).as_secs_f64()))
        .collect();
    let quarantined: Vec<u32> = (0..n).filter(|&i| w.control.quarantined(i)).collect();
    let violations = checker.borrow().violations().to_vec();
    let report = CampaignReport {
        name: campaign.name.clone(),
        seed: campaign.seed,
        n_nodes: n,
        violations,
        audit_hash: audit_hash(w.control.audit()),
        audit_len: w.control.audit().len(),
        detection_latency_secs: mean(&det),
        mttr_secs: mean(&rec),
        availability: if m.samples == 0 {
            f64::NAN
        } else {
            m.up_samples / m.samples as f64
        },
        final_up: w.up_count(),
        quarantined,
        emails: w.server.outbox().len(),
        storms: w.server.storms(),
    };
    drop(m);
    (report, sim)
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        f64::NAN
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

fn destructive(kind: FaultKind) -> bool {
    matches!(
        kind,
        FaultKind::KernelPanic(_)
            | FaultKind::PsuFailure(_)
            | FaultKind::ChassisRestart(_)
            | FaultKind::AgentCrash(_)
    )
}

fn rack_nodes(w: &World, rack: usize) -> Vec<u32> {
    (0..w.nodes.len() as u32)
        .filter(|&n| World::rack_of(n).0 == rack)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observed_run_is_fingerprint_neutral() {
        let campaign = Campaign::new("observer-neutrality", 11, 20, 900.0)
            .at(100.0, FaultKind::KernelPanic(3))
            .at(250.0, FaultKind::AgentCrash(7))
            .at(400.0, FaultKind::ProbeSkew(5, 12.0))
            .settle(300.0);
        let cfg = campaign_config(&campaign);
        let straight = run_campaign_sim(&campaign, cfg.clone(), InvariantPolicy::default());
        let mut captures = Vec::new();
        let observed = run_campaign_sim_observed(
            &campaign,
            cfg,
            InvariantPolicy::default(),
            &[50_000_000_000, 250_000_000_000, 777_500_000_000],
            &mut |t, sim| captures.push((t, sim.now().as_nanos(), sim.events_executed())),
        );
        assert_eq!(captures.len(), 3, "observer fires at every requested time");
        assert_eq!(
            straight.0.audit_hash, observed.0.audit_hash,
            "pausing to observe must not change the audit trail"
        );
        assert_eq!(straight.0.final_up, observed.0.final_up);
        assert_eq!(
            straight.1.events_executed(),
            observed.1.events_executed(),
            "same events dispatched with and without pauses"
        );
    }
}
