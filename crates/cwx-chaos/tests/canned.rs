//! The canned scenarios run clean: no invariant violations, sensible
//! metrics, reproducible audit trails.

use cwx_chaos::{run_campaign, scenario, SCENARIO_NAMES};

#[test]
fn partition_storm_runs_clean() {
    let r = run_campaign(&scenario("partition-storm").unwrap());
    assert_eq!(r.violations, vec![], "violations: {:#?}", r.violations);
    assert_eq!(r.final_up as u32, r.n_nodes, "everyone back after heals");
    assert!(
        r.detection_latency_secs.is_finite(),
        "partitions must be detected"
    );
    assert!(r.availability > 0.5 && r.availability <= 1.0);
}

#[test]
fn chassis_carnage_runs_clean() {
    let r = run_campaign(&scenario("chassis-carnage").unwrap());
    assert_eq!(r.violations, vec![], "violations: {:#?}", r.violations);
    assert_eq!(r.final_up as u32, r.n_nodes);
}

#[test]
fn flaky_fleet_quarantines_the_flapper() {
    let r = run_campaign(&scenario("flaky-fleet").unwrap());
    assert_eq!(r.violations, vec![], "violations: {:#?}", r.violations);
    assert!(
        r.quarantined.contains(&7),
        "the flapper must be quarantined, got {:?}",
        r.quarantined
    );
    assert!(r.mttr_secs.is_finite(), "the one-off panic recovered");
}

#[test]
fn same_seed_same_audit_hash() {
    for name in SCENARIO_NAMES {
        let c = scenario(name).unwrap();
        let a = run_campaign(&c);
        let b = run_campaign(&c);
        assert_eq!(a.audit_hash, b.audit_hash, "{name} must be reproducible");
        assert_eq!(a.audit_len, b.audit_len);
    }
}
