//! The append-only write-ahead log.
//!
//! One WAL per shard. Records are framed as
//! `len: u32 | crc32(payload): u32 | payload`, little-endian, after an
//! 8-byte magic header. Two record kinds exist:
//!
//! * `AddSeries` — registers a `(node, monitor)` pair under a shard-local
//!   series id, so sample records don't repeat the monitor name.
//! * `Samples` — a batch of `(time, value)` pairs for one series, stored
//!   uncompressed (the WAL optimizes write latency; segments do the
//!   compression).
//!
//! Recovery reads records until EOF or the first frame whose length or
//! CRC fails, then truncates the file there — a torn tail from a crash
//! mid-write silently disappears, everything before it replays.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use cwx_util::time::SimTime;

use crate::codec::crc32;
use crate::{Sample, StoreError};

const MAGIC: &[u8; 8] = b"CWXWAL1\n";
const KIND_ADD_SERIES: u8 = 1;
const KIND_SAMPLES: u8 = 2;
/// Frames larger than this are treated as corruption, not allocation
/// requests.
const MAX_FRAME: u32 = 1 << 24;

/// A record replayed from the log.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// A series registration.
    AddSeries {
        /// Shard-local series id.
        series: u32,
        /// Node index.
        node: u32,
        /// Monitor name.
        monitor: String,
    },
    /// A batch of samples for one series.
    Samples {
        /// Shard-local series id.
        series: u32,
        /// The batch.
        samples: Vec<Sample>,
    },
}

/// An open write-ahead log.
#[derive(Debug)]
pub struct Wal {
    path: PathBuf,
    file: File,
    buf: Vec<u8>,
    bytes_written: u64,
}

/// Result of opening a WAL: the handle plus everything replayed.
#[derive(Debug)]
pub struct WalRecovery {
    /// The open log, positioned for appending.
    pub wal: Wal,
    /// Records recovered in write order.
    pub records: Vec<WalRecord>,
    /// Bytes of torn tail truncated (0 on a clean log).
    pub truncated_bytes: u64,
}

impl Wal {
    /// Open (creating if absent) and recover the log at `path`.
    pub fn open(path: &Path) -> Result<WalRecovery, StoreError> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let mut data = Vec::new();
        file.read_to_end(&mut data)?;

        let mut records = Vec::new();
        let mut good_end = 0usize;
        if data.len() >= MAGIC.len() && &data[..MAGIC.len()] == MAGIC {
            good_end = MAGIC.len();
            let mut pos = MAGIC.len();
            while let Some(header) = data.get(pos..pos + 8) {
                let len = u32::from_le_bytes(header[0..4].try_into().unwrap());
                let crc = u32::from_le_bytes(header[4..8].try_into().unwrap());
                if len == 0 || len > MAX_FRAME {
                    break;
                }
                let Some(payload) = data.get(pos + 8..pos + 8 + len as usize) else {
                    break;
                };
                if crc32(payload) != crc {
                    break;
                }
                let Some(record) = decode_payload(payload) else {
                    break;
                };
                records.push(record);
                pos += 8 + len as usize;
                good_end = pos;
            }
        } else if data.is_empty() {
            file.write_all(MAGIC)?;
            good_end = MAGIC.len();
        }
        // a non-empty file with a bad magic replays as empty and is
        // rewritten below via the same truncate-and-restart path
        let truncated = data.len().max(MAGIC.len()) as u64 - good_end as u64;
        if good_end < MAGIC.len() {
            file.set_len(0)?;
            file.seek(SeekFrom::Start(0))?;
            file.write_all(MAGIC)?;
            good_end = MAGIC.len();
        } else if (good_end as u64) < file.metadata()?.len() {
            file.set_len(good_end as u64)?;
        }
        file.seek(SeekFrom::Start(good_end as u64))?;
        Ok(WalRecovery {
            wal: Wal {
                path: path.to_path_buf(),
                file,
                buf: Vec::with_capacity(256),
                bytes_written: good_end as u64,
            },
            records,
            truncated_bytes: truncated,
        })
    }

    fn write_frame(&mut self) -> Result<(), StoreError> {
        let mut frame = Vec::with_capacity(self.buf.len() + 8);
        frame.extend_from_slice(&(self.buf.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&self.buf).to_le_bytes());
        frame.extend_from_slice(&self.buf);
        self.file.write_all(&frame)?;
        self.bytes_written += frame.len() as u64;
        Ok(())
    }

    /// Append a series registration.
    pub fn add_series(&mut self, series: u32, node: u32, monitor: &str) -> Result<(), StoreError> {
        self.buf.clear();
        self.buf.push(KIND_ADD_SERIES);
        self.buf.extend_from_slice(&series.to_le_bytes());
        self.buf.extend_from_slice(&node.to_le_bytes());
        self.buf
            .extend_from_slice(&(monitor.len() as u16).to_le_bytes());
        self.buf.extend_from_slice(monitor.as_bytes());
        self.write_frame()
    }

    /// Append a batch of samples for one series.
    pub fn append_samples(&mut self, series: u32, samples: &[Sample]) -> Result<(), StoreError> {
        self.buf.clear();
        self.buf.push(KIND_SAMPLES);
        self.buf.extend_from_slice(&series.to_le_bytes());
        self.buf
            .extend_from_slice(&(samples.len() as u32).to_le_bytes());
        for s in samples {
            self.buf.extend_from_slice(&s.time.as_nanos().to_le_bytes());
            self.buf.extend_from_slice(&s.value.to_bits().to_le_bytes());
        }
        self.write_frame()
    }

    /// Append batches for several series with a single `write` syscall.
    ///
    /// Each entry becomes its own independently-CRC'd frame — the on-disk
    /// format and recovery semantics are identical to calling
    /// [`Wal::append_samples`] per series — but the frames are
    /// concatenated in memory first so a whole ingest batch costs one
    /// kernel round-trip instead of one per series.
    pub fn append_samples_multi(&mut self, batches: &[(u32, &[Sample])]) -> Result<(), StoreError> {
        let mut out = Vec::with_capacity(batches.iter().map(|(_, s)| 17 + s.len() * 16).sum());
        for &(series, samples) in batches {
            self.buf.clear();
            self.buf.push(KIND_SAMPLES);
            self.buf.extend_from_slice(&series.to_le_bytes());
            self.buf
                .extend_from_slice(&(samples.len() as u32).to_le_bytes());
            for s in samples {
                self.buf.extend_from_slice(&s.time.as_nanos().to_le_bytes());
                self.buf.extend_from_slice(&s.value.to_bits().to_le_bytes());
            }
            out.extend_from_slice(&(self.buf.len() as u32).to_le_bytes());
            out.extend_from_slice(&crc32(&self.buf).to_le_bytes());
            out.extend_from_slice(&self.buf);
        }
        self.file.write_all(&out)?;
        self.bytes_written += out.len() as u64;
        Ok(())
    }

    /// Restart the log after its contents have been flushed into a
    /// durable segment: atomically replace the file with an empty one.
    pub fn checkpoint(&mut self) -> Result<(), StoreError> {
        let tmp = self.path.with_extension("tmp");
        {
            let mut f = File::create(&tmp)?;
            f.write_all(MAGIC)?;
            f.sync_data().ok();
        }
        std::fs::rename(&tmp, &self.path)?;
        self.file = OpenOptions::new().read(true).write(true).open(&self.path)?;
        self.file.seek(SeekFrom::End(0))?;
        self.bytes_written = MAGIC.len() as u64;
        Ok(())
    }

    /// Bytes in the log (header included).
    pub fn len_bytes(&self) -> u64 {
        self.bytes_written
    }
}

fn decode_payload(payload: &[u8]) -> Option<WalRecord> {
    let (&kind, rest) = payload.split_first()?;
    match kind {
        KIND_ADD_SERIES => {
            let series = u32::from_le_bytes(rest.get(0..4)?.try_into().ok()?);
            let node = u32::from_le_bytes(rest.get(4..8)?.try_into().ok()?);
            let name_len = u16::from_le_bytes(rest.get(8..10)?.try_into().ok()?) as usize;
            let name = rest.get(10..10 + name_len)?;
            if rest.len() != 10 + name_len {
                return None;
            }
            Some(WalRecord::AddSeries {
                series,
                node,
                monitor: String::from_utf8(name.to_vec()).ok()?,
            })
        }
        KIND_SAMPLES => {
            let series = u32::from_le_bytes(rest.get(0..4)?.try_into().ok()?);
            let count = u32::from_le_bytes(rest.get(4..8)?.try_into().ok()?) as usize;
            let body = rest.get(8..)?;
            if body.len() != count * 16 {
                return None;
            }
            let samples = body
                .chunks_exact(16)
                .map(|c| Sample {
                    time: SimTime::from_nanos(u64::from_le_bytes(c[0..8].try_into().unwrap())),
                    value: f64::from_bits(u64::from_le_bytes(c[8..16].try_into().unwrap())),
                })
                .collect();
            Some(WalRecord::Samples { series, samples })
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cwx_util::time::SimDuration;

    fn t(s: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(s)
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cwx-store-wal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn append_and_replay() {
        let dir = tmp_dir("replay");
        let path = dir.join("wal.log");
        let mut wal = Wal::open(&path).unwrap().wal;
        wal.add_series(0, 7, "cpu.util").unwrap();
        let batch = vec![
            Sample {
                time: t(1),
                value: 0.5,
            },
            Sample {
                time: t(2),
                value: 0.75,
            },
        ];
        wal.append_samples(0, &batch).unwrap();
        drop(wal);

        let rec = Wal::open(&path).unwrap();
        assert_eq!(rec.truncated_bytes, 0);
        assert_eq!(rec.records.len(), 2);
        assert_eq!(
            rec.records[0],
            WalRecord::AddSeries {
                series: 0,
                node: 7,
                monitor: "cpu.util".into()
            }
        );
        assert_eq!(
            rec.records[1],
            WalRecord::Samples {
                series: 0,
                samples: batch
            }
        );
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn torn_tail_is_truncated() {
        let dir = tmp_dir("torn");
        let path = dir.join("wal.log");
        let mut wal = Wal::open(&path).unwrap().wal;
        wal.add_series(0, 1, "m").unwrap();
        wal.append_samples(
            0,
            &[Sample {
                time: t(1),
                value: 1.0,
            }],
        )
        .unwrap();
        let good_len = wal.len_bytes();
        wal.append_samples(
            0,
            &[Sample {
                time: t(2),
                value: 2.0,
            }],
        )
        .unwrap();
        drop(wal);

        // tear the last record in half
        let full = std::fs::metadata(&path).unwrap().len();
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(good_len + (full - good_len) / 2).unwrap();
        drop(f);

        let rec = Wal::open(&path).unwrap();
        assert!(rec.truncated_bytes > 0);
        assert_eq!(rec.records.len(), 2, "intact prefix replays");
        assert_eq!(
            std::fs::metadata(&path).unwrap().len(),
            good_len,
            "tail removed"
        );

        // the log keeps working after truncation
        let mut wal = rec.wal;
        wal.append_samples(
            0,
            &[Sample {
                time: t(3),
                value: 3.0,
            }],
        )
        .unwrap();
        drop(wal);
        assert_eq!(Wal::open(&path).unwrap().records.len(), 3);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn corrupt_byte_truncates_from_there() {
        let dir = tmp_dir("corrupt");
        let path = dir.join("wal.log");
        let mut wal = Wal::open(&path).unwrap().wal;
        for i in 0..5 {
            wal.append_samples(
                0,
                &[Sample {
                    time: t(i),
                    value: i as f64,
                }],
            )
            .unwrap();
        }
        drop(wal);

        let mut data = std::fs::read(&path).unwrap();
        let mid = data.len() / 2;
        data[mid] ^= 0xff;
        std::fs::write(&path, &data).unwrap();

        let rec = Wal::open(&path).unwrap();
        assert!(rec.records.len() < 5, "records at/after the flip are gone");
        assert!(rec.truncated_bytes > 0);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn multi_append_replays_as_individual_frames() {
        let dir = tmp_dir("multi");
        let path = dir.join("wal.log");
        let mut wal = Wal::open(&path).unwrap().wal;
        let a = vec![Sample {
            time: t(1),
            value: 1.0,
        }];
        let b = vec![
            Sample {
                time: t(2),
                value: 2.0,
            },
            Sample {
                time: t(3),
                value: 3.0,
            },
        ];
        wal.append_samples_multi(&[(0, &a), (1, &b)]).unwrap();
        drop(wal);

        let rec = Wal::open(&path).unwrap();
        assert_eq!(rec.truncated_bytes, 0);
        assert_eq!(
            rec.records,
            vec![
                WalRecord::Samples {
                    series: 0,
                    samples: a.clone()
                },
                WalRecord::Samples {
                    series: 1,
                    samples: b.clone()
                },
            ]
        );

        // tearing inside the second frame keeps the first: a crash in
        // the middle of the batched write loses only the torn suffix
        let full = std::fs::metadata(&path).unwrap().len();
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(full - 8).unwrap();
        drop(f);
        let rec = Wal::open(&path).unwrap();
        assert!(rec.truncated_bytes > 0);
        assert_eq!(
            rec.records,
            vec![WalRecord::Samples {
                series: 0,
                samples: a
            }]
        );
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn checkpoint_empties_the_log() {
        let dir = tmp_dir("checkpoint");
        let path = dir.join("wal.log");
        let mut wal = Wal::open(&path).unwrap().wal;
        wal.add_series(0, 1, "m").unwrap();
        wal.append_samples(
            0,
            &[Sample {
                time: t(1),
                value: 1.0,
            }],
        )
        .unwrap();
        wal.checkpoint().unwrap();
        wal.append_samples(
            0,
            &[Sample {
                time: t(2),
                value: 2.0,
            }],
        )
        .unwrap();
        drop(wal);
        let rec = Wal::open(&path).unwrap();
        assert_eq!(rec.records.len(), 1, "only post-checkpoint records remain");
        let _ = std::fs::remove_dir_all(dir);
    }
}
