//! `cwx-store` — the embedded time-series storage engine behind
//! historical graphing (paper §5.1).
//!
//! The paper's ClusterWorX server "charts monitoring values over time
//! ... over a selected time interval"; an operations tool needs that
//! history to survive restarts and to absorb writes from hundreds of
//! agents at once. This crate is the durable backend:
//!
//! * [`wal`] — an append-only write-ahead log; every record carries a
//!   CRC32 and recovery replays the log, truncating a torn tail.
//! * [`segment`] — immutable on-disk segment files flushed from
//!   in-memory memtables, with delta-of-delta timestamp compression and
//!   XOR-varint value compression ([`codec`]).
//! * tiered compaction — raw samples are periodically merged and
//!   downsampled into 10-second and 5-minute min/mean/max/last tiers,
//!   so charts over long windows read pre-aggregated data.
//! * [`disk::DiskStore`] — shard-per-node-group write paths: each
//!   shard owns its own WAL, memtable and segments behind its own lock,
//!   so many agent threads ingest in parallel without a global lock.
//! * [`mem::MemStore`] — the volatile ring-buffer backend, kept for
//!   deterministic simulation tests.
//!
//! Durability contract: a sample is *acknowledged* once `append`
//! returns, at which point it lives in the shard WAL (OS page cache;
//! the engine does not fsync). A crash loses nothing acknowledged:
//! memtables are rebuilt by WAL replay, segments are immutable and
//! checksummed, and a torn WAL tail is truncated at the last record
//! whose CRC32 verifies. What is rebuilt rather than stored: memtables
//! and the series registry (from segment headers + WAL records).

#![warn(missing_docs)]

pub mod cache;
pub mod codec;
pub mod disk;
pub mod mem;
pub mod query;
pub mod segment;
pub mod wal;

pub use query::{
    AggFunc, AggPoint, GroupSeries, QueryError, QueryExecutor, QueryGroup, QueryLimits,
    QueryResult, QuerySpec, QueryStats,
};

use cwx_util::time::SimTime;

/// One stored sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sample {
    /// Sample time.
    pub time: SimTime,
    /// Numeric value.
    pub value: f64,
}

/// Pre-aggregated bucket stored in the downsampled tiers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AggBucket {
    /// Bucket start time.
    pub start: SimTime,
    /// Samples aggregated into the bucket.
    pub count: u64,
    /// Minimum value.
    pub min: f64,
    /// Mean value.
    pub mean: f64,
    /// Maximum value.
    pub max: f64,
    /// Last (most recent) value — charts draw step lines from this.
    pub last: f64,
}

/// Storage resolution tiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Resolution {
    /// Every sample as ingested.
    Raw,
    /// 10-second min/mean/max/last buckets.
    TenSeconds,
    /// 5-minute min/mean/max/last buckets.
    FiveMinutes,
    /// 1-hour min/mean/max/last buckets (dashboard-range queries).
    OneHour,
}

impl Resolution {
    /// Every stored downsampled tier, finest first.
    pub const TIERS: [Resolution; 3] = [
        Resolution::TenSeconds,
        Resolution::FiveMinutes,
        Resolution::OneHour,
    ];

    /// Bucket width; `None` for raw.
    pub fn bucket_nanos(self) -> Option<u64> {
        match self {
            Resolution::Raw => None,
            Resolution::TenSeconds => Some(10 * 1_000_000_000),
            Resolution::FiveMinutes => Some(300 * 1_000_000_000),
            Resolution::OneHour => Some(3_600 * 1_000_000_000),
        }
    }

    /// The tier tag used in segment files and file names.
    pub fn tag(self) -> u8 {
        match self {
            Resolution::Raw => 0,
            Resolution::TenSeconds => 1,
            Resolution::FiveMinutes => 2,
            Resolution::OneHour => 3,
        }
    }

    /// Inverse of [`Resolution::tag`].
    pub fn from_tag(tag: u8) -> Option<Resolution> {
        match tag {
            0 => Some(Resolution::Raw),
            1 => Some(Resolution::TenSeconds),
            2 => Some(Resolution::FiveMinutes),
            3 => Some(Resolution::OneHour),
            _ => None,
        }
    }
}

/// Errors surfaced by the persistent store.
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem error.
    Io(std::io::Error),
    /// A segment file failed validation (bad magic or checksum).
    CorruptSegment {
        /// Offending file.
        path: std::path::PathBuf,
        /// What failed.
        reason: &'static str,
    },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store I/O error: {e}"),
            StoreError::CorruptSegment { path, reason } => {
                write!(f, "corrupt segment {}: {reason}", path.display())
            }
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// One sample in an ingest batch handed to [`Store::append_batch`].
///
/// Borrows the monitor name so callers can batch straight out of decoded
/// reports without interning or cloning strings per sample.
#[derive(Debug, Clone, Copy)]
pub struct BatchSample<'a> {
    /// Node index.
    pub node: u32,
    /// Monitor name.
    pub monitor: &'a str,
    /// Sample time.
    pub time: SimTime,
    /// Numeric value.
    pub value: f64,
}

/// The interface `cwx-monitor`'s history façade programs against.
///
/// Methods take `&self`: backends use interior locking (per-shard for
/// the disk store), which is what lets many ingest threads write
/// concurrently.
pub trait Store: std::fmt::Debug + Send + Sync {
    /// Record one sample; the sample is durable (per the crate's
    /// durability contract) when this returns.
    fn append(&self, node: u32, monitor: &str, time: SimTime, value: f64);

    /// Record a batch of samples with the same durability guarantee as
    /// [`Store::append`] for every sample once this returns.
    ///
    /// The default just loops over [`Store::append`]; backends override
    /// it to amortize locking and WAL writes across the whole batch.
    fn append_batch(&self, batch: &[BatchSample<'_>]) {
        for s in batch {
            self.append(s.node, s.monitor, s.time, s.value);
        }
    }

    /// Latest sample of a series.
    fn latest(&self, node: u32, monitor: &str) -> Option<Sample>;

    /// Samples within `[from, to]`, oldest first.
    fn range(&self, node: u32, monitor: &str, from: SimTime, to: SimTime) -> Vec<Sample>;

    /// Pre-aggregated buckets within `[from, to]` at a fixed tier.
    /// Backends without stored tiers aggregate raw samples on the fly.
    fn range_agg(
        &self,
        node: u32,
        monitor: &str,
        from: SimTime,
        to: SimTime,
        res: Resolution,
    ) -> Vec<AggBucket> {
        let Some(width) = res.bucket_nanos() else {
            return self
                .range(node, monitor, from, to)
                .into_iter()
                .map(|s| AggBucket {
                    start: s.time,
                    count: 1,
                    min: s.value,
                    mean: s.value,
                    max: s.value,
                    last: s.value,
                })
                .collect();
        };
        aggregate(&self.range(node, monitor, from, to), width)
    }

    /// Every `(node, monitor)` series known to the store.
    fn series(&self) -> Vec<(u32, String)>;

    /// Drop all series of a node (node removed from the cluster).
    fn forget_node(&self, node: u32);

    /// Total samples ever appended (evicted/compacted ones included).
    fn total_samples(&self) -> u64;

    /// Flush buffered state to durable storage (no-op for volatile
    /// backends).
    fn flush(&self) {}

    /// Run an aggregation query (windowed, multi-series, grouped).
    ///
    /// The default implementation streams each group's member series
    /// through the query layer's k-way merge over [`Store::range`];
    /// backends with stored tiers override it to answer from the
    /// coarsest tier that satisfies the window.
    fn query(&self, spec: &QuerySpec) -> Result<QueryResult, QueryError> {
        query::run_over_ranges(spec, |node, monitor, from, to| {
            self.range(node, monitor, from, to)
        })
    }
}

impl<S: Store + ?Sized> Store for std::sync::Arc<S> {
    fn append(&self, node: u32, monitor: &str, time: SimTime, value: f64) {
        (**self).append(node, monitor, time, value)
    }
    fn append_batch(&self, batch: &[BatchSample<'_>]) {
        (**self).append_batch(batch)
    }
    fn latest(&self, node: u32, monitor: &str) -> Option<Sample> {
        (**self).latest(node, monitor)
    }
    fn range(&self, node: u32, monitor: &str, from: SimTime, to: SimTime) -> Vec<Sample> {
        (**self).range(node, monitor, from, to)
    }
    fn range_agg(
        &self,
        node: u32,
        monitor: &str,
        from: SimTime,
        to: SimTime,
        res: Resolution,
    ) -> Vec<AggBucket> {
        (**self).range_agg(node, monitor, from, to, res)
    }
    fn series(&self) -> Vec<(u32, String)> {
        (**self).series()
    }
    fn forget_node(&self, node: u32) {
        (**self).forget_node(node)
    }
    fn total_samples(&self) -> u64 {
        (**self).total_samples()
    }
    fn flush(&self) {
        (**self).flush()
    }
    fn query(&self, spec: &QuerySpec) -> Result<QueryResult, QueryError> {
        (**self).query(spec)
    }
}

// The windowed fold lives in [`query`] now (one aggregation code path
// for compaction, `range_agg` suffix merging and the query engine);
// re-exported here because PR 1 published it at the crate root.
pub use query::aggregate;

#[cfg(test)]
mod tests {
    use super::*;
    use cwx_util::time::SimDuration;

    fn t(s: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(s)
    }

    #[test]
    fn aggregate_builds_epoch_aligned_buckets() {
        let samples: Vec<Sample> = (0..30)
            .map(|i| Sample {
                time: t(i),
                value: i as f64,
            })
            .collect();
        let buckets = aggregate(&samples, 10 * 1_000_000_000);
        assert_eq!(buckets.len(), 3);
        assert_eq!(buckets[0].start, t(0));
        assert_eq!(buckets[1].start, t(10));
        assert_eq!(buckets[0].count, 10);
        assert_eq!(buckets[0].min, 0.0);
        assert_eq!(buckets[0].max, 9.0);
        assert_eq!(buckets[0].last, 9.0);
        assert!((buckets[0].mean - 4.5).abs() < 1e-9);
    }

    #[test]
    fn aggregate_single_timestamp_bucket() {
        let samples = vec![
            Sample {
                time: t(7),
                value: 1.0,
            },
            Sample {
                time: t(7),
                value: 3.0,
            },
        ];
        let b = aggregate(&samples, 10 * 1_000_000_000);
        assert_eq!(b.len(), 1);
        assert_eq!(b[0].count, 2);
        assert_eq!((b[0].min, b[0].max, b[0].last), (1.0, 3.0, 3.0));
        assert!((b[0].mean - 2.0).abs() < 1e-9);
    }

    #[test]
    fn resolution_tags_round_trip() {
        for r in [
            Resolution::Raw,
            Resolution::TenSeconds,
            Resolution::FiveMinutes,
            Resolution::OneHour,
        ] {
            assert_eq!(Resolution::from_tag(r.tag()), Some(r));
        }
        assert_eq!(Resolution::from_tag(9), None);
    }
}
