//! The volatile in-memory backend.
//!
//! A bounded ring of samples per `(node, monitor)` series — the storage
//! the repository started with, kept as a [`Store`] backend because the
//! deterministic simulation tests neither need nor want disk state.

use std::collections::{BTreeMap, VecDeque};

use cwx_util::time::SimTime;
use parking_lot::RwLock;

use crate::{Sample, Store};

/// Bounded per-series in-memory store.
#[derive(Debug)]
pub struct MemStore {
    inner: RwLock<Inner>,
    capacity_per_series: usize,
}

#[derive(Debug)]
struct Inner {
    series: BTreeMap<(u32, String), VecDeque<Sample>>,
    total_samples: u64,
}

impl MemStore {
    /// A store retaining at most `capacity_per_series` samples per
    /// series (oldest evicted first).
    pub fn new(capacity_per_series: usize) -> Self {
        assert!(capacity_per_series > 0);
        MemStore {
            inner: RwLock::new(Inner {
                series: BTreeMap::new(),
                total_samples: 0,
            }),
            capacity_per_series,
        }
    }
}

impl Store for MemStore {
    fn append(&self, node: u32, monitor: &str, time: SimTime, value: f64) {
        let mut inner = self.inner.write();
        let cap = self.capacity_per_series;
        let q = inner.series.entry((node, monitor.to_string())).or_default();
        if q.len() == cap {
            q.pop_front();
        }
        q.push_back(Sample { time, value });
        inner.total_samples += 1;
    }

    fn latest(&self, node: u32, monitor: &str) -> Option<Sample> {
        self.inner
            .read()
            .series
            .get(&(node, monitor.to_string()))
            .and_then(|q| q.back().copied())
    }

    fn range(&self, node: u32, monitor: &str, from: SimTime, to: SimTime) -> Vec<Sample> {
        self.inner
            .read()
            .series
            .get(&(node, monitor.to_string()))
            .map(|q| {
                q.iter()
                    .filter(|s| s.time >= from && s.time <= to)
                    .copied()
                    .collect()
            })
            .unwrap_or_default()
    }

    fn series(&self) -> Vec<(u32, String)> {
        self.inner.read().series.keys().cloned().collect()
    }

    fn forget_node(&self, node: u32) {
        self.inner.write().series.retain(|(n, _), _| *n != node);
    }

    fn total_samples(&self) -> u64 {
        self.inner.read().total_samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cwx_util::time::SimDuration;

    fn t(s: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(s)
    }

    #[test]
    fn ring_evicts_oldest() {
        let m = MemStore::new(3);
        for i in 0..5 {
            m.append(1, "k", t(i), i as f64);
        }
        let all = m.range(1, "k", t(0), t(100));
        assert_eq!(all.len(), 3);
        assert_eq!(all[0].value, 2.0);
        assert_eq!(m.total_samples(), 5);
    }

    #[test]
    fn series_listing_and_forget() {
        let m = MemStore::new(8);
        m.append(1, "a", t(1), 1.0);
        m.append(2, "a", t(1), 2.0);
        m.append(2, "b", t(1), 3.0);
        assert_eq!(m.series().len(), 3);
        m.forget_node(2);
        assert_eq!(m.series(), vec![(1, "a".to_string())]);
    }

    #[test]
    fn concurrent_readers_and_writers() {
        let m = std::sync::Arc::new(MemStore::new(1024));
        let writers: Vec<_> = (0..4u32)
            .map(|node| {
                let m = std::sync::Arc::clone(&m);
                std::thread::spawn(move || {
                    for i in 0..500 {
                        m.append(node, "k", t(i), i as f64);
                    }
                })
            })
            .collect();
        let m2 = std::sync::Arc::clone(&m);
        let reader = std::thread::spawn(move || {
            let mut seen = 0usize;
            for _ in 0..100 {
                seen = seen.max(m2.range(0, "k", t(0), t(1000)).len());
            }
            seen
        });
        for w in writers {
            w.join().unwrap();
        }
        reader.join().unwrap();
        assert_eq!(m.total_samples(), 4 * 500);
    }
}
