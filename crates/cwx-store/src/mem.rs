//! The volatile in-memory backend.
//!
//! A bounded ring of samples per `(node, monitor)` series — the storage
//! the repository started with, kept as a [`Store`] backend because the
//! deterministic simulation tests neither need nor want disk state.
//!
//! Layout is tuned for very wide clusters (tens of thousands of nodes ×
//! dozens of monitors): one map entry per *node*, with that node's rings
//! side by side and monitor names interned to a shared id table. The
//! naive `BTreeMap<(u32, String), VecDeque<Sample>>` shape costs ~400
//! bytes of map, string and deque overhead per series before the first
//! sample; at 20k nodes × 8 monitors that overhead alone is tens of
//! megabytes of resident memory on the realtime ingest server.

use std::collections::HashMap;
use std::sync::Arc;

use cwx_util::time::SimTime;
use parking_lot::RwLock;

use crate::{Sample, Store};

/// Bounded per-series in-memory store.
#[derive(Debug)]
pub struct MemStore {
    inner: RwLock<Inner>,
    capacity_per_series: usize,
}

#[derive(Debug, Default)]
struct Inner {
    /// Interned monitor names; a series stores the 2-byte id.
    key_ids: HashMap<Arc<str>, u16>,
    keys: Vec<Arc<str>>,
    nodes: HashMap<u32, NodeSeries>,
    total_samples: u64,
}

/// One node's rings, parallel arrays keyed by interned monitor id. A
/// node has few monitors, so lookups are a short linear scan.
#[derive(Debug, Default)]
struct NodeSeries {
    ids: Vec<u16>,
    rings: Vec<Ring>,
}

impl NodeSeries {
    fn get(&self, id: u16) -> Option<&Ring> {
        self.ids
            .iter()
            .position(|&i| i == id)
            .map(|p| &self.rings[p])
    }
}

/// A bounded ring over a `Vec` that grows to capacity then wraps.
#[derive(Debug)]
struct Ring {
    buf: Vec<Sample>,
    /// Oldest sample once the ring has wrapped (buf.len() == cap).
    head: usize,
}

impl Ring {
    fn push(&mut self, cap: usize, s: Sample) {
        if self.buf.len() < cap {
            self.buf.push(s);
        } else {
            self.buf[self.head] = s;
            self.head = (self.head + 1) % self.buf.len();
        }
    }

    fn latest(&self) -> Option<Sample> {
        if self.buf.is_empty() {
            None
        } else if self.head == 0 {
            self.buf.last().copied()
        } else {
            Some(self.buf[self.head - 1])
        }
    }

    /// Oldest-first iteration.
    fn iter(&self) -> impl Iterator<Item = &Sample> {
        self.buf[self.head..]
            .iter()
            .chain(self.buf[..self.head].iter())
    }
}

impl Inner {
    fn key_id(&self, monitor: &str) -> Option<u16> {
        self.key_ids.get(monitor).copied()
    }

    fn intern(&mut self, monitor: &str) -> u16 {
        if let Some(&id) = self.key_ids.get(monitor) {
            return id;
        }
        let id = u16::try_from(self.keys.len()).expect("more than 65k distinct monitor names");
        let name: Arc<str> = Arc::from(monitor);
        self.keys.push(Arc::clone(&name));
        self.key_ids.insert(name, id);
        id
    }
}

impl MemStore {
    /// A store retaining at most `capacity_per_series` samples per
    /// series (oldest evicted first).
    pub fn new(capacity_per_series: usize) -> Self {
        assert!(capacity_per_series > 0);
        MemStore {
            inner: RwLock::new(Inner::default()),
            capacity_per_series,
        }
    }
}

impl Store for MemStore {
    fn append(&self, node: u32, monitor: &str, time: SimTime, value: f64) {
        let mut inner = self.inner.write();
        let id = inner.intern(monitor);
        let cap = self.capacity_per_series;
        let ns = inner.nodes.entry(node).or_default();
        let ring = match ns.ids.iter().position(|&i| i == id) {
            Some(p) => &mut ns.rings[p],
            None => {
                ns.ids.push(id);
                ns.rings.push(Ring {
                    buf: Vec::new(),
                    head: 0,
                });
                ns.rings.last_mut().unwrap()
            }
        };
        ring.push(cap, Sample { time, value });
        inner.total_samples += 1;
    }

    fn latest(&self, node: u32, monitor: &str) -> Option<Sample> {
        let inner = self.inner.read();
        let id = inner.key_id(monitor)?;
        inner.nodes.get(&node)?.get(id)?.latest()
    }

    fn range(&self, node: u32, monitor: &str, from: SimTime, to: SimTime) -> Vec<Sample> {
        let inner = self.inner.read();
        let Some(id) = inner.key_id(monitor) else {
            return Vec::new();
        };
        inner
            .nodes
            .get(&node)
            .and_then(|ns| ns.get(id))
            .map(|r| {
                r.iter()
                    .filter(|s| s.time >= from && s.time <= to)
                    .copied()
                    .collect()
            })
            .unwrap_or_default()
    }

    fn series(&self) -> Vec<(u32, String)> {
        let inner = self.inner.read();
        let mut out = Vec::new();
        for (&node, ns) in &inner.nodes {
            for &id in &ns.ids {
                out.push((node, inner.keys[id as usize].to_string()));
            }
        }
        out.sort_unstable();
        out
    }

    fn forget_node(&self, node: u32) {
        self.inner.write().nodes.remove(&node);
    }

    fn total_samples(&self) -> u64 {
        self.inner.read().total_samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cwx_util::time::SimDuration;

    fn t(s: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(s)
    }

    #[test]
    fn ring_evicts_oldest() {
        let m = MemStore::new(3);
        for i in 0..5 {
            m.append(1, "k", t(i), i as f64);
        }
        let all = m.range(1, "k", t(0), t(100));
        assert_eq!(all.len(), 3);
        assert_eq!(all[0].value, 2.0);
        assert_eq!(all[2].value, 4.0);
        assert_eq!(m.total_samples(), 5);
        assert_eq!(m.latest(1, "k").unwrap().value, 4.0);
    }

    #[test]
    fn wrapped_ring_keeps_time_order() {
        let m = MemStore::new(4);
        for i in 0..11 {
            m.append(7, "k", t(i), i as f64);
        }
        let all = m.range(7, "k", t(0), t(100));
        assert_eq!(
            all.iter().map(|s| s.value).collect::<Vec<_>>(),
            vec![7.0, 8.0, 9.0, 10.0]
        );
    }

    #[test]
    fn series_listing_and_forget() {
        let m = MemStore::new(8);
        m.append(1, "a", t(1), 1.0);
        m.append(2, "a", t(1), 2.0);
        m.append(2, "b", t(1), 3.0);
        assert_eq!(m.series().len(), 3);
        m.forget_node(2);
        assert_eq!(m.series(), vec![(1, "a".to_string())]);
    }

    #[test]
    fn concurrent_readers_and_writers() {
        let m = std::sync::Arc::new(MemStore::new(1024));
        let writers: Vec<_> = (0..4u32)
            .map(|node| {
                let m = std::sync::Arc::clone(&m);
                std::thread::spawn(move || {
                    for i in 0..500 {
                        m.append(node, "k", t(i), i as f64);
                    }
                })
            })
            .collect();
        let m2 = std::sync::Arc::clone(&m);
        let reader = std::thread::spawn(move || {
            let mut seen = 0usize;
            for _ in 0..100 {
                seen = seen.max(m2.range(0, "k", t(0), t(1000)).len());
            }
            seen
        });
        for w in writers {
            w.join().unwrap();
        }
        reader.join().unwrap();
        assert_eq!(m.total_samples(), 4 * 500);
    }
}
