//! The aggregation query engine (paper §5.1's "charts over a selected
//! time interval", grown into a real read path).
//!
//! Three layers live here:
//!
//! * **The canonical windowed fold** — [`aggregate`], [`merge_buckets`]
//!   and the incremental [`fold_sample`]/[`fold_bucket`] primitives.
//!   Compaction, `range_agg` suffix merging and the query engine all go
//!   through these; there is exactly one aggregation code path in the
//!   crate.
//! * **Query evaluation** — [`QuerySpec`] (windowed function over a
//!   time range, evaluated per [`QueryGroup`] of nodes) is answered by
//!   k-way **merge iterators** (`SampleMerge`/`BucketMerge`) that
//!   stream time-ordered over per-series sources (decoded segment
//!   blocks held by `Arc`, memtable snapshots) instead of
//!   materializing and re-sorting whole ranges. Windows are
//!   epoch-aligned and *complete*: `from`/`to` widen to window
//!   boundaries so a tier-served answer and a raw-served answer see
//!   the same samples. [`select_tier`] picks the coarsest stored tier
//!   whose buckets nest exactly inside the window; percentiles and
//!   `rate` need individual samples and always scan raw.
//! * **Admission control** — [`QueryExecutor`], a bounded worker pool
//!   with a queue-depth cap and a per-query scanned-samples budget so
//!   N dashboard-shaped clients cannot starve ingest. Over-budget or
//!   over-queue queries fail fast with [`QueryError`] instead of
//!   piling onto the shard locks.
//!
//! Memory bounds: a raw-path query holds the `Arc`s of the blocks its
//! cursors point into plus, for percentile functions, the values of
//! the *single open window* (the merged stream is time-ordered, so
//! windows close in order). A tier-path query holds one small
//! accumulator per output window. The scanned-samples budget caps both.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};

use cwx_util::time::SimTime;

use crate::segment::SeriesData;
use crate::{AggBucket, Resolution, Sample, Store};

// ---------------------------------------------------------------------
// the canonical windowed fold

/// Floor a time to an epoch-aligned window start.
pub fn floor_to(t: SimTime, width_nanos: u64) -> SimTime {
    let w = width_nanos.max(1);
    SimTime::from_nanos(t.as_nanos() / w * w)
}

/// A one-sample bucket (its own window start; callers re-floor).
pub fn bucket_of(s: Sample) -> AggBucket {
    AggBucket {
        start: s.time,
        count: 1,
        min: s.value,
        mean: s.value,
        max: s.value,
        last: s.value,
    }
}

/// Merge one sample into a bucket accumulator (incremental mean).
pub fn bucket_add_sample(b: &mut AggBucket, value: f64) {
    b.count += 1;
    b.min = b.min.min(value);
    b.max = b.max.max(value);
    b.mean += (value - b.mean) / b.count as f64;
    b.last = value;
}

/// Merge a finer bucket into a wider accumulator (count-weighted mean;
/// `fine` must be at or after `w` in time so `last` stays the newest).
pub fn bucket_add_bucket(w: &mut AggBucket, fine: &AggBucket) {
    let total = w.count + fine.count;
    w.mean = (w.mean * w.count as f64 + fine.mean * fine.count as f64) / total as f64;
    w.count = total;
    w.min = w.min.min(fine.min);
    w.max = w.max.max(fine.max);
    w.last = fine.last;
}

/// Fold one sample into epoch-aligned buckets; `out` must be fed
/// time-ordered input (the bucket merged into is always the last).
pub fn fold_sample(out: &mut Vec<AggBucket>, s: Sample, width_nanos: u64) {
    let start = floor_to(s.time, width_nanos);
    match out.last_mut() {
        Some(b) if b.start == start => bucket_add_sample(b, s.value),
        _ => out.push(AggBucket {
            start,
            ..bucket_of(s)
        }),
    }
}

/// Fold one (finer) bucket into epoch-aligned wider buckets; means are
/// combined count-weighted. Like [`fold_sample`], expects time order.
pub fn fold_bucket(out: &mut Vec<AggBucket>, b: &AggBucket, width_nanos: u64) {
    let start = floor_to(b.start, width_nanos);
    match out.last_mut() {
        Some(w) if w.start == start => bucket_add_bucket(w, b),
        _ => out.push(AggBucket { start, ..*b }),
    }
}

/// Aggregate time-ordered samples into fixed-width buckets aligned to
/// the epoch (so buckets from different flushes line up).
pub fn aggregate(samples: &[Sample], width_nanos: u64) -> Vec<AggBucket> {
    let mut out = Vec::new();
    for &s in samples {
        fold_sample(&mut out, s, width_nanos);
    }
    out
}

/// Combine fine buckets into wider epoch-aligned buckets.
pub fn merge_buckets(fine: &[AggBucket], width_nanos: u64) -> Vec<AggBucket> {
    let mut out = Vec::new();
    for b in fine {
        fold_bucket(&mut out, b, width_nanos);
    }
    out
}

// ---------------------------------------------------------------------
// query model

/// Aggregation function applied per window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// Per-window rate of change: `(last - first) / seconds-spanned`.
    Rate,
    /// Arithmetic mean.
    Avg,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// Sum of values.
    Sum,
    /// Sample count.
    Count,
    /// 50th percentile (nearest-rank).
    P50,
    /// 95th percentile (nearest-rank).
    P95,
    /// 99th percentile (nearest-rank).
    P99,
}

impl AggFunc {
    /// Parse a CLI/wire name (`"p99"`, `"avg"`, …).
    pub fn parse(s: &str) -> Option<AggFunc> {
        Some(match s {
            "rate" => AggFunc::Rate,
            "avg" | "mean" => AggFunc::Avg,
            "min" => AggFunc::Min,
            "max" => AggFunc::Max,
            "sum" => AggFunc::Sum,
            "count" => AggFunc::Count,
            "p50" => AggFunc::P50,
            "p95" => AggFunc::P95,
            "p99" => AggFunc::P99,
            _ => return None,
        })
    }

    /// Canonical name (inverse of [`AggFunc::parse`]).
    pub fn name(self) -> &'static str {
        match self {
            AggFunc::Rate => "rate",
            AggFunc::Avg => "avg",
            AggFunc::Min => "min",
            AggFunc::Max => "max",
            AggFunc::Sum => "sum",
            AggFunc::Count => "count",
            AggFunc::P50 => "p50",
            AggFunc::P95 => "p95",
            AggFunc::P99 => "p99",
        }
    }

    /// Can this function be computed from stored min/mean/max/count
    /// buckets? Percentiles and `rate` need the individual samples.
    pub fn tier_serveable(self) -> bool {
        matches!(
            self,
            AggFunc::Avg | AggFunc::Min | AggFunc::Max | AggFunc::Sum | AggFunc::Count
        )
    }

    fn percentile(self) -> Option<f64> {
        match self {
            AggFunc::P50 => Some(50.0),
            AggFunc::P95 => Some(95.0),
            AggFunc::P99 => Some(99.0),
            _ => None,
        }
    }
}

/// One group of nodes aggregated together (e.g. a rack).
#[derive(Debug, Clone)]
pub struct QueryGroup {
    /// Display key (`"rack3"`, `"node17"`, `"all"`, …).
    pub key: String,
    /// Member nodes; their series merge into one windowed result.
    pub nodes: Vec<u32>,
}

/// A windowed aggregation query.
#[derive(Debug, Clone)]
pub struct QuerySpec {
    /// Monitor name (`"cpu.util"`, …).
    pub monitor: String,
    /// Range start; widened down to the containing window boundary.
    pub from: SimTime,
    /// Range end; widened up to the containing window's last nanosecond.
    pub to: SimTime,
    /// Output window width in nanoseconds.
    pub window_nanos: u64,
    /// Function evaluated per window per group.
    pub agg: AggFunc,
    /// Node groups; each yields one series in the result.
    pub groups: Vec<QueryGroup>,
    /// Per-query scanned-entries budget (samples + buckets); `0`
    /// means "no explicit budget" (the executor fills in its default).
    pub max_scan: u64,
}

impl QuerySpec {
    /// The complete-window bounds actually evaluated.
    pub fn window_bounds(&self) -> (SimTime, SimTime) {
        let w = self.window_nanos.max(1);
        let from = floor_to(self.from, w);
        let to = SimTime::from_nanos((self.to.as_nanos() / w * w).saturating_add(w - 1));
        (from, to)
    }

    pub(crate) fn validate(&self) -> Result<(), QueryError> {
        if self.window_nanos == 0 {
            return Err(QueryError::BadQuery("window must be non-zero".into()));
        }
        if self.monitor.is_empty() {
            return Err(QueryError::BadQuery("empty monitor name".into()));
        }
        if self.from > self.to {
            return Err(QueryError::BadQuery("from > to".into()));
        }
        Ok(())
    }
}

/// One output window of one group.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AggPoint {
    /// Window start.
    pub start: SimTime,
    /// The aggregated value.
    pub value: f64,
    /// Samples that contributed.
    pub count: u64,
}

/// One group's windowed series.
#[derive(Debug, Clone)]
pub struct GroupSeries {
    /// The group key from the spec.
    pub key: String,
    /// Windows in time order (empty windows are omitted).
    pub points: Vec<AggPoint>,
}

/// How a query was answered (the E17 bench attributes tier wins here).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryStats {
    /// The tier selected for the window ([`Resolution::Raw`] when the
    /// function or window forced a raw scan).
    pub tier: Resolution,
    /// Raw samples folded (tier-uncovered suffix included).
    pub scanned_raw: u64,
    /// Pre-aggregated buckets folded.
    pub scanned_buckets: u64,
    /// Shards that lacked the selected tier and fell back finer/raw.
    pub fallback_shards: u64,
}

impl Default for QueryStats {
    fn default() -> Self {
        QueryStats {
            tier: Resolution::Raw,
            scanned_raw: 0,
            scanned_buckets: 0,
            fallback_shards: 0,
        }
    }
}

/// A complete query answer.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// One series per requested group, in spec order.
    pub groups: Vec<GroupSeries>,
    /// Evaluation counters.
    pub stats: QueryStats,
}

/// Why a query was refused or aborted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// Admission control: the executor queue is full.
    Overloaded {
        /// Queries already waiting when this one was shed.
        queued: usize,
    },
    /// The query would scan more entries than its budget allows.
    BudgetExceeded {
        /// Entries the query wanted to scan when it tripped.
        scanned: u64,
        /// The budget it tripped over.
        budget: u64,
    },
    /// Malformed query.
    BadQuery(String),
    /// The executor is shutting down.
    Closed,
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::Overloaded { queued } => {
                write!(f, "query shed: executor queue full ({queued} waiting)")
            }
            QueryError::BudgetExceeded { scanned, budget } => {
                write!(f, "query over scan budget ({scanned} > {budget} entries)")
            }
            QueryError::BadQuery(why) => write!(f, "bad query: {why}"),
            QueryError::Closed => write!(f, "query executor closed"),
        }
    }
}

impl std::error::Error for QueryError {}

/// Coarsest stored tier that can answer `agg` over `window_nanos`
/// exactly: bucket width must divide the window so tier buckets nest
/// inside output windows. Returns [`Resolution::Raw`] when no tier
/// qualifies (sub-10s windows, percentiles, `rate`).
pub fn select_tier(window_nanos: u64, agg: AggFunc) -> Resolution {
    if !agg.tier_serveable() {
        return Resolution::Raw;
    }
    for res in Resolution::TIERS.iter().rev() {
        let w = res.bucket_nanos().expect("tiers have widths");
        if window_nanos >= w && window_nanos.is_multiple_of(w) {
            return *res;
        }
    }
    Resolution::Raw
}

// ---------------------------------------------------------------------
// merge iterators

/// A time-ordered cursor over one series' samples from one source —
/// either a decoded segment block (kept alive by its `Arc`, so the
/// block cache can evict underneath) or an owned snapshot (memtable).
#[derive(Debug)]
pub(crate) struct SampleCursor {
    block: Option<Arc<SeriesData>>,
    owned: Vec<Sample>,
    pos: usize,
    end: usize,
}

impl SampleCursor {
    pub(crate) fn from_block(block: Arc<SeriesData>, from: SimTime, to: SimTime) -> SampleCursor {
        let (pos, end) = match &*block {
            SeriesData::Raw(s) => bounds(s, from, to),
            SeriesData::Buckets(_) => (0, 0),
        };
        SampleCursor {
            block: Some(block),
            owned: Vec::new(),
            pos,
            end,
        }
    }

    pub(crate) fn from_owned(samples: Vec<Sample>, from: SimTime, to: SimTime) -> SampleCursor {
        let (pos, end) = bounds(&samples, from, to);
        SampleCursor {
            block: None,
            owned: samples,
            pos,
            end,
        }
    }

    fn samples(&self) -> &[Sample] {
        match &self.block {
            Some(b) => match &**b {
                SeriesData::Raw(s) => s,
                SeriesData::Buckets(_) => &[],
            },
            None => &self.owned,
        }
    }

    /// In-range samples left to stream (the scan-budget contribution).
    pub(crate) fn remaining(&self) -> u64 {
        (self.end - self.pos) as u64
    }

    fn peek(&self) -> Option<Sample> {
        (self.pos < self.end).then(|| self.samples()[self.pos])
    }
}

fn bounds(samples: &[Sample], from: SimTime, to: SimTime) -> (usize, usize) {
    let pos = samples.partition_point(|s| s.time < from);
    let end = samples.partition_point(|s| s.time <= to);
    (pos, end.max(pos))
}

/// K-way merge over [`SampleCursor`]s, yielding samples in time order
/// (ties broken by source index, preserving segment-then-memtable
/// order within a series).
#[derive(Debug)]
pub(crate) struct SampleMerge {
    cursors: Vec<SampleCursor>,
    heap: BinaryHeap<Reverse<(u64, usize)>>,
}

impl SampleMerge {
    pub(crate) fn new(cursors: Vec<SampleCursor>) -> SampleMerge {
        let mut heap = BinaryHeap::with_capacity(cursors.len());
        for (i, c) in cursors.iter().enumerate() {
            if let Some(s) = c.peek() {
                heap.push(Reverse((s.time.as_nanos(), i)));
            }
        }
        SampleMerge { cursors, heap }
    }
}

impl Iterator for SampleMerge {
    type Item = Sample;

    fn next(&mut self) -> Option<Sample> {
        let Reverse((_, i)) = self.heap.pop()?;
        let c = &mut self.cursors[i];
        let s = c.peek().expect("heap entry implies a peekable cursor");
        c.pos += 1;
        if let Some(n) = c.peek() {
            self.heap.push(Reverse((n.time.as_nanos(), i)));
        }
        Some(s)
    }
}

/// Bucket equivalent of [`SampleCursor`] over a tier block.
#[derive(Debug)]
pub(crate) struct BucketCursor {
    block: Arc<SeriesData>,
    pos: usize,
    end: usize,
}

impl BucketCursor {
    pub(crate) fn from_block(block: Arc<SeriesData>, from: SimTime, to: SimTime) -> BucketCursor {
        let (pos, end) = match &*block {
            SeriesData::Buckets(b) => {
                let pos = b.partition_point(|x| x.start < from);
                let end = b.partition_point(|x| x.start <= to);
                (pos, end.max(pos))
            }
            SeriesData::Raw(_) => (0, 0),
        };
        BucketCursor { block, pos, end }
    }

    fn buckets(&self) -> &[AggBucket] {
        match &*self.block {
            SeriesData::Buckets(b) => b,
            SeriesData::Raw(_) => &[],
        }
    }

    /// In-range buckets left to stream.
    pub(crate) fn remaining(&self) -> u64 {
        (self.end - self.pos) as u64
    }

    fn peek(&self) -> Option<AggBucket> {
        (self.pos < self.end).then(|| self.buckets()[self.pos])
    }
}

/// K-way merge over [`BucketCursor`]s by bucket start.
#[derive(Debug)]
pub(crate) struct BucketMerge {
    cursors: Vec<BucketCursor>,
    heap: BinaryHeap<Reverse<(u64, usize)>>,
}

impl BucketMerge {
    pub(crate) fn new(cursors: Vec<BucketCursor>) -> BucketMerge {
        let mut heap = BinaryHeap::with_capacity(cursors.len());
        for (i, c) in cursors.iter().enumerate() {
            if let Some(b) = c.peek() {
                heap.push(Reverse((b.start.as_nanos(), i)));
            }
        }
        BucketMerge { cursors, heap }
    }
}

impl Iterator for BucketMerge {
    type Item = AggBucket;

    fn next(&mut self) -> Option<AggBucket> {
        let Reverse((_, i)) = self.heap.pop()?;
        let c = &mut self.cursors[i];
        let b = c.peek().expect("heap entry implies a peekable cursor");
        c.pos += 1;
        if let Some(n) = c.peek() {
            self.heap.push(Reverse((n.start.as_nanos(), i)));
        }
        Some(b)
    }
}

// ---------------------------------------------------------------------
// window accumulation

/// Accumulator for one output window.
#[derive(Debug)]
struct WinAcc {
    bucket: AggBucket,
    sum: f64,
    first: f64,
    first_time: SimTime,
    last_time: SimTime,
    /// Individual values, kept only for percentile functions.
    values: Vec<f64>,
}

impl WinAcc {
    fn from_sample(start: SimTime, s: Sample, keep_values: bool) -> WinAcc {
        WinAcc {
            bucket: AggBucket {
                start,
                ..bucket_of(s)
            },
            sum: s.value,
            first: s.value,
            first_time: s.time,
            last_time: s.time,
            values: if keep_values {
                vec![s.value]
            } else {
                Vec::new()
            },
        }
    }

    fn push_sample(&mut self, s: Sample, keep_values: bool) {
        bucket_add_sample(&mut self.bucket, s.value);
        self.sum += s.value;
        self.last_time = s.time;
        if keep_values {
            self.values.push(s.value);
        }
    }

    fn finish(mut self, agg: AggFunc) -> AggPoint {
        let b = self.bucket;
        let value = match agg {
            AggFunc::Avg => b.mean,
            AggFunc::Min => b.min,
            AggFunc::Max => b.max,
            AggFunc::Sum => self.sum,
            AggFunc::Count => b.count as f64,
            AggFunc::Rate => {
                let dt = self
                    .last_time
                    .as_nanos()
                    .saturating_sub(self.first_time.as_nanos());
                if b.count < 2 || dt == 0 {
                    0.0
                } else {
                    (b.last - self.first) / (dt as f64 / 1e9)
                }
            }
            AggFunc::P50 | AggFunc::P95 | AggFunc::P99 => {
                let p = agg.percentile().expect("percentile func");
                self.values
                    .sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
                let n = self.values.len();
                if n == 0 {
                    0.0
                } else {
                    let rank = ((p / 100.0 * n as f64).ceil() as usize).clamp(1, n);
                    self.values[rank - 1]
                }
            }
        };
        AggPoint {
            start: b.start,
            value,
            count: b.count,
        }
    }
}

/// Fold a time-ordered sample stream into windowed points. Only the
/// current window's accumulator (and, for percentiles, its values) is
/// held at any moment.
pub(crate) fn fold_stream<I: Iterator<Item = Sample>>(
    stream: I,
    agg: AggFunc,
    width_nanos: u64,
) -> Vec<AggPoint> {
    let keep_values = agg.percentile().is_some();
    let mut out = Vec::new();
    let mut open: Option<WinAcc> = None;
    for s in stream {
        let start = floor_to(s.time, width_nanos);
        match &mut open {
            Some(acc) if acc.bucket.start == start => acc.push_sample(s, keep_values),
            _ => {
                if let Some(done) = open.take() {
                    out.push(done.finish(agg));
                }
                open = Some(WinAcc::from_sample(start, s, keep_values));
            }
        }
    }
    if let Some(done) = open {
        out.push(done.finish(agg));
    }
    out
}

/// Windowed accumulation keyed by window start, for tier-served
/// queries whose contributions (tier buckets from several segments,
/// per-shard raw suffixes) do not arrive globally time-ordered. Only
/// tier-serveable functions use this, so no per-value buffering.
#[derive(Debug)]
pub(crate) struct WindowMap {
    width: u64,
    map: BTreeMap<u64, (AggBucket, f64)>,
}

impl WindowMap {
    pub(crate) fn new(width_nanos: u64) -> WindowMap {
        WindowMap {
            width: width_nanos.max(1),
            map: BTreeMap::new(),
        }
    }

    pub(crate) fn fold_bucket(&mut self, b: &AggBucket) {
        let start = floor_to(b.start, self.width);
        match self.map.get_mut(&start.as_nanos()) {
            Some((w, sum)) => {
                bucket_add_bucket(w, b);
                *sum += b.mean * b.count as f64;
            }
            None => {
                self.map.insert(
                    start.as_nanos(),
                    (AggBucket { start, ..*b }, b.mean * b.count as f64),
                );
            }
        }
    }

    pub(crate) fn fold_sample(&mut self, s: Sample) {
        self.fold_bucket(&bucket_of(s));
    }

    pub(crate) fn finish(self, agg: AggFunc) -> Vec<AggPoint> {
        self.map
            .into_values()
            .map(|(b, sum)| AggPoint {
                start: b.start,
                value: match agg {
                    AggFunc::Avg => b.mean,
                    AggFunc::Min => b.min,
                    AggFunc::Max => b.max,
                    AggFunc::Sum => sum,
                    AggFunc::Count => b.count as f64,
                    _ => unreachable!("non-tier-serveable func in WindowMap"),
                },
                count: b.count,
            })
            .collect()
    }
}

/// Evaluate `spec` against any `fetch(node, monitor, from, to)` range
/// reader — the default [`Store::query`] path for backends without
/// stored tiers.
pub fn run_over_ranges<F>(spec: &QuerySpec, fetch: F) -> Result<QueryResult, QueryError>
where
    F: Fn(u32, &str, SimTime, SimTime) -> Vec<Sample>,
{
    spec.validate()?;
    let (from, to) = spec.window_bounds();
    let budget = if spec.max_scan == 0 {
        u64::MAX
    } else {
        spec.max_scan
    };
    let mut stats = QueryStats::default();
    let mut groups = Vec::with_capacity(spec.groups.len());
    for g in &spec.groups {
        let cursors: Vec<SampleCursor> = g
            .nodes
            .iter()
            .map(|&n| SampleCursor::from_owned(fetch(n, &spec.monitor, from, to), from, to))
            .collect();
        let scan: u64 = cursors.iter().map(|c| c.remaining()).sum();
        stats.scanned_raw += scan;
        if stats.scanned_raw + stats.scanned_buckets > budget {
            return Err(QueryError::BudgetExceeded {
                scanned: stats.scanned_raw + stats.scanned_buckets,
                budget,
            });
        }
        let points = fold_stream(SampleMerge::new(cursors), spec.agg, spec.window_nanos);
        groups.push(GroupSeries {
            key: g.key.clone(),
            points,
        });
    }
    Ok(QueryResult { groups, stats })
}

// ---------------------------------------------------------------------
// admission-controlled executor

/// Admission-control knobs for a [`QueryExecutor`].
#[derive(Debug, Clone, Copy)]
pub struct QueryLimits {
    /// Worker threads evaluating queries.
    pub workers: usize,
    /// Queries allowed to wait; one more is shed with
    /// [`QueryError::Overloaded`].
    pub max_queue: usize,
    /// Default per-query scanned-entries budget applied when a spec
    /// does not set its own.
    pub max_scanned_samples: u64,
}

impl Default for QueryLimits {
    fn default() -> Self {
        QueryLimits {
            workers: 2,
            max_queue: 32,
            max_scanned_samples: 8_000_000,
        }
    }
}

/// Executor counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecutorStats {
    /// Queries accepted into the queue.
    pub submitted: u64,
    /// Queries evaluated (errors included).
    pub completed: u64,
    /// Queries refused by admission control.
    pub shed: u64,
    /// Completed queries that returned an error.
    pub errors: u64,
    /// Queries waiting right now.
    pub queued_now: usize,
    /// Queries evaluating right now.
    pub active_now: usize,
}

struct Job {
    spec: QuerySpec,
    done: Box<dyn FnOnce(Result<QueryResult, QueryError>) + Send>,
}

struct ExecShared {
    store: Arc<dyn Store>,
    limits: QueryLimits,
    queue: Mutex<VecDeque<Job>>,
    cv: Condvar,
    shutdown: AtomicBool,
    submitted: AtomicU64,
    completed: AtomicU64,
    shed: AtomicU64,
    errors: AtomicU64,
    active: AtomicUsize,
}

/// A bounded worker pool evaluating [`QuerySpec`]s against a shared
/// store, with queue-depth admission control so dashboard fan-in
/// degrades by shedding queries instead of starving ingest.
pub struct QueryExecutor {
    shared: Arc<ExecShared>,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl std::fmt::Debug for QueryExecutor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryExecutor")
            .field("limits", &self.shared.limits)
            .finish_non_exhaustive()
    }
}

impl QueryExecutor {
    /// Spawn `limits.workers` threads over `store`.
    pub fn new(store: Arc<dyn Store>, limits: QueryLimits) -> QueryExecutor {
        let limits = QueryLimits {
            workers: limits.workers.max(1),
            max_queue: limits.max_queue,
            ..limits
        };
        let shared = Arc::new(ExecShared {
            store,
            limits,
            queue: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            active: AtomicUsize::new(0),
        });
        let workers = (0..limits.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("cwx-query-{i}"))
                    .spawn(move || worker_loop(shared))
                    .expect("spawn query worker")
            })
            .collect();
        QueryExecutor {
            shared,
            workers: Mutex::new(workers),
        }
    }

    /// Non-blocking admission: queue the query and invoke `done` from a
    /// worker thread, or refuse with [`QueryError::Overloaded`] /
    /// [`QueryError::Closed`] without invoking `done`.
    pub fn try_submit(
        &self,
        spec: QuerySpec,
        done: impl FnOnce(Result<QueryResult, QueryError>) + Send + 'static,
    ) -> Result<(), QueryError> {
        if self.shared.shutdown.load(Ordering::Acquire) {
            return Err(QueryError::Closed);
        }
        let mut q = self.shared.queue.lock().unwrap();
        if q.len() >= self.shared.limits.max_queue {
            self.shared.shed.fetch_add(1, Ordering::Relaxed);
            return Err(QueryError::Overloaded { queued: q.len() });
        }
        q.push_back(Job {
            spec,
            done: Box::new(done),
        });
        self.shared.submitted.fetch_add(1, Ordering::Relaxed);
        drop(q);
        self.shared.cv.notify_one();
        Ok(())
    }

    /// Submit and block for the answer (CLI / bench convenience).
    pub fn execute(&self, spec: QuerySpec) -> Result<QueryResult, QueryError> {
        let (tx, rx) = mpsc::channel();
        self.try_submit(spec, move |r| {
            let _ = tx.send(r);
        })?;
        rx.recv().map_err(|_| QueryError::Closed)?
    }

    /// Counters so far.
    pub fn stats(&self) -> ExecutorStats {
        ExecutorStats {
            submitted: self.shared.submitted.load(Ordering::Relaxed),
            completed: self.shared.completed.load(Ordering::Relaxed),
            shed: self.shared.shed.load(Ordering::Relaxed),
            errors: self.shared.errors.load(Ordering::Relaxed),
            queued_now: self.shared.queue.lock().unwrap().len(),
            active_now: self.shared.active.load(Ordering::Relaxed),
        }
    }

    /// The configured limits.
    pub fn limits(&self) -> QueryLimits {
        self.shared.limits
    }
}

impl Drop for QueryExecutor {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.cv.notify_all();
        for h in self.workers.lock().unwrap().drain(..) {
            let _ = h.join();
        }
        // answer anything still queued so waiters unblock
        let mut q = self.shared.queue.lock().unwrap();
        for job in q.drain(..) {
            (job.done)(Err(QueryError::Closed));
        }
    }
}

fn worker_loop(shared: Arc<ExecShared>) {
    loop {
        let job = {
            let mut q = shared.queue.lock().unwrap();
            loop {
                if let Some(job) = q.pop_front() {
                    break job;
                }
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                q = shared.cv.wait(q).unwrap();
            }
        };
        shared.active.fetch_add(1, Ordering::Relaxed);
        let mut spec = job.spec;
        if spec.max_scan == 0 {
            spec.max_scan = shared.limits.max_scanned_samples;
        }
        let result = shared.store.query(&spec);
        shared.completed.fetch_add(1, Ordering::Relaxed);
        if result.is_err() {
            shared.errors.fetch_add(1, Ordering::Relaxed);
        }
        (job.done)(result);
        shared.active.fetch_sub(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::MemStore;
    use cwx_util::time::SimDuration;

    fn t(s: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(s)
    }

    const SEC: u64 = 1_000_000_000;

    #[test]
    fn tier_selection_prefers_coarsest_dividing_tier() {
        assert_eq!(select_tier(3_600 * SEC, AggFunc::Avg), Resolution::OneHour);
        assert_eq!(
            select_tier(2 * 3_600 * SEC, AggFunc::Max),
            Resolution::OneHour
        );
        assert_eq!(
            select_tier(600 * SEC, AggFunc::Avg),
            Resolution::FiveMinutes
        );
        assert_eq!(select_tier(30 * SEC, AggFunc::Sum), Resolution::TenSeconds);
        assert_eq!(select_tier(5 * SEC, AggFunc::Avg), Resolution::Raw);
        // 90s is not a multiple of 300s but is of 10s
        assert_eq!(
            select_tier(90 * SEC, AggFunc::Count),
            Resolution::TenSeconds
        );
        // percentiles and rate always need raw samples
        assert_eq!(select_tier(3_600 * SEC, AggFunc::P99), Resolution::Raw);
        assert_eq!(select_tier(3_600 * SEC, AggFunc::Rate), Resolution::Raw);
    }

    #[test]
    fn fold_stream_merges_multi_series_windows() {
        let a: Vec<Sample> = (0..20)
            .map(|i| Sample {
                time: t(i),
                value: i as f64,
            })
            .collect();
        let b: Vec<Sample> = (0..20)
            .map(|i| Sample {
                time: t(i),
                value: 100.0 + i as f64,
            })
            .collect();
        let merge = SampleMerge::new(vec![
            SampleCursor::from_owned(a, SimTime::ZERO, SimTime::MAX),
            SampleCursor::from_owned(b, SimTime::ZERO, SimTime::MAX),
        ]);
        let points = fold_stream(merge, AggFunc::Max, 10 * SEC);
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].count, 20);
        assert_eq!(points[0].value, 109.0);
        assert_eq!(points[1].value, 119.0);
    }

    #[test]
    fn percentiles_nearest_rank() {
        let s: Vec<Sample> = (1..=100)
            .map(|i| Sample {
                time: t(i),
                value: i as f64,
            })
            .collect();
        let merge = |agg| fold_stream(s.iter().copied(), agg, 1_000_000 * SEC)[0].value;
        assert_eq!(merge(AggFunc::P50), 50.0);
        assert_eq!(merge(AggFunc::P95), 95.0);
        assert_eq!(merge(AggFunc::P99), 99.0);
    }

    #[test]
    fn rate_is_delta_over_seconds() {
        let s = vec![
            Sample {
                time: t(0),
                value: 10.0,
            },
            Sample {
                time: t(5),
                value: 20.0,
            },
            Sample {
                time: t(10),
                value: 40.0,
            },
        ];
        let p = fold_stream(s.into_iter(), AggFunc::Rate, 60 * SEC);
        assert_eq!(p.len(), 1);
        assert!((p[0].value - 3.0).abs() < 1e-12);
    }

    #[test]
    fn window_map_matches_stream_fold_for_tier_funcs() {
        let samples: Vec<Sample> = (0..100)
            .map(|i| Sample {
                time: t(i),
                value: (i * 7 % 13) as f64,
            })
            .collect();
        for agg in [
            AggFunc::Avg,
            AggFunc::Min,
            AggFunc::Max,
            AggFunc::Sum,
            AggFunc::Count,
        ] {
            let streamed = fold_stream(samples.iter().copied(), agg, 30 * SEC);
            let mut wm = WindowMap::new(30 * SEC);
            // feed out of order to prove ordering independence
            for s in samples.iter().rev() {
                wm.fold_sample(*s);
            }
            let mapped = wm.finish(agg);
            assert_eq!(streamed.len(), mapped.len());
            for (a, b) in streamed.iter().zip(&mapped) {
                assert_eq!(a.start, b.start);
                assert_eq!(a.count, b.count);
                assert!((a.value - b.value).abs() < 1e-9, "{agg:?}");
            }
        }
    }

    fn mem_with_two_nodes() -> Arc<MemStore> {
        let m = Arc::new(MemStore::new(4096));
        for i in 0..60u64 {
            m.append(0, "cpu", t(i), i as f64);
            m.append(1, "cpu", t(i), 1000.0 + i as f64);
        }
        m
    }

    fn spec(agg: AggFunc, groups: Vec<QueryGroup>) -> QuerySpec {
        QuerySpec {
            monitor: "cpu".into(),
            from: SimTime::ZERO,
            to: t(59),
            window_nanos: 30 * SEC,
            agg,
            groups,
            max_scan: 0,
        }
    }

    #[test]
    fn store_default_query_groups_nodes() {
        let m = mem_with_two_nodes();
        let r = m
            .query(&spec(
                AggFunc::Max,
                vec![
                    QueryGroup {
                        key: "g0".into(),
                        nodes: vec![0],
                    },
                    QueryGroup {
                        key: "both".into(),
                        nodes: vec![0, 1],
                    },
                ],
            ))
            .unwrap();
        assert_eq!(r.groups.len(), 2);
        assert_eq!(r.groups[0].points[0].value, 29.0);
        assert_eq!(r.groups[1].points[0].value, 1029.0);
        assert_eq!(r.groups[1].points[0].count, 60);
        assert_eq!(r.stats.tier, Resolution::Raw);
        assert_eq!(r.stats.scanned_raw, 60 + 120);
    }

    #[test]
    fn budget_refuses_oversized_scans() {
        let m = mem_with_two_nodes();
        let mut s = spec(
            AggFunc::Avg,
            vec![QueryGroup {
                key: "all".into(),
                nodes: vec![0, 1],
            }],
        );
        s.max_scan = 10;
        match m.query(&s) {
            Err(QueryError::BudgetExceeded { budget: 10, .. }) => {}
            other => panic!("expected budget error, got {other:?}"),
        }
    }

    #[test]
    fn executor_answers_and_sheds() {
        let m = mem_with_two_nodes();
        let exec = QueryExecutor::new(
            m,
            QueryLimits {
                workers: 1,
                max_queue: 1,
                max_scanned_samples: 1_000_000,
            },
        );
        // hold the single worker in a gated callback; the queue then
        // fills to its cap of 1 and further submissions must shed
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        exec.try_submit(
            QuerySpec {
                monitor: "cpu".into(),
                from: SimTime::ZERO,
                to: t(59),
                window_nanos: SEC,
                agg: AggFunc::Avg,
                groups: vec![QueryGroup {
                    key: "g".into(),
                    nodes: vec![0],
                }],
                max_scan: 0,
            },
            move |_| {
                let _ = gate_rx.recv();
            },
        )
        .unwrap();
        let mut shed = false;
        for _ in 0..1000 {
            match exec.try_submit(
                spec(
                    AggFunc::Avg,
                    vec![QueryGroup {
                        key: "g".into(),
                        nodes: vec![0],
                    }],
                ),
                |_| {},
            ) {
                Err(QueryError::Overloaded { .. }) => {
                    shed = true;
                    break;
                }
                _ => std::thread::sleep(std::time::Duration::from_millis(1)),
            }
        }
        drop(gate_tx);
        assert!(shed, "queue-depth admission control never shed");
        assert!(exec.stats().shed >= 1);
    }

    #[test]
    fn executor_executes_after_load() {
        let m = mem_with_two_nodes();
        let exec = QueryExecutor::new(m, QueryLimits::default());
        let r = exec
            .execute(spec(
                AggFunc::Count,
                vec![QueryGroup {
                    key: "all".into(),
                    nodes: vec![0, 1],
                }],
            ))
            .unwrap();
        assert_eq!(r.groups[0].points.iter().map(|p| p.count).sum::<u64>(), 120);
        let st = exec.stats();
        assert_eq!(st.completed, 1);
        assert_eq!(st.errors, 0);
    }

    #[test]
    fn bad_specs_rejected() {
        let m = mem_with_two_nodes();
        let mut s = spec(AggFunc::Avg, vec![]);
        s.window_nanos = 0;
        assert!(matches!(m.query(&s), Err(QueryError::BadQuery(_))));
        let mut s = spec(AggFunc::Avg, vec![]);
        s.from = t(10);
        s.to = t(1);
        assert!(matches!(m.query(&s), Err(QueryError::BadQuery(_))));
    }
}
