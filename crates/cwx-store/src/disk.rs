//! The persistent, sharded disk store.
//!
//! Directory layout:
//!
//! ```text
//! <dir>/CONFIG                  sharding parameters (fixed at creation)
//! <dir>/shard-000/wal.log       the shard's write-ahead log
//! <dir>/shard-000/seg-00000001-r0.seg   raw segment
//! <dir>/shard-000/seg-00000005-r1.seg   10-second tier
//! <dir>/shard-000/seg-00000005-r2.seg   5-minute tier
//! ```
//!
//! Nodes map to shards by node group (`node / nodes_per_group`, the ICE
//! Box chassis being the natural group), and each shard serializes its
//! own writes behind its own lock — the whole point: concurrent agent
//! threads land on different shards and never contend on a global lock.
//!
//! Write path: register series → WAL append (durable on return) →
//! memtable. [`Store::append_batch`] amortizes the shard lock and the
//! WAL write across a whole ingest batch. When a shard's memtable
//! reaches `flush_threshold` samples it is flushed to an immutable raw
//! segment and the WAL is checkpointed. When `compact_threshold` raw
//! segments accumulate they are merged into one (dropping forgotten
//! nodes) and re-downsampled into the 10-second and 5-minute tiers.
//!
//! Read path: segments are *not* held decoded in memory. Opening a
//! shard builds a [`SegmentIndex`] per file (header walk, no payload
//! decode); queries binary-search the index, prune by the per-series
//! time bounds, and fetch single series payloads through a shared
//! [`BlockCache`] so repeated range queries decode each block once.
//!
//! Recovery path: index and checksum-verify segments (corrupt ones are
//! quarantined with a `.corrupt` suffix), then replay the WAL, skipping
//! samples already covered by a segment (the crash-between-flush-and-
//! checkpoint window) and truncating a torn tail.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use cwx_util::time::{SimDuration, SimTime};
use parking_lot::Mutex;

use crate::cache::{BlockCache, BlockKey, CacheStats};
use crate::query::{
    self, aggregate, floor_to, merge_buckets, BucketCursor, BucketMerge, SampleCursor, SampleMerge,
    WindowMap,
};
use crate::segment::{self, Segment, SegmentIndex, SeriesData, SeriesIndexEntry};
use crate::wal::{Wal, WalRecord};
use crate::{
    AggBucket, BatchSample, GroupSeries, QueryError, QueryResult, QuerySpec, QueryStats,
    Resolution, Sample, Store, StoreError,
};

/// Sharding and flush parameters. Sharding fields are fixed at store
/// creation and read back from disk on reopen.
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Number of shards (independent write paths).
    pub n_shards: usize,
    /// Nodes per group; a group always lands on one shard.
    pub nodes_per_group: u32,
    /// Memtable samples per shard before a segment flush.
    pub flush_threshold: usize,
    /// Raw segments per shard before compaction + downsampling.
    pub compact_threshold: usize,
    /// Decoded samples the shared block cache may hold (16 B each for
    /// raw blocks). Tunable per open — not persisted in CONFIG.
    pub cache_capacity_samples: usize,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            n_shards: 4,
            // ten node ports per ICE Box chassis (paper §3)
            nodes_per_group: 10,
            flush_threshold: 4096,
            compact_threshold: 4,
            // ~4 MiB of decoded raw samples
            cache_capacity_samples: 262_144,
        }
    }
}

/// What [`DiskStore::open`] found and repaired.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Intact segment files loaded.
    pub segments_loaded: usize,
    /// Segment files quarantined for bad magic/checksum.
    pub segments_quarantined: usize,
    /// WAL records replayed into memtables.
    pub wal_records: usize,
    /// Samples rebuilt into memtables from the WAL.
    pub samples_replayed: u64,
    /// Torn-tail bytes truncated across shard WALs.
    pub wal_truncated_bytes: u64,
}

/// An on-disk segment: path plus its header index. Payloads stay on
/// disk until a query pulls them through the block cache.
#[derive(Debug)]
struct SegmentFile {
    path: PathBuf,
    seq: u64,
    index: SegmentIndex,
}

/// Locate `(node, monitor)` in an index (entries are sorted).
fn find_entry<'a>(
    index: &'a SegmentIndex,
    node: u32,
    monitor: &str,
) -> Option<(usize, &'a SeriesIndexEntry)> {
    let i = index
        .entries
        .partition_point(|e| (e.node, e.monitor.as_str()) < (node, monitor));
    let e = index.entries.get(i)?;
    (e.node == node && e.monitor == monitor).then_some((i, e))
}

#[derive(Debug)]
struct Shard {
    dir: PathBuf,
    /// This shard's index within the store (block-cache key space).
    idx: u32,
    cache: Arc<BlockCache>,
    wal: Wal,
    next_seq: u64,
    /// `(node, monitor)` → shard-local series id.
    ids: HashMap<(u32, String), u32>,
    /// series id → `(node, monitor)`.
    keys: Vec<(u32, String)>,
    /// series id → buffered samples (time-ordered as appended).
    mem: Vec<Vec<Sample>>,
    mem_samples: usize,
    /// ids whose `AddSeries` is in the current WAL generation.
    logged: Vec<bool>,
    /// series id → newest timestamp already in a raw segment.
    segmented_max: Vec<Option<SimTime>>,
    raw: Vec<SegmentFile>,
    tiers: Vec<SegmentFile>,
    /// Newest raw sample time covered by the tier files.
    tier_covered: Option<SimTime>,
    /// Nodes dropped since the last compaction.
    forgotten: Vec<u32>,
    flush_threshold: usize,
    compact_threshold: usize,
}

impl Shard {
    fn open(
        shard_dir: &Path,
        idx: u32,
        cfg: &StoreConfig,
        cache: Arc<BlockCache>,
        recovery: &mut RecoveryReport,
        total: &mut u64,
    ) -> Result<Shard, StoreError> {
        // 1. segments, in sequence order, checksum-verified and indexed
        let mut files: Vec<(u64, Resolution, PathBuf)> = Vec::new();
        for entry in std::fs::read_dir(shard_dir)? {
            let path = entry?.path();
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if name.ends_with(".tmp") {
                // a crash mid-flush/compaction left a partial write
                let _ = std::fs::remove_file(&path);
                continue;
            }
            let Some(rest) = name.strip_prefix("seg-") else {
                continue;
            };
            let Some(rest) = rest.strip_suffix(".seg") else {
                continue;
            };
            let Some((seq, res)) = rest.split_once("-r") else {
                continue;
            };
            let (Ok(seq), Some(res)) =
                (seq.parse(), res.parse().ok().and_then(Resolution::from_tag))
            else {
                continue;
            };
            files.push((seq, res, path));
        }
        files.sort_by_key(|(seq, res, _)| (*seq, res.tag()));

        let wal_rec = Wal::open(&shard_dir.join("wal.log"))?;
        let mut shard = Shard {
            dir: shard_dir.to_path_buf(),
            idx,
            cache,
            wal: wal_rec.wal,
            next_seq: 1,
            ids: HashMap::new(),
            keys: Vec::new(),
            mem: Vec::new(),
            mem_samples: 0,
            logged: Vec::new(),
            segmented_max: Vec::new(),
            raw: Vec::new(),
            tiers: Vec::new(),
            tier_covered: None,
            forgotten: Vec::new(),
            flush_threshold: cfg.flush_threshold.max(1),
            compact_threshold: cfg.compact_threshold.max(2),
        };

        for (seq, res, path) in files {
            shard.next_seq = shard.next_seq.max(seq + 1);
            let index = match SegmentIndex::read_from(&path) {
                Ok(i) => i,
                Err(_) => {
                    let quarantined = path.with_extension("seg.corrupt");
                    let _ = std::fs::rename(&path, &quarantined);
                    recovery.segments_quarantined += 1;
                    continue;
                }
            };
            recovery.segments_loaded += 1;
            match res {
                Resolution::Raw => {
                    for e in &index.entries {
                        *total += e.count as u64;
                        let id = shard.register(e.node, &e.monitor) as usize;
                        if e.count > 0 {
                            shard.segmented_max[id] = shard.segmented_max[id].max(Some(e.max_time));
                        }
                    }
                    shard.raw.push(SegmentFile { path, seq, index });
                }
                Resolution::TenSeconds => {
                    for e in &index.entries {
                        if e.count > 0 {
                            shard.tier_covered = shard.tier_covered.max(Some(e.max_time));
                        }
                    }
                    shard.tiers.push(SegmentFile { path, seq, index });
                }
                Resolution::FiveMinutes | Resolution::OneHour => {
                    shard.tiers.push(SegmentFile { path, seq, index })
                }
            }
        }

        // 2. WAL replay on top of the segment state. The open above
        // already truncated any torn tail and collected the records.
        recovery.wal_truncated_bytes += wal_rec.truncated_bytes;
        recovery.wal_records += wal_rec.records.len();
        let mut wal_to_internal: HashMap<u32, u32> = HashMap::new();
        for record in wal_rec.records {
            match record {
                WalRecord::AddSeries {
                    series,
                    node,
                    monitor,
                } => {
                    let id = shard.register(node, &monitor);
                    // the registration is already in the current log
                    shard.logged[id as usize] = true;
                    wal_to_internal.insert(series, id);
                }
                WalRecord::Samples { series, samples } => {
                    let Some(&id) = wal_to_internal.get(&series) else {
                        continue;
                    };
                    let floor = shard.segmented_max[id as usize];
                    for s in samples {
                        // skip what a pre-crash flush already segmented
                        if floor.is_none_or(|f| s.time > f) {
                            shard.mem[id as usize].push(s);
                            shard.mem_samples += 1;
                            recovery.samples_replayed += 1;
                            *total += 1;
                        }
                    }
                }
            }
        }
        Ok(shard)
    }

    fn register(&mut self, node: u32, monitor: &str) -> u32 {
        if let Some(&id) = self.ids.get(&(node, monitor.to_string())) {
            return id;
        }
        let id = self.keys.len() as u32;
        self.keys.push((node, monitor.to_string()));
        self.ids.insert((node, monitor.to_string()), id);
        self.mem.push(Vec::new());
        self.segmented_max.push(None);
        self.logged.push(false);
        id
    }

    /// Look up or create a series id, logging the registration in the
    /// current WAL generation if it isn't there yet.
    fn series_id(&mut self, node: u32, monitor: &str) -> Result<u32, StoreError> {
        let id = self.register(node, monitor);
        if !self.logged[id as usize] {
            let (n, m) = self.keys[id as usize].clone();
            self.wal.add_series(id, n, &m)?;
            self.logged[id as usize] = true;
        }
        Ok(id)
    }

    /// Fetch one series payload, through the cache. The segment read
    /// happens outside the cache's internal lock.
    fn read_block(&self, sf: &SegmentFile, series: usize) -> Result<Arc<SeriesData>, StoreError> {
        let key = BlockKey {
            shard: self.idx,
            seq: sf.seq,
            res: sf.index.resolution.tag(),
            series: series as u32,
        };
        if let Some(block) = self.cache.get(&key) {
            return Ok(block);
        }
        let data = Arc::new(segment::read_series(
            &sf.path,
            sf.index.resolution,
            &sf.index.entries[series],
        )?);
        self.cache.insert(key, Arc::clone(&data));
        Ok(data)
    }

    fn flush(&mut self) -> Result<(), StoreError> {
        if self.mem_samples == 0 {
            return Ok(());
        }
        let mut series: Vec<((u32, String), SeriesData)> = Vec::new();
        for (id, samples) in self.mem.iter_mut().enumerate() {
            if samples.is_empty() {
                continue;
            }
            samples.sort_by_key(|s| s.time.as_nanos());
            series.push((
                self.keys[id].clone(),
                SeriesData::Raw(std::mem::take(samples)),
            ));
        }
        series.sort_by(|a, b| a.0.cmp(&b.0));
        let seg = Segment {
            resolution: Resolution::Raw,
            series,
        };
        let seq = self.next_seq;
        self.next_seq += 1;
        let path = self.dir.join(segment_name(seq, Resolution::Raw));
        let index = seg.write_to(&path)?;
        for e in &index.entries {
            let id = self.ids[&(e.node, e.monitor.clone())] as usize;
            if e.count > 0 {
                self.segmented_max[id] = self.segmented_max[id].max(Some(e.max_time));
            }
        }
        self.raw.push(SegmentFile { path, seq, index });
        self.mem_samples = 0;
        // the flushed samples are durable in the segment; restart the log
        self.wal.checkpoint()?;
        self.logged.iter_mut().for_each(|l| *l = false);
        if self.raw.len() >= self.compact_threshold {
            self.compact()?;
        }
        Ok(())
    }

    fn compact(&mut self) -> Result<(), StoreError> {
        // merge every raw segment per series (full-file reads: compaction
        // touches everything anyway, no point going through the cache)
        let mut merged: HashMap<(u32, String), Vec<Sample>> = HashMap::new();
        for sf in &self.raw {
            let segment = Segment::read_from(&sf.path)?;
            for ((node, monitor), data) in segment.series {
                if self.forgotten.contains(&node) {
                    continue;
                }
                if let SeriesData::Raw(samples) = data {
                    merged.entry((node, monitor)).or_default().extend(samples);
                }
            }
        }
        let mut sorted_keys: Vec<(u32, String)> = merged.keys().cloned().collect();
        sorted_keys.sort();
        let mut raw_series = Vec::with_capacity(sorted_keys.len());
        let mut ten_series = Vec::with_capacity(sorted_keys.len());
        let mut five_series = Vec::with_capacity(sorted_keys.len());
        let mut hour_series = Vec::with_capacity(sorted_keys.len());
        let mut covered: Option<SimTime> = None;
        for key in sorted_keys {
            let mut samples = merged.remove(&key).unwrap();
            samples.sort_by_key(|s| s.time.as_nanos());
            covered = covered.max(samples.last().map(|s| s.time));
            let ten = aggregate(&samples, Resolution::TenSeconds.bucket_nanos().unwrap());
            let five = merge_buckets(&ten, Resolution::FiveMinutes.bucket_nanos().unwrap());
            let hour = merge_buckets(&five, Resolution::OneHour.bucket_nanos().unwrap());
            raw_series.push((key.clone(), SeriesData::Raw(samples)));
            ten_series.push((key.clone(), SeriesData::Buckets(ten)));
            five_series.push((key.clone(), SeriesData::Buckets(five)));
            hour_series.push((key, SeriesData::Buckets(hour)));
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        let mut new_raw = Vec::new();
        let mut new_tiers = Vec::new();
        for (res, series) in [
            (Resolution::Raw, raw_series),
            (Resolution::TenSeconds, ten_series),
            (Resolution::FiveMinutes, five_series),
            (Resolution::OneHour, hour_series),
        ] {
            let seg = Segment {
                resolution: res,
                series,
            };
            let path = self.dir.join(segment_name(seq, res));
            let index = seg.write_to(&path)?;
            let sf = SegmentFile { path, seq, index };
            if res == Resolution::Raw {
                new_raw.push(sf);
            } else {
                new_tiers.push(sf);
            }
        }
        // the merged files are durable; drop the inputs and any cached
        // blocks that pointed into them
        for sf in self.raw.drain(..).chain(self.tiers.drain(..)) {
            let _ = std::fs::remove_file(&sf.path);
        }
        self.cache.evict_shard(self.idx);
        self.raw = new_raw;
        self.tiers = new_tiers;
        self.tier_covered = covered;
        self.forgotten.clear();
        Ok(())
    }

    fn raw_range(&self, node: u32, monitor: &str, from: SimTime, to: SimTime) -> Vec<Sample> {
        let mut out: Vec<Sample> = Vec::new();
        for sf in &self.raw {
            let Some((i, e)) = find_entry(&sf.index, node, monitor) else {
                continue;
            };
            if e.count == 0 || e.min_time > to || e.max_time < from {
                continue;
            }
            // unreadable-after-open blocks degrade to a gap rather than
            // a panic, matching the quarantine behaviour at open
            let Ok(block) = self.read_block(sf, i) else {
                continue;
            };
            if let SeriesData::Raw(samples) = &*block {
                out.extend(
                    samples
                        .iter()
                        .filter(|s| s.time >= from && s.time <= to)
                        .copied(),
                );
            }
        }
        if let Some(&id) = self.ids.get(&(node, monitor.to_string())) {
            out.extend(
                self.mem[id as usize]
                    .iter()
                    .filter(|s| s.time >= from && s.time <= to),
            );
        }
        out.sort_by_key(|s| s.time.as_nanos());
        out
    }

    /// Collect streaming cursors over one series' raw sources (segment
    /// blocks through the cache, plus a sorted memtable snapshot).
    /// Cursors hold `Arc`s, so folding can happen after the shard lock
    /// is released. Unreadable blocks degrade to a gap, like
    /// [`Shard::raw_range`].
    fn raw_cursors(
        &self,
        node: u32,
        monitor: &str,
        from: SimTime,
        to: SimTime,
        out: &mut Vec<SampleCursor>,
    ) {
        for sf in &self.raw {
            let Some((i, e)) = find_entry(&sf.index, node, monitor) else {
                continue;
            };
            if e.count == 0 || e.min_time > to || e.max_time < from {
                continue;
            }
            let Ok(block) = self.read_block(sf, i) else {
                continue;
            };
            out.push(SampleCursor::from_block(block, from, to));
        }
        if let Some(&id) = self.ids.get(&(node, monitor.to_string())) {
            let mut mem: Vec<Sample> = self.mem[id as usize]
                .iter()
                .filter(|s| s.time >= from && s.time <= to)
                .copied()
                .collect();
            if !mem.is_empty() {
                mem.sort_by_key(|s| s.time.as_nanos());
                out.push(SampleCursor::from_owned(mem, from, to));
            }
        }
    }

    /// Collect streaming cursors over one series' stored buckets at
    /// resolution `res`.
    fn bucket_cursors(
        &self,
        node: u32,
        monitor: &str,
        res: Resolution,
        from: SimTime,
        to: SimTime,
        out: &mut Vec<BucketCursor>,
    ) {
        for sf in &self.tiers {
            if sf.index.resolution != res {
                continue;
            }
            let Some((i, e)) = find_entry(&sf.index, node, monitor) else {
                continue;
            };
            if e.count == 0 || e.min_time > to || e.max_time < from {
                continue;
            }
            let Ok(block) = self.read_block(sf, i) else {
                continue;
            };
            out.push(BucketCursor::from_block(block, from, to));
        }
    }

    /// Does this shard hold any segment at `res`? (Stores written
    /// before the 1h tier existed lack `r3` files until recompacted.)
    fn has_tier(&self, res: Resolution) -> bool {
        self.tiers.iter().any(|sf| sf.index.resolution == res)
    }
}

fn segment_name(seq: u64, res: Resolution) -> String {
    format!("seg-{seq:08}-r{}.seg", res.tag())
}

/// The persistent sharded store.
#[derive(Debug)]
pub struct DiskStore {
    dir: PathBuf,
    cfg: StoreConfig,
    shards: Vec<Mutex<Shard>>,
    cache: Arc<BlockCache>,
    total: AtomicU64,
    recovery: RecoveryReport,
    /// The data directory stopped taking writes (disk full, yanked
    /// mount, …). Ingest keeps running volatile-only: samples still
    /// land in the memtables and stay readable, they just won't survive
    /// a restart. Monitoring visibility beats durability here — a blind
    /// management server is worse than a forgetful one.
    degraded: AtomicBool,
    last_error: Mutex<Option<String>>,
    /// Samples accepted without durability since entering degraded mode.
    volatile_samples: AtomicU64,
    /// Test hook: force the next WAL/flush write to fail.
    fail_inject: AtomicBool,
}

impl DiskStore {
    /// Open or create a store at `dir`, recovering any existing state.
    pub fn open(dir: &Path, mut cfg: StoreConfig) -> Result<DiskStore, StoreError> {
        std::fs::create_dir_all(dir)?;
        let config_path = dir.join("CONFIG");
        match std::fs::read_to_string(&config_path) {
            Ok(text) => {
                for line in text.lines() {
                    match line.split_once('=') {
                        Some(("n_shards", v)) => {
                            cfg.n_shards = v.trim().parse().unwrap_or(cfg.n_shards)
                        }
                        Some(("nodes_per_group", v)) => {
                            cfg.nodes_per_group = v.trim().parse().unwrap_or(cfg.nodes_per_group)
                        }
                        _ => {}
                    }
                }
            }
            Err(_) => {
                std::fs::write(
                    &config_path,
                    format!(
                        "n_shards={}\nnodes_per_group={}\n",
                        cfg.n_shards.max(1),
                        cfg.nodes_per_group.max(1)
                    ),
                )?;
            }
        }
        cfg.n_shards = cfg.n_shards.max(1);
        cfg.nodes_per_group = cfg.nodes_per_group.max(1);

        let cache = Arc::new(BlockCache::new(cfg.cache_capacity_samples));
        let mut recovery = RecoveryReport::default();
        let mut total = 0u64;
        let mut shards = Vec::with_capacity(cfg.n_shards);
        for i in 0..cfg.n_shards {
            let shard_dir = dir.join(format!("shard-{i:03}"));
            std::fs::create_dir_all(&shard_dir)?;
            let shard = Shard::open(
                &shard_dir,
                i as u32,
                &cfg,
                Arc::clone(&cache),
                &mut recovery,
                &mut total,
            )?;
            shards.push(Mutex::new(shard));
        }
        Ok(DiskStore {
            dir: dir.to_path_buf(),
            cfg,
            shards,
            cache,
            total: AtomicU64::new(total),
            recovery,
            degraded: AtomicBool::new(false),
            last_error: Mutex::new(None),
            volatile_samples: AtomicU64::new(0),
            fail_inject: AtomicBool::new(false),
        })
    }

    /// What recovery found when this handle was opened.
    pub fn recovery(&self) -> RecoveryReport {
        self.recovery
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The effective configuration (sharding read back from disk).
    pub fn config(&self) -> &StoreConfig {
        &self.cfg
    }

    /// Block-cache hit/miss/eviction counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Drop every cached block (benches use this to measure cold reads).
    pub fn clear_cache(&self) {
        self.cache.clear()
    }

    fn shard_of(&self, node: u32) -> usize {
        (node / self.cfg.nodes_per_group) as usize % self.shards.len()
    }

    /// Has the store fallen back to volatile-only ingest?
    pub fn degraded(&self) -> bool {
        self.degraded.load(Ordering::Relaxed)
    }

    /// The write error that pushed the store into degraded mode.
    pub fn last_error(&self) -> Option<String> {
        self.last_error.lock().clone()
    }

    /// Samples accepted without durability since degrading.
    pub fn volatile_samples(&self) -> u64 {
        self.volatile_samples.load(Ordering::Relaxed)
    }

    /// Test hook: make the next durable write fail as if the disk died.
    #[doc(hidden)]
    pub fn inject_write_failure(&self) {
        self.fail_inject.store(true, Ordering::Relaxed);
    }

    fn degrade(&self, err: StoreError) {
        self.degraded.store(true, Ordering::Relaxed);
        let mut last = self.last_error.lock();
        if last.is_none() {
            *last = Some(err.to_string());
        }
    }

    /// Returns `false` (and records the synthetic error) when the test
    /// hook armed a failure; clears the hook.
    fn write_allowed(&self) -> bool {
        if self.fail_inject.swap(false, Ordering::Relaxed) {
            self.degrade(StoreError::Io(std::io::Error::other(
                "injected write failure",
            )));
            return false;
        }
        !self.degraded()
    }

    /// Force-flush every shard's memtable into segments (clean
    /// shutdown; a crash instead replays the WAL).
    pub fn flush_all(&self) -> Result<(), StoreError> {
        for shard in &self.shards {
            shard.lock().flush()?;
        }
        Ok(())
    }

    /// Force compaction (and tier downsampling) on every shard.
    pub fn compact_all(&self) -> Result<(), StoreError> {
        for shard in &self.shards {
            let mut s = shard.lock();
            s.flush()?;
            if !s.raw.is_empty() {
                s.compact()?;
            }
        }
        Ok(())
    }
}

impl Store for DiskStore {
    fn append(&self, node: u32, monitor: &str, time: SimTime, value: f64) {
        let durable = self.write_allowed();
        let mut shard = self.shards[self.shard_of(node)].lock();
        // A write error flips the store into degraded (volatile-only)
        // ingest rather than panicking: the sample still reaches the
        // memtable so charts and events keep seeing fresh data.
        let id = if durable {
            match shard.series_id(node, monitor) {
                Ok(id) => id,
                Err(e) => {
                    self.degrade(e);
                    shard.register(node, monitor)
                }
            }
        } else {
            shard.register(node, monitor)
        };
        let sample = Sample { time, value };
        if self.degraded() {
            self.volatile_samples.fetch_add(1, Ordering::Relaxed);
        } else if let Err(e) = shard.wal.append_samples(id, &[sample]) {
            self.degrade(e);
            self.volatile_samples.fetch_add(1, Ordering::Relaxed);
        }
        shard.mem[id as usize].push(sample);
        shard.mem_samples += 1;
        self.total.fetch_add(1, Ordering::Relaxed);
        if !self.degraded() && shard.mem_samples >= shard.flush_threshold {
            if let Err(e) = shard.flush() {
                self.degrade(e);
            }
        }
    }

    fn append_batch(&self, batch: &[BatchSample<'_>]) {
        let durable = self.write_allowed();
        // group by shard so each lock (and each WAL write) is taken once
        let mut by_shard: Vec<Vec<usize>> = vec![Vec::new(); self.shards.len()];
        for (i, s) in batch.iter().enumerate() {
            by_shard[self.shard_of(s.node)].push(i);
        }
        for (si, idxs) in by_shard.iter().enumerate() {
            if idxs.is_empty() {
                continue;
            }
            let mut shard = self.shards[si].lock();
            let mut groups: HashMap<u32, Vec<Sample>> = HashMap::new();
            for &i in idxs {
                let s = &batch[i];
                let id = if durable && !self.degraded() {
                    match shard.series_id(s.node, s.monitor) {
                        Ok(id) => id,
                        Err(e) => {
                            self.degrade(e);
                            shard.register(s.node, s.monitor)
                        }
                    }
                } else {
                    shard.register(s.node, s.monitor)
                };
                groups.entry(id).or_default().push(Sample {
                    time: s.time,
                    value: s.value,
                });
            }
            if self.degraded() {
                let n: u64 = groups.values().map(|v| v.len() as u64).sum();
                self.volatile_samples.fetch_add(n, Ordering::Relaxed);
            } else {
                let frames: Vec<(u32, &[Sample])> =
                    groups.iter().map(|(&id, v)| (id, v.as_slice())).collect();
                if let Err(e) = shard.wal.append_samples_multi(&frames) {
                    self.degrade(e);
                    let n: u64 = frames.iter().map(|(_, v)| v.len() as u64).sum();
                    self.volatile_samples.fetch_add(n, Ordering::Relaxed);
                }
            }
            let mut appended = 0u64;
            for (id, samples) in groups {
                appended += samples.len() as u64;
                shard.mem_samples += samples.len();
                shard.mem[id as usize].extend(samples);
            }
            self.total.fetch_add(appended, Ordering::Relaxed);
            if !self.degraded() && shard.mem_samples >= shard.flush_threshold {
                if let Err(e) = shard.flush() {
                    self.degrade(e);
                }
            }
        }
    }

    fn latest(&self, node: u32, monitor: &str) -> Option<Sample> {
        let shard = self.shards[self.shard_of(node)].lock();
        let id = *shard.ids.get(&(node, monitor.to_string()))?;
        if let Some(s) = shard.mem[id as usize].last() {
            return Some(*s);
        }
        shard
            .raw_range(node, monitor, SimTime::ZERO, SimTime::MAX)
            .last()
            .copied()
    }

    fn range(&self, node: u32, monitor: &str, from: SimTime, to: SimTime) -> Vec<Sample> {
        self.shards[self.shard_of(node)]
            .lock()
            .raw_range(node, monitor, from, to)
    }

    fn range_agg(
        &self,
        node: u32,
        monitor: &str,
        from: SimTime,
        to: SimTime,
        res: Resolution,
    ) -> Vec<AggBucket> {
        let Some(width) = res.bucket_nanos() else {
            return self
                .range(node, monitor, from, to)
                .into_iter()
                .map(|s| AggBucket {
                    start: s.time,
                    count: 1,
                    min: s.value,
                    mean: s.value,
                    max: s.value,
                    last: s.value,
                })
                .collect();
        };
        let shard = self.shards[self.shard_of(node)].lock();
        let mut out: Vec<AggBucket> = Vec::new();
        let from_floor = floor_to(from, width);
        for sf in &shard.tiers {
            if sf.index.resolution != res {
                continue;
            }
            let Some((i, e)) = find_entry(&sf.index, node, monitor) else {
                continue;
            };
            if e.count == 0 || e.min_time > to || e.max_time < from_floor {
                continue;
            }
            let Ok(block) = shard.read_block(sf, i) else {
                continue;
            };
            if let SeriesData::Buckets(buckets) = &*block {
                out.extend(
                    buckets
                        .iter()
                        .filter(|b| b.start >= from_floor && b.start <= to),
                );
            }
        }
        // aggregate the raw suffix the tiers don't cover yet
        let suffix_from = match shard.tier_covered {
            Some(c) => (c + SimDuration::from_nanos(1)).max(from),
            None => from,
        };
        if suffix_from <= to {
            let raw = shard.raw_range(node, monitor, suffix_from, to);
            for b in aggregate(&raw, width) {
                query::fold_bucket(&mut out, &b, width);
            }
        }
        out.sort_by_key(|b| b.start.as_nanos());
        out
    }

    fn query(&self, spec: &QuerySpec) -> Result<QueryResult, QueryError> {
        spec.validate()?;
        let (from, to) = spec.window_bounds();
        let budget = if spec.max_scan == 0 {
            u64::MAX
        } else {
            spec.max_scan
        };
        let selected = query::select_tier(spec.window_nanos, spec.agg);
        let mut stats = QueryStats {
            tier: selected,
            ..QueryStats::default()
        };
        let over = |stats: &QueryStats| {
            let scanned = stats.scanned_raw + stats.scanned_buckets;
            (scanned > budget).then_some(QueryError::BudgetExceeded { scanned, budget })
        };
        let mut groups_out = Vec::with_capacity(spec.groups.len());
        for g in &spec.groups {
            // one pass per shard: collect Arc-backed cursors under the
            // shard lock, fold after releasing it so long queries never
            // sit on an ingest shard's lock
            let mut by_shard: Vec<Vec<u32>> = vec![Vec::new(); self.shards.len()];
            for &node in &g.nodes {
                by_shard[self.shard_of(node)].push(node);
            }
            if selected == Resolution::Raw {
                // one global k-way merge: sources from every shard are
                // time-ordered, so percentile/rate windows close in
                // order and only one window's values stay buffered
                let mut cursors: Vec<SampleCursor> = Vec::new();
                for (si, nodes) in by_shard.iter().enumerate() {
                    if nodes.is_empty() {
                        continue;
                    }
                    let shard = self.shards[si].lock();
                    for &node in nodes {
                        shard.raw_cursors(node, &spec.monitor, from, to, &mut cursors);
                    }
                }
                stats.scanned_raw += cursors.iter().map(|c| c.remaining()).sum::<u64>();
                if let Some(e) = over(&stats) {
                    return Err(e);
                }
                let points =
                    query::fold_stream(SampleMerge::new(cursors), spec.agg, spec.window_nanos);
                groups_out.push(GroupSeries {
                    key: g.key.clone(),
                    points,
                });
            } else {
                // tier-served: fold buckets (and each shard's raw
                // suffix) into per-window accumulators; arrival order
                // across shards doesn't matter for tier-serveable
                // functions
                let mut wm = WindowMap::new(spec.window_nanos);
                for (si, nodes) in by_shard.iter().enumerate() {
                    if nodes.is_empty() {
                        continue;
                    }
                    let shard = self.shards[si].lock();
                    // a shard compacted before the 1h tier existed may
                    // lack the selected resolution; any finer stored
                    // tier still nests in the window (10s | 5m | 1h)
                    let eff = if shard.has_tier(selected) {
                        selected
                    } else {
                        stats.fallback_shards += 1;
                        Resolution::TIERS
                            .iter()
                            .rev()
                            .filter(|r| r.tag() < selected.tag())
                            .find(|r| shard.has_tier(**r))
                            .copied()
                            .unwrap_or(Resolution::Raw)
                    };
                    let mut buckets: Vec<BucketCursor> = Vec::new();
                    let mut raws: Vec<SampleCursor> = Vec::new();
                    let suffix_from = if eff == Resolution::Raw {
                        from
                    } else {
                        for &node in nodes {
                            shard.bucket_cursors(node, &spec.monitor, eff, from, to, &mut buckets);
                        }
                        match shard.tier_covered {
                            Some(c) => (c + SimDuration::from_nanos(1)).max(from),
                            None => from,
                        }
                    };
                    if suffix_from <= to {
                        for &node in nodes {
                            shard.raw_cursors(node, &spec.monitor, suffix_from, to, &mut raws);
                        }
                    }
                    drop(shard);
                    stats.scanned_buckets += buckets.iter().map(|c| c.remaining()).sum::<u64>();
                    stats.scanned_raw += raws.iter().map(|c| c.remaining()).sum::<u64>();
                    if let Some(e) = over(&stats) {
                        return Err(e);
                    }
                    for b in BucketMerge::new(buckets) {
                        wm.fold_bucket(&b);
                    }
                    for s in SampleMerge::new(raws) {
                        wm.fold_sample(s);
                    }
                }
                groups_out.push(GroupSeries {
                    key: g.key.clone(),
                    points: wm.finish(spec.agg),
                });
            }
        }
        Ok(QueryResult {
            groups: groups_out,
            stats,
        })
    }

    fn series(&self) -> Vec<(u32, String)> {
        let mut out = Vec::new();
        for shard in &self.shards {
            out.extend(shard.lock().keys.iter().cloned());
        }
        out.sort();
        out.dedup();
        out
    }

    fn forget_node(&self, node: u32) {
        let mut shard = self.shards[self.shard_of(node)].lock();
        let ids: Vec<u32> = shard
            .ids
            .iter()
            .filter(|((n, _), _)| *n == node)
            .map(|(_, &id)| id)
            .collect();
        let on_disk = shard
            .raw
            .iter()
            .any(|sf| sf.index.entries.iter().any(|e| e.node == node));
        if ids.is_empty() && !on_disk {
            return;
        }
        for id in ids {
            shard.mem_samples -= shard.mem[id as usize].len();
            shard.mem[id as usize].clear();
        }
        shard.ids.retain(|(n, _), _| *n != node);
        shard.forgotten.push(node);
        // rewrite segments without the node so the forget is durable
        let _ = shard.flush();
        if !shard.raw.is_empty() {
            let _ = shard.compact();
        }
    }

    fn total_samples(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    fn flush(&self) {
        let _ = self.flush_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(s)
    }

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cwx-disk-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn small_cfg() -> StoreConfig {
        StoreConfig {
            n_shards: 2,
            nodes_per_group: 4,
            flush_threshold: 64,
            compact_threshold: 3,
            cache_capacity_samples: 4096,
        }
    }

    #[test]
    fn append_query_roundtrip() {
        let dir = tmp("roundtrip");
        let store = DiskStore::open(&dir, small_cfg()).unwrap();
        for i in 0..100u64 {
            store.append(1, "cpu.util", t(i), i as f64);
            store.append(9, "cpu.util", t(i), 100.0 - i as f64);
        }
        assert_eq!(store.total_samples(), 200);
        let r = store.range(1, "cpu.util", t(10), t(19));
        assert_eq!(r.len(), 10);
        assert_eq!(r[0].value, 10.0);
        assert_eq!(store.latest(9, "cpu.util").unwrap().value, 1.0);
        assert_eq!(store.series().len(), 2);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn batch_append_matches_single_appends() {
        let dir = tmp("batch");
        {
            let store = DiskStore::open(&dir, small_cfg()).unwrap();
            let mut batch = Vec::new();
            for i in 0..30u64 {
                for node in [1u32, 9, 21] {
                    batch.push(BatchSample {
                        node,
                        monitor: "cpu.util",
                        time: t(i),
                        value: node as f64 + i as f64,
                    });
                }
            }
            store.append_batch(&batch);
            assert_eq!(store.total_samples(), 90);
            for node in [1u32, 9, 21] {
                let r = store.range(node, "cpu.util", SimTime::ZERO, SimTime::MAX);
                assert_eq!(r.len(), 30);
                assert_eq!(r[0].value, node as f64);
            }
            // no flush: durability must come from the batched WAL write
        }
        let store = DiskStore::open(&dir, small_cfg()).unwrap();
        assert_eq!(store.recovery().samples_replayed, 90);
        for node in [1u32, 9, 21] {
            let r = store.range(node, "cpu.util", SimTime::ZERO, SimTime::MAX);
            assert_eq!(r.len(), 30);
        }
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn batch_append_crosses_flush_threshold() {
        let dir = tmp("batchflush");
        let store = DiskStore::open(&dir, small_cfg()).unwrap();
        let batch: Vec<BatchSample<'_>> = (0..200u64)
            .map(|i| BatchSample {
                node: 0,
                monitor: "m",
                time: t(i),
                value: i as f64,
            })
            .collect();
        store.append_batch(&batch);
        let r = store.range(0, "m", SimTime::ZERO, SimTime::MAX);
        assert_eq!(r.len(), 200, "flushed segment + memtable both visible");
        for (i, s) in r.iter().enumerate() {
            assert_eq!(s.value, i as f64);
        }
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn warm_queries_hit_the_block_cache() {
        let dir = tmp("cache");
        let store = DiskStore::open(&dir, small_cfg()).unwrap();
        for i in 0..200u64 {
            store.append(1, "m", t(i), i as f64);
        }
        store.flush_all().unwrap();
        let cold = store.range(1, "m", SimTime::ZERO, SimTime::MAX);
        assert_eq!(cold.len(), 200);
        let s1 = store.cache_stats();
        assert!(s1.misses > 0, "cold query loads blocks");
        let warm = store.range(1, "m", SimTime::ZERO, SimTime::MAX);
        assert_eq!(warm, cold);
        let s2 = store.cache_stats();
        assert_eq!(s2.misses, s1.misses, "warm query reads nothing from disk");
        assert!(s2.hits > s1.hits);
        store.clear_cache();
        store.range(1, "m", SimTime::ZERO, SimTime::MAX);
        assert!(
            store.cache_stats().misses > s2.misses,
            "cleared cache reloads"
        );
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn compaction_evicts_stale_cached_blocks() {
        let dir = tmp("cacheevict");
        let store = DiskStore::open(&dir, small_cfg()).unwrap();
        for i in 0..200u64 {
            store.append(1, "m", t(i), i as f64);
        }
        store.flush_all().unwrap();
        store.range(1, "m", SimTime::ZERO, SimTime::MAX); // populate cache
        assert!(store.cache_stats().entries > 0);
        store.compact_all().unwrap();
        assert_eq!(
            store.cache_stats().entries,
            0,
            "blocks of deleted segments evicted"
        );
        // queries after compaction still see everything
        assert_eq!(store.range(1, "m", SimTime::ZERO, SimTime::MAX).len(), 200);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn survives_drop_without_flush() {
        let dir = tmp("crash");
        {
            let store = DiskStore::open(&dir, small_cfg()).unwrap();
            for i in 0..50u64 {
                store.append(2, "load.one", t(i), i as f64);
            }
            // no flush: the 50 samples live only in the WAL
        }
        let store = DiskStore::open(&dir, small_cfg()).unwrap();
        assert_eq!(store.recovery().samples_replayed, 50);
        let r = store.range(2, "load.one", SimTime::ZERO, SimTime::MAX);
        assert_eq!(r.len(), 50);
        assert_eq!(r[49].value, 49.0);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn survives_flush_then_more_writes_then_drop() {
        let dir = tmp("mixed");
        {
            let store = DiskStore::open(&dir, small_cfg()).unwrap();
            for i in 0..200u64 {
                store.append(0, "m", t(i), i as f64); // crosses flush_threshold
            }
        }
        let store = DiskStore::open(&dir, small_cfg()).unwrap();
        let r = store.range(0, "m", SimTime::ZERO, SimTime::MAX);
        assert_eq!(r.len(), 200, "segments + WAL replay cover everything");
        for (i, s) in r.iter().enumerate() {
            assert_eq!(s.value, i as f64);
        }
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn compaction_merges_and_builds_tiers() {
        let dir = tmp("compact");
        let store = DiskStore::open(&dir, small_cfg()).unwrap();
        for i in 0..1000u64 {
            store.append(3, "temp.cpu", t(i), (i % 60) as f64);
        }
        store.compact_all().unwrap();
        let buckets = store.range_agg(
            3,
            "temp.cpu",
            SimTime::ZERO,
            SimTime::MAX,
            Resolution::TenSeconds,
        );
        assert_eq!(buckets.len(), 100);
        assert_eq!(buckets[0].count, 10);
        assert_eq!(buckets[0].min, 0.0);
        assert_eq!(buckets[0].max, 9.0);
        assert_eq!(buckets[0].last, 9.0);
        let five = store.range_agg(
            3,
            "temp.cpu",
            SimTime::ZERO,
            SimTime::MAX,
            Resolution::FiveMinutes,
        );
        assert_eq!(five.len(), 4);
        assert_eq!(five[0].count, 300);
        // raw survives compaction in full
        assert_eq!(
            store
                .range(3, "temp.cpu", SimTime::ZERO, SimTime::MAX)
                .len(),
            1000
        );
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn tier_query_covers_uncompacted_suffix() {
        let dir = tmp("suffix");
        let store = DiskStore::open(&dir, small_cfg()).unwrap();
        for i in 0..300u64 {
            store.append(3, "m", t(i), 1.0);
        }
        store.compact_all().unwrap();
        // fresh samples after compaction, still in memtable/raw only
        for i in 300..350u64 {
            store.append(3, "m", t(i), 2.0);
        }
        let buckets = store.range_agg(3, "m", SimTime::ZERO, SimTime::MAX, Resolution::TenSeconds);
        let total: u64 = buckets.iter().map(|b| b.count).sum();
        assert_eq!(total, 350, "tiers + raw suffix with no double counting");
        assert_eq!(buckets.last().unwrap().last, 2.0);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn hour_window_query_served_from_hour_tier() {
        use crate::{AggFunc, QueryGroup, QuerySpec};
        let dir = tmp("hourtier");
        let store = DiskStore::open(&dir, small_cfg()).unwrap();
        for i in 0..7200u64 {
            store.append(1, "m", t(i), (i % 100) as f64);
        }
        store.compact_all().unwrap();
        store.clear_cache();
        let spec = QuerySpec {
            monitor: "m".into(),
            from: t(0),
            to: t(7199),
            window_nanos: 3_600 * 1_000_000_000,
            agg: AggFunc::Avg,
            groups: vec![QueryGroup {
                key: "all".into(),
                nodes: vec![1],
            }],
            max_scan: 0,
        };
        let r = store.query(&spec).unwrap();
        assert_eq!(r.stats.tier, Resolution::OneHour);
        assert_eq!(r.stats.fallback_shards, 0);
        let points = &r.groups[0].points;
        assert_eq!(points.len(), 2);
        assert_eq!(points.iter().map(|p| p.count).sum::<u64>(), 7200);
        assert!((points[0].value - 49.5).abs() < 1e-9);
        // the decoded-bytes proof: only 1h blocks were read from disk
        let cs = store.cache_stats();
        assert!(cs.tier(Resolution::OneHour).misses > 0);
        assert_eq!(cs.tier(Resolution::TenSeconds).misses, 0);
        assert_eq!(cs.tier(Resolution::FiveMinutes).misses, 0);
        assert_eq!(cs.tier(Resolution::Raw).misses, 0);
        assert_eq!(
            r.stats.scanned_raw, 0,
            "no raw suffix left after compaction"
        );
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn grouped_percentile_query_scans_raw_across_shards() {
        use crate::{AggFunc, QueryGroup, QuerySpec};
        let dir = tmp("groupp99");
        let store = DiskStore::open(&dir, small_cfg()).unwrap();
        // nodes 0..8 span both shards (nodes_per_group=4, n_shards=2)
        for i in 0..100u64 {
            for node in 0..8u32 {
                store.append(node, "m", t(i), (node * 100 + i as u32) as f64);
            }
        }
        store.flush_all().unwrap();
        let spec = QuerySpec {
            monitor: "m".into(),
            from: t(0),
            to: t(99),
            window_nanos: 100 * 1_000_000_000,
            agg: AggFunc::P99,
            groups: vec![
                QueryGroup {
                    key: "low".into(),
                    nodes: (0..4).collect(),
                },
                QueryGroup {
                    key: "all".into(),
                    nodes: (0..8).collect(),
                },
            ],
            max_scan: 0,
        };
        let r = store.query(&spec).unwrap();
        assert_eq!(r.stats.tier, Resolution::Raw);
        assert_eq!(r.groups[0].points[0].count, 400);
        assert_eq!(r.groups[1].points[0].count, 800);
        // values are exactly 0..=799; nearest-rank p99 = index 791
        assert_eq!(r.groups[1].points[0].value, 791.0);
        assert_eq!(r.stats.scanned_raw, 400 + 800);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn tier_query_merges_uncompacted_suffix() {
        use crate::{AggFunc, QueryGroup, QuerySpec};
        let dir = tmp("querysuffix");
        let store = DiskStore::open(&dir, small_cfg()).unwrap();
        for i in 0..300u64 {
            store.append(3, "m", t(i), 1.0);
        }
        store.compact_all().unwrap();
        for i in 300..350u64 {
            store.append(3, "m", t(i), 2.0);
        }
        let spec = QuerySpec {
            monitor: "m".into(),
            from: t(0),
            to: t(349),
            window_nanos: 10 * 1_000_000_000,
            agg: AggFunc::Count,
            groups: vec![QueryGroup {
                key: "n3".into(),
                nodes: vec![3],
            }],
            max_scan: 0,
        };
        let r = store.query(&spec).unwrap();
        assert_eq!(r.stats.tier, Resolution::TenSeconds);
        let total: u64 = r.groups[0].points.iter().map(|p| p.count).sum();
        assert_eq!(total, 350, "tier buckets + raw suffix, no double counting");
        assert!(r.stats.scanned_raw >= 50);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn forget_node_is_durable() {
        let dir = tmp("forget");
        {
            let store = DiskStore::open(&dir, small_cfg()).unwrap();
            for i in 0..100u64 {
                store.append(1, "m", t(i), 1.0);
                store.append(2, "m", t(i), 2.0);
            }
            store.forget_node(1);
            assert!(store.range(1, "m", SimTime::ZERO, SimTime::MAX).is_empty());
            assert_eq!(store.range(2, "m", SimTime::ZERO, SimTime::MAX).len(), 100);
        }
        let store = DiskStore::open(&dir, small_cfg()).unwrap();
        assert!(store.range(1, "m", SimTime::ZERO, SimTime::MAX).is_empty());
        assert_eq!(store.range(2, "m", SimTime::ZERO, SimTime::MAX).len(), 100);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn sharding_config_persists_across_reopen() {
        let dir = tmp("cfg");
        {
            let store = DiskStore::open(&dir, small_cfg()).unwrap();
            store.append(0, "m", t(1), 1.0);
            store.flush_all().unwrap();
        }
        // reopen with a different shard count: disk config wins
        let store = DiskStore::open(
            &dir,
            StoreConfig {
                n_shards: 7,
                nodes_per_group: 3,
                ..StoreConfig::default()
            },
        )
        .unwrap();
        assert_eq!(store.config().n_shards, 2);
        assert_eq!(store.config().nodes_per_group, 4);
        assert_eq!(store.range(0, "m", SimTime::ZERO, SimTime::MAX).len(), 1);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn concurrent_shard_writes() {
        let dir = tmp("concurrent");
        let store = std::sync::Arc::new(DiskStore::open(&dir, small_cfg()).unwrap());
        let writers: Vec<_> = (0..8u32)
            .map(|node| {
                let store = std::sync::Arc::clone(&store);
                std::thread::spawn(move || {
                    for i in 0..500u64 {
                        store.append(node, "load.one", t(i), node as f64);
                    }
                })
            })
            .collect();
        for w in writers {
            w.join().unwrap();
        }
        assert_eq!(store.total_samples(), 8 * 500);
        for node in 0..8 {
            assert_eq!(
                store
                    .range(node, "load.one", SimTime::ZERO, SimTime::MAX)
                    .len(),
                500
            );
        }
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn failed_writer_degrades_to_volatile_ingest() {
        let dir = tmp("degrade");
        let store = DiskStore::open(&dir, small_cfg()).unwrap();
        store.append(0, "cpu.util", t(0), 1.0);
        assert!(!store.degraded());

        // the disk dies mid-campaign
        store.inject_write_failure();
        store.append(0, "cpu.util", t(1), 2.0);
        assert!(store.degraded(), "a failed WAL write must degrade");
        assert!(store.last_error().unwrap().contains("injected"));

        // ingest keeps running: new samples (single and batched, new
        // series included) stay readable from the memtable
        store.append(0, "cpu.util", t(2), 3.0);
        store.append_batch(&[
            BatchSample {
                node: 1,
                monitor: "load.one",
                time: t(2),
                value: 0.5,
            },
            BatchSample {
                node: 0,
                monitor: "cpu.util",
                time: t(3),
                value: 4.0,
            },
        ]);
        assert_eq!(store.latest(0, "cpu.util").unwrap().value, 4.0);
        assert_eq!(store.latest(1, "load.one").unwrap().value, 0.5);
        assert_eq!(store.range(0, "cpu.util", t(0), t(3)).len(), 4);
        assert_eq!(store.volatile_samples(), 4);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn degraded_samples_do_not_survive_a_restart() {
        let dir = tmp("degrade-restart");
        {
            let store = DiskStore::open(&dir, small_cfg()).unwrap();
            store.append(3, "m", t(0), 1.0);
            store.inject_write_failure();
            store.append(3, "m", t(1), 2.0); // volatile only
        }
        let store = DiskStore::open(&dir, small_cfg()).unwrap();
        assert!(!store.degraded(), "a reopen starts clean");
        let r = store.range(3, "m", SimTime::ZERO, SimTime::MAX);
        assert_eq!(r.len(), 1, "only the durable sample came back");
        assert_eq!(r[0].value, 1.0);
        let _ = std::fs::remove_dir_all(dir);
    }
}
