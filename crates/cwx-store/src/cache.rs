//! LRU cache of decoded segment blocks.
//!
//! The disk store's v2 segments are read one series at a time
//! ([`crate::segment::read_series`]); this cache keeps the decoded
//! payloads so repeated dashboard / `history` range queries stop
//! re-reading and re-decoding segment files. Capacity is budgeted in
//! *samples* (decoded entries), not bytes, because a decoded
//! `Vec<Sample>` is 16 B/entry regardless of how well the file
//! compressed — see `StoreConfig::cache_capacity_samples`.
//!
//! Lock order: shard lock first, then the cache's internal lock. The
//! cache never calls back into a shard, so the order cannot invert.

use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Mutex};

use crate::segment::SeriesData;
use crate::Resolution;

/// Identifies one decoded series payload of one segment file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BlockKey {
    /// Shard index the segment belongs to.
    pub shard: u32,
    /// Segment sequence number (unique within a shard).
    pub seq: u64,
    /// Resolution tag of the segment.
    pub res: u8,
    /// Position of the series inside the segment's index.
    pub series: u32,
}

/// Per-resolution hit/miss counters (E17 attributes warm-vs-cold wins
/// per tier with these).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TierCacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to read the segment file.
    pub misses: u64,
}

/// Counters surfaced through the store stats.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the cache (all tiers).
    pub hits: u64,
    /// Lookups that had to read the segment file (all tiers).
    pub misses: u64,
    /// Blocks evicted to stay under the sample budget.
    pub evictions: u64,
    /// Blocks currently cached.
    pub entries: u64,
    /// Decoded samples currently cached.
    pub samples: u64,
    /// Hit/miss split by resolution tag (raw, 10s, 5m, 1h).
    pub per_tier: [TierCacheStats; 4],
}

impl CacheStats {
    /// The hit/miss split of one resolution.
    pub fn tier(&self, res: Resolution) -> TierCacheStats {
        self.per_tier[res.tag() as usize]
    }
}

#[derive(Debug)]
struct CachedBlock {
    data: Arc<SeriesData>,
    samples: usize,
    tick: u64,
}

#[derive(Debug, Default)]
struct CacheInner {
    map: HashMap<BlockKey, CachedBlock>,
    /// LRU order: tick of last touch → key. Ticks are unique.
    lru: BTreeMap<u64, BlockKey>,
    tick: u64,
    samples: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
    per_tier: [TierCacheStats; 4],
}

/// A sample-budgeted LRU cache of decoded segment blocks, shared by all
/// shards of a [`crate::disk::DiskStore`].
#[derive(Debug)]
pub struct BlockCache {
    inner: Mutex<CacheInner>,
    capacity_samples: usize,
}

impl BlockCache {
    /// A cache holding at most `capacity_samples` decoded entries
    /// (counting each empty block as one).
    pub fn new(capacity_samples: usize) -> Self {
        BlockCache {
            inner: Mutex::new(CacheInner::default()),
            capacity_samples,
        }
    }

    /// Look up a block, refreshing its LRU position on hit. Misses are
    /// counted here; the caller is expected to load and
    /// [`insert`](BlockCache::insert) the block (the load happens
    /// outside the cache lock, so concurrent misses may duplicate I/O
    /// but never deadlock).
    pub fn get(&self, key: &BlockKey) -> Option<Arc<SeriesData>> {
        let mut inner = self.inner.lock().unwrap();
        inner.tick += 1;
        let tick = inner.tick;
        let tier = (key.res as usize).min(3);
        match inner.map.get_mut(key) {
            Some(block) => {
                let old = std::mem::replace(&mut block.tick, tick);
                let data = Arc::clone(&block.data);
                inner.lru.remove(&old);
                inner.lru.insert(tick, *key);
                inner.hits += 1;
                inner.per_tier[tier].hits += 1;
                Some(data)
            }
            None => {
                inner.misses += 1;
                inner.per_tier[tier].misses += 1;
                None
            }
        }
    }

    /// Insert a decoded block, evicting least-recently-used blocks as
    /// needed to stay within the sample budget. A block larger than the
    /// whole budget is still cached (alone).
    pub fn insert(&self, key: BlockKey, data: Arc<SeriesData>) {
        let samples = data.len().max(1);
        let mut inner = self.inner.lock().unwrap();
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(old) = inner.map.remove(&key) {
            inner.lru.remove(&old.tick);
            inner.samples -= old.samples;
        }
        while inner.samples + samples > self.capacity_samples && !inner.lru.is_empty() {
            let (&t, &victim) = inner.lru.iter().next().unwrap();
            inner.lru.remove(&t);
            let gone = inner.map.remove(&victim).expect("lru/map agree");
            inner.samples -= gone.samples;
            inner.evictions += 1;
        }
        inner.samples += samples;
        inner.lru.insert(tick, key);
        inner.map.insert(
            key,
            CachedBlock {
                data,
                samples,
                tick,
            },
        );
    }

    /// Drop every block belonging to `shard` (called after compaction
    /// deletes that shard's input segments, and on `forget_node`).
    pub fn evict_shard(&self, shard: u32) {
        let mut inner = self.inner.lock().unwrap();
        let doomed: Vec<(u64, BlockKey)> = inner
            .lru
            .iter()
            .filter(|(_, k)| k.shard == shard)
            .map(|(&t, &k)| (t, k))
            .collect();
        for (t, k) in doomed {
            inner.lru.remove(&t);
            let gone = inner.map.remove(&k).expect("lru/map agree");
            inner.samples -= gone.samples;
        }
    }

    /// Drop everything (used by benches to measure cold reads).
    pub fn clear(&self) {
        let mut inner = self.inner.lock().unwrap();
        inner.map.clear();
        inner.lru.clear();
        inner.samples = 0;
    }

    /// Counters so far.
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock().unwrap();
        CacheStats {
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
            entries: inner.map.len() as u64,
            samples: inner.samples as u64,
            per_tier: inner.per_tier,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Sample;
    use cwx_util::time::SimTime;

    fn block(n: usize) -> Arc<SeriesData> {
        Arc::new(SeriesData::Raw(
            (0..n)
                .map(|i| Sample {
                    time: SimTime::from_nanos(i as u64),
                    value: i as f64,
                })
                .collect(),
        ))
    }

    fn key(seq: u64) -> BlockKey {
        BlockKey {
            shard: 0,
            seq,
            res: 0,
            series: 0,
        }
    }

    #[test]
    fn hit_miss_and_counters() {
        let cache = BlockCache::new(100);
        assert!(cache.get(&key(1)).is_none());
        cache.insert(key(1), block(10));
        assert_eq!(cache.get(&key(1)).unwrap().len(), 10);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries, s.samples), (1, 1, 1, 10));
    }

    #[test]
    fn lru_evicts_oldest_within_sample_budget() {
        let cache = BlockCache::new(25);
        cache.insert(key(1), block(10));
        cache.insert(key(2), block(10));
        cache.get(&key(1)); // refresh 1 so 2 is oldest
        cache.insert(key(3), block(10));
        assert!(cache.get(&key(2)).is_none(), "LRU victim");
        assert!(cache.get(&key(1)).is_some());
        assert!(cache.get(&key(3)).is_some());
        assert_eq!(cache.stats().evictions, 1);
        assert!(cache.stats().samples <= 25);
    }

    #[test]
    fn oversize_block_still_cached() {
        let cache = BlockCache::new(5);
        cache.insert(key(1), block(50));
        assert_eq!(cache.get(&key(1)).unwrap().len(), 50);
    }

    #[test]
    fn evict_shard_is_selective() {
        let cache = BlockCache::new(1000);
        cache.insert(key(1), block(5));
        cache.insert(
            BlockKey {
                shard: 7,
                seq: 1,
                res: 0,
                series: 0,
            },
            block(5),
        );
        cache.evict_shard(7);
        assert!(cache.get(&key(1)).is_some());
        assert!(cache
            .get(&BlockKey {
                shard: 7,
                seq: 1,
                res: 0,
                series: 0,
            })
            .is_none());
    }

    #[test]
    fn per_tier_counters_and_hour_tier_eviction() {
        let cache = BlockCache::new(1000);
        let hour = BlockKey {
            shard: 2,
            seq: 1,
            res: 3,
            series: 0,
        };
        assert!(cache.get(&hour).is_none());
        cache.insert(hour, block(5));
        assert!(cache.get(&hour).is_some());
        cache.get(&key(9)); // raw-tier miss
        let s = cache.stats();
        assert_eq!(
            s.tier(Resolution::OneHour),
            TierCacheStats { hits: 1, misses: 1 }
        );
        assert_eq!(
            s.tier(Resolution::Raw),
            TierCacheStats { hits: 0, misses: 1 }
        );
        assert_eq!(s.tier(Resolution::FiveMinutes), TierCacheStats::default());
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 2);
        // a compaction-triggered shard eviction must cover 1h entries
        cache.evict_shard(2);
        assert!(cache.get(&hour).is_none());
    }

    #[test]
    fn reinsert_replaces_without_leaking_budget() {
        let cache = BlockCache::new(100);
        cache.insert(key(1), block(40));
        cache.insert(key(1), block(60));
        let s = cache.stats();
        assert_eq!((s.entries, s.samples), (1, 60));
    }
}
