//! Byte-level encodings shared by the WAL and segment formats.
//!
//! * LEB128 varints for unsigned integers,
//! * zigzag mapping for signed deltas,
//! * delta-of-delta timestamp compression (Gorilla-style, byte-aligned),
//! * XOR chaining for f64 values (consecutive equal values cost 1 byte),
//! * CRC32 (IEEE) for record and file checksums.

/// Errors from decoding a varint stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodecError {
    /// Ran out of input mid-value.
    UnexpectedEnd,
    /// A varint ran longer than 10 bytes (not a valid u64).
    Overflow,
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::UnexpectedEnd => write!(f, "input ended inside a value"),
            CodecError::Overflow => write!(f, "varint longer than 10 bytes"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Append `v` as a LEB128 varint.
pub fn put_uvarint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Read a LEB128 varint from `buf[*pos..]`, advancing `pos`.
pub fn get_uvarint(buf: &[u8], pos: &mut usize) -> Result<u64, CodecError> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let byte = *buf.get(*pos).ok_or(CodecError::UnexpectedEnd)?;
        *pos += 1;
        if shift == 63 && byte > 1 {
            return Err(CodecError::Overflow);
        }
        v |= ((byte & 0x7f) as u64) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift > 63 {
            return Err(CodecError::Overflow);
        }
    }
}

/// Map a signed value onto an unsigned one with small absolute values
/// staying small (0, -1, 1, -2 → 0, 1, 2, 3).
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Encode a sorted-or-not timestamp sequence: first value as a varint,
/// then delta-of-delta zigzag varints. Monotonic fixed-interval series
/// (the common monitoring case) encode to ~1 byte per timestamp.
pub fn put_timestamps(out: &mut Vec<u8>, times: &[u64]) {
    let Some(&first) = times.first() else { return };
    put_uvarint(out, first);
    let mut prev = first;
    let mut prev_delta: i64 = 0;
    for &t in &times[1..] {
        // wrapping arithmetic: round-trips any u64, not just the
        // monotonic nanosecond counters this was tuned for
        let delta = t.wrapping_sub(prev) as i64;
        put_uvarint(out, zigzag(delta.wrapping_sub(prev_delta)));
        prev_delta = delta;
        prev = t;
    }
}

/// Decode `count` timestamps written by [`put_timestamps`].
pub fn get_timestamps(buf: &[u8], pos: &mut usize, count: usize) -> Result<Vec<u64>, CodecError> {
    let mut out = Vec::with_capacity(count);
    if count == 0 {
        return Ok(out);
    }
    let first = get_uvarint(buf, pos)?;
    out.push(first);
    let mut prev = first;
    let mut prev_delta: i64 = 0;
    for _ in 1..count {
        let dd = unzigzag(get_uvarint(buf, pos)?);
        let delta = prev_delta.wrapping_add(dd);
        prev = prev.wrapping_add(delta as u64);
        prev_delta = delta;
        out.push(prev);
    }
    Ok(out)
}

/// Encode f64 values as an XOR chain over their bit patterns: the first
/// value's bits as a varint, then `prev ^ cur` varints. Slowly-changing
/// monitor values share exponent/sign bits, so XOR leaves mostly low
/// zero bits; runs of identical values cost one byte each.
pub fn put_values(out: &mut Vec<u8>, values: &[f64]) {
    let mut prev = 0u64;
    for &v in values {
        let bits = v.to_bits();
        put_uvarint(out, prev ^ bits);
        prev = bits;
    }
}

/// Decode `count` values written by [`put_values`]. Bit patterns (NaN
/// payloads included) round-trip exactly.
pub fn get_values(buf: &[u8], pos: &mut usize, count: usize) -> Result<Vec<f64>, CodecError> {
    let mut out = Vec::with_capacity(count);
    let mut prev = 0u64;
    for _ in 0..count {
        let bits = prev ^ get_uvarint(buf, pos)?;
        out.push(f64::from_bits(bits));
        prev = bits;
    }
    Ok(out)
}

/// CRC32 (IEEE 802.3 polynomial, reflected).
pub fn crc32(data: &[u8]) -> u32 {
    const POLY: u32 = 0xEDB8_8320;
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, slot) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { POLY ^ (c >> 1) } else { c >> 1 };
            }
            *slot = c;
        }
        t
    });
    let mut crc = !0u32;
    for &b in data {
        crc = table[((crc ^ b as u32) & 0xff) as usize] ^ (crc >> 8);
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_round_trip() {
        let mut buf = Vec::new();
        let values = [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX];
        for &v in &values {
            put_uvarint(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &values {
            assert_eq!(get_uvarint(&buf, &mut pos).unwrap(), v);
        }
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn varint_rejects_truncation_and_overflow() {
        let mut buf = Vec::new();
        put_uvarint(&mut buf, u64::MAX);
        let mut pos = 0;
        assert_eq!(
            get_uvarint(&buf[..buf.len() - 1], &mut pos),
            Err(CodecError::UnexpectedEnd)
        );
        let bad = [0xff; 11];
        let mut pos = 0;
        assert_eq!(get_uvarint(&bad, &mut pos), Err(CodecError::Overflow));
    }

    #[test]
    fn zigzag_round_trip() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn fixed_interval_timestamps_compress_to_a_byte_each() {
        let times: Vec<u64> = (0..1000u64).map(|i| i * 5_000_000_000).collect();
        let mut buf = Vec::new();
        put_timestamps(&mut buf, &times);
        // first ts (1 byte) + first delta (~5 bytes) + 998 × 1-byte zero dd
        assert!(buf.len() < 1010, "{} bytes for 1000 timestamps", buf.len());
        let mut pos = 0;
        assert_eq!(get_timestamps(&buf, &mut pos, times.len()).unwrap(), times);
    }

    #[test]
    fn values_round_trip_including_specials() {
        let values = [
            0.0,
            -0.0,
            1.5,
            1.5,
            1.5,
            f64::NAN,
            f64::INFINITY,
            -123.456,
            f64::MIN,
        ];
        let mut buf = Vec::new();
        put_values(&mut buf, &values);
        let mut pos = 0;
        let back = get_values(&buf, &mut pos, values.len()).unwrap();
        for (a, b) in values.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn repeated_values_cost_one_byte() {
        let values = vec![42.125f64; 500];
        let mut buf = Vec::new();
        put_values(&mut buf, &values);
        assert!(buf.len() <= 500 + 9, "{} bytes for 500 repeats", buf.len());
    }

    #[test]
    fn crc32_known_vector() {
        // the classic check value for "123456789"
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_ne!(crc32(b"a"), crc32(b"b"));
    }
}
