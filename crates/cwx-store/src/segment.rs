//! Immutable on-disk segment files.
//!
//! A segment holds the samples (or downsampled buckets) of many series
//! at one resolution. Layout, little-endian:
//!
//! ```text
//! 8B  magic "CWXSEG2\n"
//! u8  resolution tag (0 raw, 1 ten-second, 2 five-minute)
//! u32 series count
//! per series:
//!   u32 node | u16 name_len | name bytes | u32 count
//!   u32 payload_len | u32 payload_crc32 | u64 min_time | u64 max_time
//!   payload (payload_len bytes):
//!     raw:  delta-of-delta timestamps, then XOR-varint values
//!     tier: delta-of-delta bucket starts, varint counts, then XOR-varint
//!           min / mean / max / last chains
//! u32 crc32 over everything after the magic
//! ```
//!
//! Each series header carries the payload length, its own CRC and the
//! series' time bounds, so a reader can walk the headers once into a
//! [`SegmentIndex`] and afterwards fetch any single series with one
//! `seek` + `read_exact` ([`read_series`]) — queries no longer decode
//! the whole file. The trailing file CRC still guards the full-file
//! read paths (recovery, compaction).
//!
//! Segments are written to a temp file and atomically renamed into
//! place, so a crash mid-flush leaves no partial segment behind. The
//! reader verifies magic and CRC before parsing anything.

use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use cwx_util::time::SimTime;

use crate::codec::{
    crc32, get_timestamps, get_uvarint, get_values, put_timestamps, put_uvarint, put_values,
};
use crate::{AggBucket, Resolution, Sample, StoreError};

const MAGIC: &[u8; 8] = b"CWXSEG2\n";
/// Bytes in a per-series header after the variable-length name:
/// count + payload_len + payload_crc + min_time + max_time.
const SERIES_HEADER_TAIL: usize = 4 + 4 + 4 + 8 + 8;

/// One series' payload inside a segment.
#[derive(Debug, Clone, PartialEq)]
pub enum SeriesData {
    /// Raw samples, time-ordered.
    Raw(Vec<Sample>),
    /// Downsampled buckets, time-ordered.
    Buckets(Vec<AggBucket>),
}

impl SeriesData {
    /// Entry count.
    pub fn len(&self) -> usize {
        match self {
            SeriesData::Raw(v) => v.len(),
            SeriesData::Buckets(v) => v.len(),
        }
    }

    /// True when no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Smallest timestamp (bucket start for tiers).
    pub fn min_time(&self) -> Option<SimTime> {
        match self {
            SeriesData::Raw(v) => v.first().map(|s| s.time),
            SeriesData::Buckets(v) => v.first().map(|b| b.start),
        }
    }

    /// Largest timestamp (bucket start for tiers).
    pub fn max_time(&self) -> Option<SimTime> {
        match self {
            SeriesData::Raw(v) => v.last().map(|s| s.time),
            SeriesData::Buckets(v) => v.last().map(|b| b.start),
        }
    }
}

/// Where one series lives inside a segment file.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesIndexEntry {
    /// Node index.
    pub node: u32,
    /// Monitor name.
    pub monitor: String,
    /// Entries in the payload (samples or buckets).
    pub count: u32,
    /// Smallest timestamp in the payload (0 when empty).
    pub min_time: SimTime,
    /// Largest timestamp in the payload (0 when empty).
    pub max_time: SimTime,
    /// Absolute file offset of the payload.
    pub offset: u64,
    /// Payload length in bytes.
    pub len: u32,
    /// CRC32 of the payload bytes.
    pub crc: u32,
}

/// The header walk of a segment file: everything needed to locate and
/// prune series without decoding any payload.
///
/// Entries are in file order, which is sorted by `(node, monitor)` —
/// the flush and compaction paths both sort before writing — so lookups
/// can binary-search.
#[derive(Debug, Clone, PartialEq)]
pub struct SegmentIndex {
    /// Tier.
    pub resolution: Resolution,
    /// Per-series locations, sorted by `(node, monitor)`.
    pub entries: Vec<SeriesIndexEntry>,
}

impl SegmentIndex {
    /// Read the file at `path`, verify its checksum and build the index
    /// without decoding any series payload.
    pub fn read_from(path: &Path) -> Result<SegmentIndex, StoreError> {
        let data = std::fs::read(path)?;
        let corrupt = |reason| StoreError::CorruptSegment {
            path: path.to_path_buf(),
            reason,
        };
        if data.len() < MAGIC.len() + 4 || &data[..MAGIC.len()] != MAGIC {
            return Err(corrupt("bad magic"));
        }
        let body = &data[MAGIC.len()..data.len() - 4];
        let stored = u32::from_le_bytes(data[data.len() - 4..].try_into().unwrap());
        if crc32(body) != stored {
            return Err(corrupt("checksum mismatch"));
        }
        let mut pos = 0usize;
        let take = |pos: &mut usize, n: usize| -> Result<&[u8], StoreError> {
            let s = body
                .get(*pos..*pos + n)
                .ok_or_else(|| StoreError::CorruptSegment {
                    path: path.to_path_buf(),
                    reason: "truncated body",
                })?;
            *pos += n;
            Ok(s)
        };
        let resolution = Resolution::from_tag(take(&mut pos, 1)?[0])
            .ok_or_else(|| corrupt("bad resolution tag"))?;
        let n_series = u32::from_le_bytes(take(&mut pos, 4)?.try_into().unwrap()) as usize;
        let mut entries = Vec::with_capacity(n_series);
        for _ in 0..n_series {
            let node = u32::from_le_bytes(take(&mut pos, 4)?.try_into().unwrap());
            let name_len = u16::from_le_bytes(take(&mut pos, 2)?.try_into().unwrap()) as usize;
            let monitor = String::from_utf8(take(&mut pos, name_len)?.to_vec())
                .map_err(|_| corrupt("monitor name not utf-8"))?;
            let tail = take(&mut pos, SERIES_HEADER_TAIL)?;
            let count = u32::from_le_bytes(tail[0..4].try_into().unwrap());
            let len = u32::from_le_bytes(tail[4..8].try_into().unwrap());
            let crc = u32::from_le_bytes(tail[8..12].try_into().unwrap());
            let min_time =
                SimTime::from_nanos(u64::from_le_bytes(tail[12..20].try_into().unwrap()));
            let max_time =
                SimTime::from_nanos(u64::from_le_bytes(tail[20..28].try_into().unwrap()));
            let offset = (MAGIC.len() + pos) as u64;
            take(&mut pos, len as usize)?;
            entries.push(SeriesIndexEntry {
                node,
                monitor,
                count,
                min_time,
                max_time,
                offset,
                len,
                crc,
            });
        }
        if pos != body.len() {
            return Err(corrupt("trailing bytes after last series"));
        }
        Ok(SegmentIndex {
            resolution,
            entries,
        })
    }
}

/// Fetch and decode one series' payload with a single positioned read.
///
/// `entry` must come from a [`SegmentIndex`] built over the same file;
/// the payload CRC recorded in the header is re-verified, so a file
/// swapped or damaged since indexing is detected, not mis-decoded.
pub fn read_series(
    path: &Path,
    resolution: Resolution,
    entry: &SeriesIndexEntry,
) -> Result<SeriesData, StoreError> {
    let mut f = std::fs::File::open(path)?;
    f.seek(SeekFrom::Start(entry.offset))?;
    let mut payload = vec![0u8; entry.len as usize];
    f.read_exact(&mut payload)?;
    if crc32(&payload) != entry.crc {
        return Err(StoreError::CorruptSegment {
            path: path.to_path_buf(),
            reason: "series payload checksum mismatch",
        });
    }
    decode_payload(&payload, resolution, entry.count as usize, path)
}

fn encode_payload(data: &SeriesData, out: &mut Vec<u8>) {
    match data {
        SeriesData::Raw(samples) => {
            let times: Vec<u64> = samples.iter().map(|s| s.time.as_nanos()).collect();
            let values: Vec<f64> = samples.iter().map(|s| s.value).collect();
            put_timestamps(out, &times);
            put_values(out, &values);
        }
        SeriesData::Buckets(buckets) => {
            let starts: Vec<u64> = buckets.iter().map(|b| b.start.as_nanos()).collect();
            put_timestamps(out, &starts);
            for b in buckets {
                put_uvarint(out, b.count);
            }
            for field in [
                |b: &AggBucket| b.min,
                |b: &AggBucket| b.mean,
                |b: &AggBucket| b.max,
                |b: &AggBucket| b.last,
            ] {
                let vals: Vec<f64> = buckets.iter().map(field).collect();
                put_values(out, &vals);
            }
        }
    }
}

fn decode_payload(
    payload: &[u8],
    resolution: Resolution,
    count: usize,
    origin: &Path,
) -> Result<SeriesData, StoreError> {
    let decode_err = |_| StoreError::CorruptSegment {
        path: origin.to_path_buf(),
        reason: "varint stream truncated",
    };
    let mut pos = 0usize;
    let data = if resolution == Resolution::Raw {
        let times = get_timestamps(payload, &mut pos, count).map_err(decode_err)?;
        let values = get_values(payload, &mut pos, count).map_err(decode_err)?;
        SeriesData::Raw(
            times
                .into_iter()
                .zip(values)
                .map(|(t, value)| Sample {
                    time: SimTime::from_nanos(t),
                    value,
                })
                .collect(),
        )
    } else {
        let starts = get_timestamps(payload, &mut pos, count).map_err(decode_err)?;
        let mut counts = Vec::with_capacity(count);
        for _ in 0..count {
            counts.push(get_uvarint(payload, &mut pos).map_err(decode_err)?);
        }
        let min = get_values(payload, &mut pos, count).map_err(decode_err)?;
        let mean = get_values(payload, &mut pos, count).map_err(decode_err)?;
        let max = get_values(payload, &mut pos, count).map_err(decode_err)?;
        let last = get_values(payload, &mut pos, count).map_err(decode_err)?;
        SeriesData::Buckets(
            (0..count)
                .map(|i| AggBucket {
                    start: SimTime::from_nanos(starts[i]),
                    count: counts[i],
                    min: min[i],
                    mean: mean[i],
                    max: max[i],
                    last: last[i],
                })
                .collect(),
        )
    };
    if pos != payload.len() {
        return Err(StoreError::CorruptSegment {
            path: origin.to_path_buf(),
            reason: "trailing bytes in series payload",
        });
    }
    Ok(data)
}

/// A fully-decoded segment.
#[derive(Debug, Clone, PartialEq)]
pub struct Segment {
    /// Tier.
    pub resolution: Resolution,
    /// Per-series payloads keyed by `(node, monitor)`.
    pub series: Vec<((u32, String), SeriesData)>,
}

impl Segment {
    /// Encode to bytes, also returning the index of what was written.
    pub fn encode_indexed(&self) -> (Vec<u8>, SegmentIndex) {
        let mut body = Vec::new();
        body.push(self.resolution.tag());
        body.extend_from_slice(&(self.series.len() as u32).to_le_bytes());
        let mut entries = Vec::with_capacity(self.series.len());
        let mut payload = Vec::new();
        for ((node, name), data) in &self.series {
            payload.clear();
            encode_payload(data, &mut payload);
            let crc = crc32(&payload);
            body.extend_from_slice(&node.to_le_bytes());
            body.extend_from_slice(&(name.len() as u16).to_le_bytes());
            body.extend_from_slice(name.as_bytes());
            body.extend_from_slice(&(data.len() as u32).to_le_bytes());
            body.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            body.extend_from_slice(&crc.to_le_bytes());
            let min_time = data.min_time().unwrap_or(SimTime::ZERO);
            let max_time = data.max_time().unwrap_or(SimTime::ZERO);
            body.extend_from_slice(&min_time.as_nanos().to_le_bytes());
            body.extend_from_slice(&max_time.as_nanos().to_le_bytes());
            entries.push(SeriesIndexEntry {
                node: *node,
                monitor: name.clone(),
                count: data.len() as u32,
                min_time,
                max_time,
                offset: (MAGIC.len() + body.len()) as u64,
                len: payload.len() as u32,
                crc,
            });
            body.extend_from_slice(&payload);
        }
        let mut out = Vec::with_capacity(MAGIC.len() + body.len() + 4);
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&body);
        out.extend_from_slice(&crc32(&body).to_le_bytes());
        let index = SegmentIndex {
            resolution: self.resolution,
            entries,
        };
        (out, index)
    }

    /// Encode to bytes.
    pub fn encode(&self) -> Vec<u8> {
        self.encode_indexed().0
    }

    /// Decode and validate bytes produced by [`Segment::encode`].
    pub fn decode(data: &[u8], origin: &Path) -> Result<Segment, StoreError> {
        let corrupt = |reason| StoreError::CorruptSegment {
            path: origin.to_path_buf(),
            reason,
        };
        if data.len() < MAGIC.len() + 4 || &data[..MAGIC.len()] != MAGIC {
            return Err(corrupt("bad magic"));
        }
        let body = &data[MAGIC.len()..data.len() - 4];
        let stored = u32::from_le_bytes(data[data.len() - 4..].try_into().unwrap());
        if crc32(body) != stored {
            return Err(corrupt("checksum mismatch"));
        }
        let mut pos = 0usize;
        let take = |pos: &mut usize, n: usize| -> Result<&[u8], StoreError> {
            let s = body
                .get(*pos..*pos + n)
                .ok_or_else(|| StoreError::CorruptSegment {
                    path: origin.to_path_buf(),
                    reason: "truncated body",
                })?;
            *pos += n;
            Ok(s)
        };
        let resolution = Resolution::from_tag(take(&mut pos, 1)?[0])
            .ok_or_else(|| corrupt("bad resolution tag"))?;
        let n_series = u32::from_le_bytes(take(&mut pos, 4)?.try_into().unwrap()) as usize;
        let mut series = Vec::with_capacity(n_series);
        for _ in 0..n_series {
            let node = u32::from_le_bytes(take(&mut pos, 4)?.try_into().unwrap());
            let name_len = u16::from_le_bytes(take(&mut pos, 2)?.try_into().unwrap()) as usize;
            let name = String::from_utf8(take(&mut pos, name_len)?.to_vec())
                .map_err(|_| corrupt("monitor name not utf-8"))?;
            let tail = take(&mut pos, SERIES_HEADER_TAIL)?;
            let count = u32::from_le_bytes(tail[0..4].try_into().unwrap()) as usize;
            let len = u32::from_le_bytes(tail[4..8].try_into().unwrap()) as usize;
            let payload = take(&mut pos, len)?;
            let data = decode_payload(payload, resolution, count, origin)?;
            series.push(((node, name), data));
        }
        Ok(Segment { resolution, series })
    }

    /// Write atomically to `path` (temp file + rename), returning the
    /// index of the written file so callers need not re-read it.
    pub fn write_to(&self, path: &Path) -> Result<SegmentIndex, StoreError> {
        let (bytes, index) = self.encode_indexed();
        let tmp: PathBuf = path.with_extension("tmp");
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(&bytes)?;
            f.sync_data().ok();
        }
        std::fs::rename(&tmp, path)?;
        Ok(index)
    }

    /// Read and validate the segment at `path`.
    pub fn read_from(path: &Path) -> Result<Segment, StoreError> {
        let data = std::fs::read(path)?;
        Segment::decode(&data, path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cwx_util::time::SimDuration;

    fn t(s: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(s)
    }

    fn raw_segment() -> Segment {
        Segment {
            resolution: Resolution::Raw,
            series: vec![
                (
                    (3, "cpu.util".to_string()),
                    SeriesData::Raw(
                        (0..100)
                            .map(|i| Sample {
                                time: t(i * 5),
                                value: i as f64 * 0.5,
                            })
                            .collect(),
                    ),
                ),
                ((9, "mem.free".to_string()), SeriesData::Raw(vec![])),
            ],
        }
    }

    #[test]
    fn raw_round_trip() {
        let seg = raw_segment();
        let back = Segment::decode(&seg.encode(), Path::new("mem")).unwrap();
        assert_eq!(back, seg);
    }

    #[test]
    fn tier_round_trip() {
        let seg = Segment {
            resolution: Resolution::TenSeconds,
            series: vec![(
                (1, "load.one".to_string()),
                SeriesData::Buckets(
                    (0..50)
                        .map(|i| AggBucket {
                            start: t(i * 10),
                            count: 10,
                            min: i as f64,
                            mean: i as f64 + 0.5,
                            max: i as f64 + 1.0,
                            last: i as f64 + 0.25,
                        })
                        .collect(),
                ),
            )],
        };
        let back = Segment::decode(&seg.encode(), Path::new("mem")).unwrap();
        assert_eq!(back, seg);
    }

    #[test]
    fn fixed_interval_series_compress_well() {
        let seg = raw_segment();
        let bytes = seg.encode();
        // 100 samples, mostly 1-byte dd + small value xors, plus headers
        assert!(
            bytes.len() < 100 * 16,
            "{} bytes should beat raw 16B/sample",
            bytes.len()
        );
    }

    #[test]
    fn flipped_bit_fails_checksum() {
        let mut bytes = raw_segment().encode();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 1;
        let err = Segment::decode(&bytes, Path::new("mem")).unwrap_err();
        assert!(matches!(
            err,
            StoreError::CorruptSegment {
                reason: "checksum mismatch",
                ..
            }
        ));
    }

    #[test]
    fn bad_magic_rejected() {
        let err = Segment::decode(b"NOTASEGMENT!", Path::new("mem")).unwrap_err();
        assert!(matches!(
            err,
            StoreError::CorruptSegment {
                reason: "bad magic",
                ..
            }
        ));
    }

    #[test]
    fn atomic_write_and_read_back() {
        let dir = std::env::temp_dir().join(format!("cwx-seg-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("seg-00000001-r0.seg");
        let seg = raw_segment();
        let index = seg.write_to(&path).unwrap();
        assert_eq!(Segment::read_from(&path).unwrap(), seg);
        assert!(
            !path.with_extension("tmp").exists(),
            "temp file renamed away"
        );
        assert_eq!(index, SegmentIndex::read_from(&path).unwrap());
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn index_locates_series_for_positioned_reads() {
        let dir = std::env::temp_dir().join(format!("cwx-seg-idx-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("seg-00000001-r0.seg");
        let seg = raw_segment();
        let index = seg.write_to(&path).unwrap();

        assert_eq!(index.resolution, Resolution::Raw);
        assert_eq!(index.entries.len(), 2);
        let e = &index.entries[0];
        assert_eq!((e.node, e.monitor.as_str()), (3, "cpu.util"));
        assert_eq!(e.count, 100);
        assert_eq!(e.min_time, t(0));
        assert_eq!(e.max_time, t(99 * 5));
        assert_eq!(
            read_series(&path, index.resolution, e).unwrap(),
            seg.series[0].1
        );
        // the empty series round-trips too
        let e = &index.entries[1];
        assert_eq!(e.count, 0);
        assert_eq!(
            read_series(&path, index.resolution, e).unwrap(),
            SeriesData::Raw(vec![])
        );
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn positioned_read_detects_damaged_payload() {
        let dir = std::env::temp_dir().join(format!("cwx-seg-dmg-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("seg-00000001-r0.seg");
        let seg = raw_segment();
        let index = seg.write_to(&path).unwrap();
        let e = &index.entries[0];

        let mut bytes = std::fs::read(&path).unwrap();
        bytes[e.offset as usize + 3] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();

        let err = read_series(&path, index.resolution, e).unwrap_err();
        assert!(matches!(
            err,
            StoreError::CorruptSegment {
                reason: "series payload checksum mismatch",
                ..
            }
        ));
        let _ = std::fs::remove_dir_all(dir);
    }
}
