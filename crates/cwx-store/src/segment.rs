//! Immutable on-disk segment files.
//!
//! A segment holds the samples (or downsampled buckets) of many series
//! at one resolution. Layout, little-endian:
//!
//! ```text
//! 8B  magic "CWXSEG1\n"
//! u8  resolution tag (0 raw, 1 ten-second, 2 five-minute)
//! u32 series count
//! per series:
//!   u32 node | u16 name_len | name bytes | u32 count
//!   raw:  delta-of-delta timestamps, then XOR-varint values
//!   tier: delta-of-delta bucket starts, varint counts, then XOR-varint
//!         min / mean / max / last chains
//! u32 crc32 over everything after the magic
//! ```
//!
//! Segments are written to a temp file and atomically renamed into
//! place, so a crash mid-flush leaves no partial segment behind. The
//! reader verifies magic and CRC before parsing anything.

use std::io::Write;
use std::path::{Path, PathBuf};

use cwx_util::time::SimTime;

use crate::codec::{
    crc32, get_timestamps, get_uvarint, get_values, put_timestamps, put_uvarint, put_values,
};
use crate::{AggBucket, Resolution, Sample, StoreError};

const MAGIC: &[u8; 8] = b"CWXSEG1\n";

/// One series' payload inside a segment.
#[derive(Debug, Clone, PartialEq)]
pub enum SeriesData {
    /// Raw samples, time-ordered.
    Raw(Vec<Sample>),
    /// Downsampled buckets, time-ordered.
    Buckets(Vec<AggBucket>),
}

impl SeriesData {
    /// Entry count.
    pub fn len(&self) -> usize {
        match self {
            SeriesData::Raw(v) => v.len(),
            SeriesData::Buckets(v) => v.len(),
        }
    }

    /// True when no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Largest timestamp (bucket start for tiers).
    pub fn max_time(&self) -> Option<SimTime> {
        match self {
            SeriesData::Raw(v) => v.last().map(|s| s.time),
            SeriesData::Buckets(v) => v.last().map(|b| b.start),
        }
    }
}

/// A fully-decoded segment.
#[derive(Debug, Clone, PartialEq)]
pub struct Segment {
    /// Tier.
    pub resolution: Resolution,
    /// Per-series payloads keyed by `(node, monitor)`.
    pub series: Vec<((u32, String), SeriesData)>,
}

impl Segment {
    /// Encode to bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut body = Vec::new();
        body.push(self.resolution.tag());
        body.extend_from_slice(&(self.series.len() as u32).to_le_bytes());
        for ((node, name), data) in &self.series {
            body.extend_from_slice(&node.to_le_bytes());
            body.extend_from_slice(&(name.len() as u16).to_le_bytes());
            body.extend_from_slice(name.as_bytes());
            body.extend_from_slice(&(data.len() as u32).to_le_bytes());
            match data {
                SeriesData::Raw(samples) => {
                    let times: Vec<u64> = samples.iter().map(|s| s.time.as_nanos()).collect();
                    let values: Vec<f64> = samples.iter().map(|s| s.value).collect();
                    put_timestamps(&mut body, &times);
                    put_values(&mut body, &values);
                }
                SeriesData::Buckets(buckets) => {
                    let starts: Vec<u64> = buckets.iter().map(|b| b.start.as_nanos()).collect();
                    put_timestamps(&mut body, &starts);
                    for b in buckets {
                        put_uvarint(&mut body, b.count);
                    }
                    for field in [
                        |b: &AggBucket| b.min,
                        |b: &AggBucket| b.mean,
                        |b: &AggBucket| b.max,
                        |b: &AggBucket| b.last,
                    ] {
                        let vals: Vec<f64> = buckets.iter().map(field).collect();
                        put_values(&mut body, &vals);
                    }
                }
            }
        }
        let mut out = Vec::with_capacity(MAGIC.len() + body.len() + 4);
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&body);
        out.extend_from_slice(&crc32(&body).to_le_bytes());
        out
    }

    /// Decode and validate bytes produced by [`Segment::encode`].
    pub fn decode(data: &[u8], origin: &Path) -> Result<Segment, StoreError> {
        let corrupt = |reason| StoreError::CorruptSegment {
            path: origin.to_path_buf(),
            reason,
        };
        if data.len() < MAGIC.len() + 4 || &data[..MAGIC.len()] != MAGIC {
            return Err(corrupt("bad magic"));
        }
        let body = &data[MAGIC.len()..data.len() - 4];
        let stored = u32::from_le_bytes(data[data.len() - 4..].try_into().unwrap());
        if crc32(body) != stored {
            return Err(corrupt("checksum mismatch"));
        }
        let mut pos = 0usize;
        let take = |pos: &mut usize, n: usize| -> Result<&[u8], StoreError> {
            let s = body
                .get(*pos..*pos + n)
                .ok_or_else(|| StoreError::CorruptSegment {
                    path: origin.to_path_buf(),
                    reason: "truncated body",
                })?;
            *pos += n;
            Ok(s)
        };
        let resolution = Resolution::from_tag(take(&mut pos, 1)?[0])
            .ok_or_else(|| corrupt("bad resolution tag"))?;
        let n_series = u32::from_le_bytes(take(&mut pos, 4)?.try_into().unwrap()) as usize;
        let mut series = Vec::with_capacity(n_series);
        for _ in 0..n_series {
            let node = u32::from_le_bytes(take(&mut pos, 4)?.try_into().unwrap());
            let name_len = u16::from_le_bytes(take(&mut pos, 2)?.try_into().unwrap()) as usize;
            let name = String::from_utf8(take(&mut pos, name_len)?.to_vec())
                .map_err(|_| corrupt("monitor name not utf-8"))?;
            let count = u32::from_le_bytes(take(&mut pos, 4)?.try_into().unwrap()) as usize;
            let decode_err = |_| StoreError::CorruptSegment {
                path: origin.to_path_buf(),
                reason: "varint stream truncated",
            };
            let data = if resolution == Resolution::Raw {
                let times = get_timestamps(body, &mut pos, count).map_err(decode_err)?;
                let values = get_values(body, &mut pos, count).map_err(decode_err)?;
                SeriesData::Raw(
                    times
                        .into_iter()
                        .zip(values)
                        .map(|(t, value)| Sample {
                            time: SimTime::from_nanos(t),
                            value,
                        })
                        .collect(),
                )
            } else {
                let starts = get_timestamps(body, &mut pos, count).map_err(decode_err)?;
                let mut counts = Vec::with_capacity(count);
                for _ in 0..count {
                    counts.push(get_uvarint(body, &mut pos).map_err(decode_err)?);
                }
                let min = get_values(body, &mut pos, count).map_err(decode_err)?;
                let mean = get_values(body, &mut pos, count).map_err(decode_err)?;
                let max = get_values(body, &mut pos, count).map_err(decode_err)?;
                let last = get_values(body, &mut pos, count).map_err(decode_err)?;
                SeriesData::Buckets(
                    (0..count)
                        .map(|i| AggBucket {
                            start: SimTime::from_nanos(starts[i]),
                            count: counts[i],
                            min: min[i],
                            mean: mean[i],
                            max: max[i],
                            last: last[i],
                        })
                        .collect(),
                )
            };
            series.push(((node, name), data));
        }
        Ok(Segment { resolution, series })
    }

    /// Write atomically to `path` (temp file + rename).
    pub fn write_to(&self, path: &Path) -> Result<(), StoreError> {
        let tmp: PathBuf = path.with_extension("tmp");
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(&self.encode())?;
            f.sync_data().ok();
        }
        std::fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Read and validate the segment at `path`.
    pub fn read_from(path: &Path) -> Result<Segment, StoreError> {
        let data = std::fs::read(path)?;
        Segment::decode(&data, path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cwx_util::time::SimDuration;

    fn t(s: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(s)
    }

    fn raw_segment() -> Segment {
        Segment {
            resolution: Resolution::Raw,
            series: vec![
                (
                    (3, "cpu.util".to_string()),
                    SeriesData::Raw(
                        (0..100)
                            .map(|i| Sample {
                                time: t(i * 5),
                                value: i as f64 * 0.5,
                            })
                            .collect(),
                    ),
                ),
                ((9, "mem.free".to_string()), SeriesData::Raw(vec![])),
            ],
        }
    }

    #[test]
    fn raw_round_trip() {
        let seg = raw_segment();
        let back = Segment::decode(&seg.encode(), Path::new("mem")).unwrap();
        assert_eq!(back, seg);
    }

    #[test]
    fn tier_round_trip() {
        let seg = Segment {
            resolution: Resolution::TenSeconds,
            series: vec![(
                (1, "load.one".to_string()),
                SeriesData::Buckets(
                    (0..50)
                        .map(|i| AggBucket {
                            start: t(i * 10),
                            count: 10,
                            min: i as f64,
                            mean: i as f64 + 0.5,
                            max: i as f64 + 1.0,
                            last: i as f64 + 0.25,
                        })
                        .collect(),
                ),
            )],
        };
        let back = Segment::decode(&seg.encode(), Path::new("mem")).unwrap();
        assert_eq!(back, seg);
    }

    #[test]
    fn fixed_interval_series_compress_well() {
        let seg = raw_segment();
        let bytes = seg.encode();
        // 100 samples, mostly 1-byte dd + small value xors, plus headers
        assert!(
            bytes.len() < 100 * 16,
            "{} bytes should beat raw 16B/sample",
            bytes.len()
        );
    }

    #[test]
    fn flipped_bit_fails_checksum() {
        let mut bytes = raw_segment().encode();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 1;
        let err = Segment::decode(&bytes, Path::new("mem")).unwrap_err();
        assert!(matches!(
            err,
            StoreError::CorruptSegment {
                reason: "checksum mismatch",
                ..
            }
        ));
    }

    #[test]
    fn bad_magic_rejected() {
        let err = Segment::decode(b"NOTASEGMENT!", Path::new("mem")).unwrap_err();
        assert!(matches!(
            err,
            StoreError::CorruptSegment {
                reason: "bad magic",
                ..
            }
        ));
    }

    #[test]
    fn atomic_write_and_read_back() {
        let dir = std::env::temp_dir().join(format!("cwx-seg-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("seg-00000001-r0.seg");
        let seg = raw_segment();
        seg.write_to(&path).unwrap();
        assert_eq!(Segment::read_from(&path).unwrap(), seg);
        assert!(
            !path.with_extension("tmp").exists(),
            "temp file renamed away"
        );
        let _ = std::fs::remove_dir_all(dir);
    }
}
