//! Property tests for the storage codecs and the WAL recovery
//! invariant: whatever bytes survive a crash, recovery never yields a
//! corrupt sample.

use std::path::{Path, PathBuf};

use cwx_store::codec::{get_timestamps, get_values, put_timestamps, put_values};
use cwx_store::segment::{Segment, SeriesData};
use cwx_store::wal::{Wal, WalRecord};
use cwx_store::{AggBucket, Resolution, Sample};
use cwx_util::time::SimTime;
use proptest::prelude::*;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cwx-props-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn samples_from(raw: &[(u64, u64)]) -> Vec<Sample> {
    // timestamps sorted (the engine appends in time order per series);
    // values decoded from raw bits so NaNs and infinities are covered
    let mut times: Vec<u64> = raw.iter().map(|(t, _)| *t).collect();
    times.sort_unstable();
    times
        .into_iter()
        .zip(raw.iter())
        .map(|(t, (_, bits))| Sample {
            time: SimTime::from_nanos(t),
            value: f64::from_bits(*bits),
        })
        .collect()
}

fn eq_bits(a: f64, b: f64) -> bool {
    a.to_bits() == b.to_bits()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn timestamp_codec_round_trips(raw in collection::vec(any::<u64>(), 0..200)) {
        let mut times = raw.clone();
        times.sort_unstable();
        let mut buf = Vec::new();
        put_timestamps(&mut buf, &times);
        let mut pos = 0;
        let back = get_timestamps(&buf, &mut pos, times.len()).unwrap();
        prop_assert_eq!(back, times);
        prop_assert_eq!(pos, buf.len());
    }

    #[test]
    fn value_codec_round_trips_bit_exact(bits in collection::vec(any::<u64>(), 0..200)) {
        let values: Vec<f64> = bits.iter().map(|b| f64::from_bits(*b)).collect();
        let mut buf = Vec::new();
        put_values(&mut buf, &values);
        let mut pos = 0;
        let back = get_values(&buf, &mut pos, values.len()).unwrap();
        prop_assert_eq!(back.len(), values.len());
        for (a, b) in back.iter().zip(&values) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn raw_segment_round_trips(
        batch_a in collection::vec((any::<u64>(), any::<u64>()), 0..120),
        batch_b in collection::vec((any::<u64>(), any::<u64>()), 0..120),
        node in 0u32..64,
    ) {
        let seg = Segment {
            resolution: Resolution::Raw,
            series: vec![
                ((node, "load.one".to_string()), SeriesData::Raw(samples_from(&batch_a))),
                ((node + 1, "mem.used_pct".to_string()), SeriesData::Raw(samples_from(&batch_b))),
            ],
        };
        let back = Segment::decode(&seg.encode(), Path::new("prop")).unwrap();
        prop_assert_eq!(back.resolution, Resolution::Raw);
        prop_assert_eq!(back.series.len(), seg.series.len());
        for ((ka, da), (kb, db)) in back.series.iter().zip(&seg.series) {
            prop_assert_eq!(ka, kb);
            let (SeriesData::Raw(a), SeriesData::Raw(b)) = (da, db) else {
                panic!("raw segment decoded to a non-raw series");
            };
            prop_assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(b) {
                prop_assert_eq!(x.time, y.time);
                prop_assert!(eq_bits(x.value, y.value));
            }
        }
    }

    #[test]
    fn tier_segment_round_trips(starts in collection::vec(any::<u64>(), 0..100)) {
        let mut starts = starts.clone();
        starts.sort_unstable();
        let buckets: Vec<AggBucket> = starts
            .iter()
            .enumerate()
            .map(|(i, s)| AggBucket {
                start: SimTime::from_nanos(*s),
                count: i as u64 + 1,
                min: i as f64 - 1.0,
                mean: i as f64,
                max: i as f64 + 1.5,
                last: i as f64 + 0.5,
            })
            .collect();
        let seg = Segment {
            resolution: Resolution::TenSeconds,
            series: vec![((7, "temp.cpu".to_string()), SeriesData::Buckets(buckets))],
        };
        let back = Segment::decode(&seg.encode(), Path::new("prop")).unwrap();
        prop_assert_eq!(back, seg);
    }

    #[test]
    fn any_single_byte_corruption_is_detected(
        batch in collection::vec((any::<u64>(), any::<u64>()), 1..60),
        flip_seed in any::<u64>(),
        xor in 1u8..=255,
    ) {
        let seg = Segment {
            resolution: Resolution::Raw,
            series: vec![((1, "m".to_string()), SeriesData::Raw(samples_from(&batch)))],
        };
        let mut bytes = seg.encode();
        let idx = (flip_seed % bytes.len() as u64) as usize;
        bytes[idx] ^= xor;
        // every byte is covered by magic check or CRC: no silent corruption
        prop_assert!(Segment::decode(&bytes, Path::new("prop")).is_err());
    }

    #[test]
    fn wal_replay_returns_exactly_what_was_written(
        batches in collection::vec(collection::vec((any::<u64>(), any::<u64>()), 0..20), 1..12),
    ) {
        let dir = tmp_dir("replay");
        let path = dir.join("wal.log");
        let mut written = Vec::new();
        {
            let mut wal = Wal::open(&path).unwrap().wal;
            for (i, b) in batches.iter().enumerate() {
                let samples = samples_from(b);
                wal.append_samples(i as u32, &samples).unwrap();
                written.push((i as u32, samples));
            }
        }
        let rec = Wal::open(&path).unwrap();
        prop_assert_eq!(rec.truncated_bytes, 0);
        prop_assert_eq!(rec.records.len(), written.len());
        for (record, (series, samples)) in rec.records.iter().zip(&written) {
            let WalRecord::Samples { series: s, samples: got } = record else {
                panic!("replay produced an unexpected record kind: {record:?}");
            };
            prop_assert_eq!(s, series);
            prop_assert_eq!(got.len(), samples.len());
            for (x, y) in got.iter().zip(samples) {
                prop_assert_eq!(x.time, y.time);
                prop_assert!(eq_bits(x.value, y.value));
            }
        }
        let _ = std::fs::remove_dir_all(dir);
    }
}

/// The recovery invariant, exhaustively: truncate the WAL at EVERY byte
/// offset and reopen. Recovery must never error, never invent samples,
/// and always return a prefix of what was written with every surviving
/// sample bit-identical.
#[test]
fn wal_truncation_at_every_byte_offset_never_corrupts() {
    let dir = tmp_dir("truncate-sweep");
    let path = dir.join("wal.log");
    let mut written: Vec<(u32, Vec<Sample>)> = Vec::new();
    {
        let mut wal = Wal::open(&path).unwrap().wal;
        wal.add_series(0, 3, "load.one").unwrap();
        wal.add_series(1, 3, "temp.cpu").unwrap();
        for i in 0..12u64 {
            let series = (i % 2) as u32;
            let samples = vec![
                Sample {
                    time: SimTime::from_nanos(i * 1_000_000_007),
                    value: i as f64 * 0.37,
                },
                Sample {
                    time: SimTime::from_nanos(i * 1_000_000_007 + 13),
                    value: f64::NAN,
                },
            ];
            wal.append_samples(series, &samples).unwrap();
            written.push((series, samples));
        }
    }
    let pristine = std::fs::read(&path).unwrap();

    for cut in 0..=pristine.len() {
        let trunc_path = dir.join("cut.log");
        std::fs::write(&trunc_path, &pristine[..cut]).unwrap();
        let rec = Wal::open(&trunc_path).expect("recovery must not error");

        // recovered sample records must be a prefix of the written ones
        let recovered: Vec<&WalRecord> = rec
            .records
            .iter()
            .filter(|r| matches!(r, WalRecord::Samples { .. }))
            .collect();
        assert!(
            recovered.len() <= written.len(),
            "cut at {cut}: more records than written"
        );
        for (record, (series, samples)) in recovered.iter().zip(&written) {
            let WalRecord::Samples {
                series: s,
                samples: got,
            } = record
            else {
                unreachable!()
            };
            assert_eq!(s, series, "cut at {cut}");
            assert_eq!(got.len(), samples.len(), "cut at {cut}");
            for (x, y) in got.iter().zip(samples) {
                assert_eq!(x.time, y.time, "cut at {cut}");
                assert_eq!(x.value.to_bits(), y.value.to_bits(), "cut at {cut}");
            }
        }

        // and the repaired log must append cleanly afterwards
        let mut wal = rec.wal;
        wal.append_samples(
            0,
            &[Sample {
                time: SimTime::from_nanos(1),
                value: 1.0,
            }],
        )
        .expect("append after repair");
    }
    let _ = std::fs::remove_dir_all(dir);
}
