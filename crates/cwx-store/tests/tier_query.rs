//! Tier-selection correctness: a query answered from the 10s/5min/1h
//! tiers must be value-identical (within float-merge tolerance) to the
//! same aggregation computed from raw samples — including at the
//! tier-uncovered suffix boundary, where part of a window comes from
//! stored buckets and the rest from raw segments and memtables.

use std::path::PathBuf;

use cwx_store::disk::{DiskStore, StoreConfig};
use cwx_store::{query, AggFunc, QueryGroup, QuerySpec, Resolution, Store};
use cwx_util::time::{SimDuration, SimTime};
use proptest::prelude::*;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "cwx-tierq-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn t(s: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_secs(s)
}

const SEC: u64 = 1_000_000_000;

/// Relative comparison: Avg/Sum merge means count-weighted on the tier
/// path vs incrementally on the raw path, so demand closeness, not
/// bit-equality. Min/Max/Count must be exact and are checked exactly.
fn close(a: f64, b: f64) -> bool {
    if a == b {
        return true;
    }
    let scale = a.abs().max(b.abs()).max(1.0);
    (a - b).abs() <= 1e-9 * scale
}

/// Window widths exercised: every tier boundary plus multiples.
const WINDOWS_SECS: [u64; 6] = [10, 30, 300, 600, 3_600, 7_200];
/// Tier-serveable functions (percentiles/rate always go raw and are
/// trivially identical, so they prove nothing here).
const AGGS: [AggFunc; 5] = [
    AggFunc::Avg,
    AggFunc::Min,
    AggFunc::Max,
    AggFunc::Sum,
    AggFunc::Count,
];

fn value(seed: u64, i: u64) -> f64 {
    // deterministic, sign-varied, non-integral values
    let x = seed
        .wrapping_mul(6364136223846793005)
        .wrapping_add(i.wrapping_mul(1442695040888963407));
    ((x >> 16) % 20_000) as f64 / 7.0 - 1_000.0
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn tier_answers_match_raw_computation(
        step in 1u64..40,
        compacted in 1usize..400,
        suffix in 0usize..120,
        seed in any::<u64>(),
        window_idx in 0usize..6,
        agg_idx in 0usize..5,
    ) {
        let window_secs = WINDOWS_SECS[window_idx];
        let agg = AGGS[agg_idx];
        let dir = tmp_dir("match");
        let cfg = StoreConfig {
            n_shards: 2,
            nodes_per_group: 2,
            flush_threshold: 97, // off-boundary so memtables stay half full
            compact_threshold: 2,
            cache_capacity_samples: 1 << 16,
        };
        let store = DiskStore::open(&dir, cfg).unwrap();
        // two nodes on different shards, merged into one group
        let nodes = [0u32, 3u32];
        let mut last = 0u64;
        for i in 0..compacted as u64 {
            let ts = i * step + (i % 3); // irregular spacing
            last = ts;
            for (k, &n) in nodes.iter().enumerate() {
                store.append(n, "m", t(ts), value(seed, i * 2 + k as u64));
            }
        }
        store.compact_all().unwrap();
        for j in 0..suffix as u64 {
            let ts = last + 1 + j * step;
            for (k, &n) in nodes.iter().enumerate() {
                store.append(n, "m", t(ts), value(seed ^ 0xdead, j * 2 + k as u64));
            }
        }
        let to = t(last + 1 + suffix as u64 * step);
        let spec = QuerySpec {
            monitor: "m".into(),
            from: t(0),
            to,
            window_nanos: window_secs * SEC,
            agg,
            groups: vec![QueryGroup { key: "g".into(), nodes: nodes.to_vec() }],
            max_scan: 0,
        };
        let expected_tier = query::select_tier(spec.window_nanos, agg);
        prop_assert_ne!(expected_tier, Resolution::Raw, "scenario windows are tier-serveable");

        let tiered = store.query(&spec).unwrap();
        prop_assert_eq!(tiered.stats.tier, expected_tier);
        // reference: the same spec evaluated purely over raw samples
        let reference = query::run_over_ranges(&spec, |n, m, f, to_| store.range(n, m, f, to_)).unwrap();

        let a = &tiered.groups[0].points;
        let b = &reference.groups[0].points;
        prop_assert_eq!(a.len(), b.len(), "window count differs");
        for (x, y) in a.iter().zip(b.iter()) {
            prop_assert_eq!(x.start, y.start);
            prop_assert_eq!(x.count, y.count, "per-window counts must be exact");
            match agg {
                AggFunc::Min | AggFunc::Max | AggFunc::Count => {
                    prop_assert_eq!(x.value.to_bits(), y.value.to_bits(), "{:?}", agg);
                }
                _ => prop_assert!(
                    close(x.value, y.value),
                    "{:?}: tier {} vs raw {}", agg, x.value, y.value
                ),
            }
        }
        // suffix really exercised the boundary when present
        if suffix > 0 {
            prop_assert!(tiered.stats.scanned_raw > 0, "suffix must be raw-scanned");
        }
        prop_assert!(tiered.stats.scanned_buckets > 0, "tiers must serve the body");
        let _ = std::fs::remove_dir_all(dir);
    }
}
