//! Property tests on the discrete-event simulator: time monotonicity,
//! exhaustive execution, deterministic tie-breaking — the invariants the
//! whole reproduction stands on.

use std::cell::RefCell;
use std::rc::Rc;

use cwx_util::sim::{baseline::HeapSim, Sim};
use cwx_util::time::{SimDuration, SimTime};
use proptest::prelude::*;

/// A randomized workload exercising every scheduling shape the two
/// engines share: one-shots (possibly in the past), nested children,
/// and recurring timers with bounded repeat counts.
#[derive(Debug, Clone)]
struct Scenario {
    /// (time, tag, child delays) — each child is scheduled from inside
    /// the parent's handler, so clamping and tie-breaks get exercised.
    oneshots: Vec<(u64, u32, Vec<u64>)>,
    /// (period≥1, repeats) recurring timers.
    recurring: Vec<(u64, u32)>,
    horizon: u64,
}

/// Drive a scenario through either engine, recording `(now, tag)` for
/// every handler invocation. The bodies are textually identical; only
/// the simulator type differs.
macro_rules! drive {
    ($simty:ident, $scn:expr) => {{
        let scn = $scn;
        let log: Rc<RefCell<Vec<(u64, u32)>>> = Rc::new(RefCell::new(Vec::new()));
        let mut sim = $simty::new(());
        for (i, (t, tag, children)) in scn.oneshots.iter().cloned().enumerate() {
            let log = Rc::clone(&log);
            sim.schedule_at(SimTime::from_nanos(t), move |sim| {
                log.borrow_mut().push((sim.now().as_nanos(), tag));
                for (j, d) in children.into_iter().enumerate() {
                    let log = Rc::clone(&log);
                    let ctag = 10_000 + tag * 10 + j as u32;
                    // half the children aim at an *absolute* time that may
                    // be in the past, exercising the clamp path
                    if j % 2 == 0 {
                        sim.schedule_in(SimDuration::from_nanos(d), move |sim| {
                            log.borrow_mut().push((sim.now().as_nanos(), ctag));
                        });
                    } else {
                        sim.schedule_at(SimTime::from_nanos(d), move |sim| {
                            log.borrow_mut().push((sim.now().as_nanos(), ctag));
                        });
                    }
                }
            });
            let _ = i;
        }
        for (k, (period, repeats)) in scn.recurring.iter().cloned().enumerate() {
            let log = Rc::clone(&log);
            let tag = 50_000 + k as u32;
            let mut left = repeats;
            sim.schedule_every(SimDuration::from_nanos(period), move |sim| {
                log.borrow_mut().push((sim.now().as_nanos(), tag));
                left -= 1;
                left > 0
            });
        }
        sim.run_until(SimTime::from_nanos(scn.horizon));
        sim.run();
        let out = log.borrow().clone();
        (out, sim.now().as_nanos(), sim.events_executed())
    }};
}

proptest! {
    /// Whatever the schedule, events run in nondecreasing time order and
    /// all of them run.
    #[test]
    fn time_never_goes_backwards(times in proptest::collection::vec(0u64..1_000_000, 1..200)) {
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Sim::new(());
        for &t in &times {
            let log = Rc::clone(&log);
            sim.schedule_at(SimTime::from_nanos(t), move |sim| {
                log.borrow_mut().push(sim.now().as_nanos());
            });
        }
        sim.run();
        let executed = log.borrow();
        prop_assert_eq!(executed.len(), times.len());
        prop_assert!(executed.windows(2).all(|w| w[0] <= w[1]));
        let mut expect = times.clone();
        expect.sort_unstable();
        prop_assert_eq!(&*executed, &expect);
    }

    /// Events scheduled *during* execution still respect ordering, and
    /// clamping to "now" never reorders the past.
    #[test]
    fn nested_schedules_stay_ordered(
        seeds in proptest::collection::vec((0u64..1000, 0u64..1000), 1..60)
    ) {
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Sim::new(());
        for &(t, child_delay) in &seeds {
            let log = Rc::clone(&log);
            sim.schedule_at(SimTime::from_nanos(t), move |sim| {
                let log2 = Rc::clone(&log);
                log.borrow_mut().push(sim.now());
                sim.schedule_in(SimDuration::from_nanos(child_delay), move |sim| {
                    log2.borrow_mut().push(sim.now());
                });
            });
        }
        sim.run();
        let executed = log.borrow();
        prop_assert_eq!(executed.len(), seeds.len() * 2);
        prop_assert!(executed.windows(2).all(|w| w[0] <= w[1]));
    }

    /// run_until honours the deadline exactly: nothing beyond it runs,
    /// and resuming completes the rest identically to a single run.
    #[test]
    fn run_until_is_a_clean_pause(
        times in proptest::collection::vec(0u64..10_000, 1..100),
        cut in 0u64..10_000,
    ) {
        let build = |log: Rc<RefCell<Vec<u64>>>, times: &[u64]| {
            let mut sim = Sim::new(());
            for &t in times {
                let log = Rc::clone(&log);
                sim.schedule_at(SimTime::from_nanos(t), move |sim| {
                    log.borrow_mut().push(sim.now().as_nanos());
                });
            }
            sim
        };
        // one-shot run
        let full = Rc::new(RefCell::new(Vec::new()));
        let mut sim = build(Rc::clone(&full), &times);
        sim.run();
        // paused run
        let paused = Rc::new(RefCell::new(Vec::new()));
        let mut sim = build(Rc::clone(&paused), &times);
        sim.run_until(SimTime::from_nanos(cut));
        prop_assert!(paused.borrow().iter().all(|&t| t <= cut));
        prop_assert!(sim.now() >= SimTime::from_nanos(cut));
        sim.run();
        prop_assert_eq!(&*full.borrow(), &*paused.borrow());
    }

    /// The timing-wheel engine is event-for-event identical to the old
    /// binary-heap engine: same handler order, same clock at every
    /// firing, same final state. This is the cross-check that licensed
    /// swapping the scheduler under every seeded experiment.
    #[test]
    fn wheel_matches_heap_event_for_event(
        oneshots in proptest::collection::vec(
            (0u64..5_000, 0u32..1000, proptest::collection::vec(0u64..2_000, 0..4)),
            1..60,
        ),
        recurring in proptest::collection::vec((1u64..700, 1u32..12), 0..6),
        horizon in 1_000u64..20_000,
    ) {
        let scn = Scenario { oneshots, recurring, horizon };
        let (heap_log, heap_now, heap_n) = drive!(HeapSim, scn.clone());
        let (wheel_log, wheel_now, wheel_n) = drive!(Sim, scn);
        prop_assert_eq!(heap_log, wheel_log);
        prop_assert_eq!(heap_now, wheel_now);
        prop_assert_eq!(heap_n, wheel_n);
    }
}
