//! Property tests on the discrete-event simulator: time monotonicity,
//! exhaustive execution, deterministic tie-breaking — the invariants the
//! whole reproduction stands on.

use std::cell::RefCell;
use std::rc::Rc;

use cwx_util::sim::Sim;
use cwx_util::time::{SimDuration, SimTime};
use proptest::prelude::*;

proptest! {
    /// Whatever the schedule, events run in nondecreasing time order and
    /// all of them run.
    #[test]
    fn time_never_goes_backwards(times in proptest::collection::vec(0u64..1_000_000, 1..200)) {
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Sim::new(());
        for &t in &times {
            let log = Rc::clone(&log);
            sim.schedule_at(SimTime::from_nanos(t), move |sim| {
                log.borrow_mut().push(sim.now().as_nanos());
            });
        }
        sim.run();
        let executed = log.borrow();
        prop_assert_eq!(executed.len(), times.len());
        prop_assert!(executed.windows(2).all(|w| w[0] <= w[1]));
        let mut expect = times.clone();
        expect.sort_unstable();
        prop_assert_eq!(&*executed, &expect);
    }

    /// Events scheduled *during* execution still respect ordering, and
    /// clamping to "now" never reorders the past.
    #[test]
    fn nested_schedules_stay_ordered(
        seeds in proptest::collection::vec((0u64..1000, 0u64..1000), 1..60)
    ) {
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Sim::new(());
        for &(t, child_delay) in &seeds {
            let log = Rc::clone(&log);
            sim.schedule_at(SimTime::from_nanos(t), move |sim| {
                let log2 = Rc::clone(&log);
                log.borrow_mut().push(sim.now());
                sim.schedule_in(SimDuration::from_nanos(child_delay), move |sim| {
                    log2.borrow_mut().push(sim.now());
                });
            });
        }
        sim.run();
        let executed = log.borrow();
        prop_assert_eq!(executed.len(), seeds.len() * 2);
        prop_assert!(executed.windows(2).all(|w| w[0] <= w[1]));
    }

    /// run_until honours the deadline exactly: nothing beyond it runs,
    /// and resuming completes the rest identically to a single run.
    #[test]
    fn run_until_is_a_clean_pause(
        times in proptest::collection::vec(0u64..10_000, 1..100),
        cut in 0u64..10_000,
    ) {
        let build = |log: Rc<RefCell<Vec<u64>>>, times: &[u64]| {
            let mut sim = Sim::new(());
            for &t in times {
                let log = Rc::clone(&log);
                sim.schedule_at(SimTime::from_nanos(t), move |sim| {
                    log.borrow_mut().push(sim.now().as_nanos());
                });
            }
            sim
        };
        // one-shot run
        let full = Rc::new(RefCell::new(Vec::new()));
        let mut sim = build(Rc::clone(&full), &times);
        sim.run();
        // paused run
        let paused = Rc::new(RefCell::new(Vec::new()));
        let mut sim = build(Rc::clone(&paused), &times);
        sim.run_until(SimTime::from_nanos(cut));
        prop_assert!(paused.borrow().iter().all(|&t| t <= cut));
        prop_assert!(sim.now() >= SimTime::from_nanos(cut));
        sim.run();
        prop_assert_eq!(&*full.borrow(), &*paused.borrow());
    }
}
