//! Shared infrastructure for the ClusterWorX reproduction.
//!
//! This crate contains the substrate pieces every other crate leans on:
//!
//! * [`time`] — simulated time ([`time::SimTime`]) and duration arithmetic.
//! * [`sim`] — a deterministic discrete-event simulator used to run
//!   cluster-scale experiments (boot storms, cloning campaigns, monitoring
//!   traffic) without real hardware.
//! * [`ring`] — byte ring buffers with overwrite semantics, modelling the
//!   ICE Box 16 KiB serial capture buffers.
//! * [`compress`] — an LZSS text compressor used by the monitoring
//!   transmission stage (paper §5.3.3: "we use data compression
//!   techniques, which are known to be very effective on text input").
//! * [`stats`] — summary statistics for the benchmark harness.
//! * [`rng`] — seeded RNG construction plus the distribution samplers the
//!   workload generators need (uniform, exponential, normal).
//! * [`hash`] — the canonical FNV-1a used by every determinism
//!   fingerprint (result.json, audit trails, snapshot sections).
//! * [`snapshot`] — the `cwx-snapshot-v1` self-checking container for
//!   captured world state (magic, version, CRC-32, named sections).

#![warn(missing_docs)]

pub mod compress;
pub mod hash;
pub mod ring;
pub mod rng;
pub mod sim;
pub mod snapshot;
pub mod stats;
pub mod time;

pub use sim::Sim;
pub use time::{SimDuration, SimTime};
