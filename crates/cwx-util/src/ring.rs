//! Fixed-capacity ring buffers with overwrite semantics.
//!
//! The ICE Box provides "logging and buffering (up to 16k) of the output
//! on each serial device" (paper §3.3): when a node floods its console the
//! chassis keeps only the most recent 16 KiB, which is what makes
//! post-mortem analysis of a crashed node possible. [`ByteRing`] models
//! exactly that: a bounded byte buffer where writes never fail and old
//! data is silently discarded.

/// A bounded byte buffer that discards the oldest bytes on overflow.
#[derive(Clone, Debug)]
pub struct ByteRing {
    buf: Vec<u8>,
    capacity: usize,
    /// index of the logical start within `buf`
    head: usize,
    len: usize,
    /// total bytes ever written, including overwritten ones
    total_written: u64,
}

impl ByteRing {
    /// Create a ring holding at most `capacity` bytes.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ByteRing capacity must be nonzero");
        ByteRing {
            buf: vec![0; capacity],
            capacity,
            head: 0,
            len: 0,
            total_written: 0,
        }
    }

    /// Maximum number of bytes retained.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of bytes currently retained.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total bytes ever written, including those already overwritten.
    pub fn total_written(&self) -> u64 {
        self.total_written
    }

    /// Number of bytes lost to overwriting so far.
    pub fn overwritten(&self) -> u64 {
        self.total_written - self.len as u64
    }

    /// Append `data`, overwriting the oldest bytes if needed.
    pub fn write(&mut self, data: &[u8]) {
        self.total_written += data.len() as u64;
        // Only the last `capacity` bytes of data can survive.
        let data = if data.len() > self.capacity {
            &data[data.len() - self.capacity..]
        } else {
            data
        };
        for &b in data {
            let idx = (self.head + self.len) % self.capacity;
            self.buf[idx] = b;
            if self.len < self.capacity {
                self.len += 1;
            } else {
                self.head = (self.head + 1) % self.capacity;
            }
        }
    }

    /// Copy of the retained bytes in write order (oldest first).
    pub fn snapshot(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.len);
        for i in 0..self.len {
            out.push(self.buf[(self.head + i) % self.capacity]);
        }
        out
    }

    /// The retained bytes interpreted as (lossy) UTF-8, for console dumps.
    pub fn snapshot_string(&self) -> String {
        String::from_utf8_lossy(&self.snapshot()).into_owned()
    }

    /// The most recent `n` bytes (fewer if less is retained).
    pub fn tail(&self, n: usize) -> Vec<u8> {
        let take = n.min(self.len);
        let start = self.len - take;
        let mut out = Vec::with_capacity(take);
        for i in start..self.len {
            out.push(self.buf[(self.head + i) % self.capacity]);
        }
        out
    }

    /// Discard all retained bytes (the write counter is preserved).
    pub fn clear(&mut self) {
        self.head = 0;
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn write_within_capacity_keeps_everything() {
        let mut r = ByteRing::new(16);
        r.write(b"hello ");
        r.write(b"world");
        assert_eq!(r.snapshot(), b"hello world");
        assert_eq!(r.len(), 11);
        assert_eq!(r.overwritten(), 0);
    }

    #[test]
    fn overflow_discards_oldest() {
        let mut r = ByteRing::new(8);
        r.write(b"abcdefgh");
        r.write(b"XY");
        assert_eq!(r.snapshot(), b"cdefghXY");
        assert_eq!(r.overwritten(), 2);
    }

    #[test]
    fn single_write_larger_than_capacity_keeps_suffix() {
        let mut r = ByteRing::new(4);
        r.write(b"0123456789");
        assert_eq!(r.snapshot(), b"6789");
        assert_eq!(r.total_written(), 10);
        assert_eq!(r.overwritten(), 6);
    }

    #[test]
    fn tail_returns_most_recent() {
        let mut r = ByteRing::new(8);
        r.write(b"abcdefgh");
        r.write(b"ij");
        assert_eq!(r.tail(3), b"hij");
        assert_eq!(r.tail(100), b"cdefghij");
    }

    #[test]
    fn clear_resets_contents_not_counter() {
        let mut r = ByteRing::new(8);
        r.write(b"abc");
        r.clear();
        assert!(r.is_empty());
        assert_eq!(r.total_written(), 3);
        r.write(b"xy");
        assert_eq!(r.snapshot(), b"xy");
    }

    #[test]
    #[should_panic]
    fn zero_capacity_panics() {
        ByteRing::new(0);
    }

    proptest! {
        /// The ring always equals the suffix of the concatenated writes.
        #[test]
        fn ring_is_suffix_of_stream(
            cap in 1usize..64,
            writes in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..40), 0..20)
        ) {
            let mut r = ByteRing::new(cap);
            let mut stream = Vec::new();
            for w in &writes {
                r.write(w);
                stream.extend_from_slice(w);
            }
            let keep = stream.len().min(cap);
            let expect = &stream[stream.len() - keep..];
            prop_assert_eq!(r.snapshot(), expect);
            prop_assert_eq!(r.total_written(), stream.len() as u64);
        }
    }
}
