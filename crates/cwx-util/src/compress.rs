//! LZSS compression for monitored text data.
//!
//! Paper §5.3.3 (Transmission): monitored data is kept in human-readable
//! /proc text form for platform independence, and "when transmitting the
//! data, we use data compression techniques, which are known to be very
//! effective on text input". The paper does not name the algorithm; we
//! implement LZSS — a dictionary coder of the era that is simple, fast and
//! very effective on the highly repetitive /proc snapshots the agents
//! ship, which preserves the claim being reproduced (substantial byte
//! reduction on text) without pulling in external compression crates.
//!
//! Format (little-endian):
//! * 4-byte magic `CWZ1`
//! * u32 decompressed length
//! * token stream: a flag byte covers the next 8 tokens, LSB first;
//!   flag bit 1 = literal byte, flag bit 0 = match encoded in two bytes as
//!   a 12-bit back-offset (1..=4096) and 4-bit length-3 (3..=18).

/// Errors produced when decoding a compressed buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecompressError {
    /// Input too short to contain the header.
    Truncated,
    /// The 4-byte magic did not match.
    BadMagic,
    /// A match referenced data before the start of the output.
    BadOffset {
        /// Position in the output where the bad reference occurred.
        at: usize,
    },
    /// The token stream ended before the declared length was produced.
    UnexpectedEnd,
    /// More data was produced than the header declared.
    LengthMismatch {
        /// Length declared in the header.
        declared: usize,
        /// Length actually produced.
        produced: usize,
    },
}

impl std::fmt::Display for DecompressError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecompressError::Truncated => write!(f, "input truncated before header"),
            DecompressError::BadMagic => write!(f, "bad magic"),
            DecompressError::BadOffset { at } => write!(f, "back-reference out of range at {at}"),
            DecompressError::UnexpectedEnd => write!(f, "token stream ended early"),
            DecompressError::LengthMismatch { declared, produced } => {
                write!(f, "declared {declared} bytes but produced {produced}")
            }
        }
    }
}

impl std::error::Error for DecompressError {}

const MAGIC: &[u8; 4] = b"CWZ1";
const WINDOW: usize = 4096;
const MIN_MATCH: usize = 3;
const MAX_MATCH: usize = 18;
/// Cap on hash-chain probes per position; bounds worst-case encode time.
const MAX_CHAIN: usize = 64;

/// Compress `input` with LZSS.
///
/// The output always round-trips through [`decompress`]. For inputs with
/// no redundancy the output can be up to ~12.5% larger than the input
/// (one flag bit per literal) plus the 8-byte header.
pub fn compress(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() / 2 + 16);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&(input.len() as u32).to_le_bytes());

    // Hash chains over 3-byte prefixes: head[h] is the most recent position
    // with hash h, prev[i & mask] links to the previous one.
    let mut head = vec![usize::MAX; 1 << 13];
    let mut prev = vec![usize::MAX; WINDOW];

    #[inline]
    fn hash3(b: &[u8]) -> usize {
        // multiplicative hash of 3 bytes into 13 bits
        let v = (b[0] as u32) | ((b[1] as u32) << 8) | ((b[2] as u32) << 16);
        ((v.wrapping_mul(0x9E37_79B1)) >> 19) as usize
    }

    let insert = |head: &mut [usize], prev: &mut [usize], input: &[u8], pos: usize| {
        if pos + MIN_MATCH <= input.len() {
            let h = hash3(&input[pos..]);
            prev[pos % WINDOW] = head[h];
            head[h] = pos;
        }
    };

    let mut i = 0;
    let mut flag_pos = out.len();
    out.push(0);
    let mut flag_bit = 0u8;

    let push_token = |out: &mut Vec<u8>,
                      flag_pos: &mut usize,
                      flag_bit: &mut u8,
                      emit: &[u8],
                      is_literal: bool| {
        if *flag_bit == 8 {
            *flag_pos = out.len();
            out.push(0);
            *flag_bit = 0;
        }
        if is_literal {
            out[*flag_pos] |= 1 << *flag_bit;
        }
        *flag_bit += 1;
        out.extend_from_slice(emit);
    };

    while i < input.len() {
        // find the longest match within the window via the hash chain
        let mut best_len = 0usize;
        let mut best_off = 0usize;
        if i + MIN_MATCH <= input.len() {
            let h = hash3(&input[i..]);
            let mut cand = head[h];
            let mut probes = 0;
            let max_len = MAX_MATCH.min(input.len() - i);
            while cand != usize::MAX && probes < MAX_CHAIN {
                if i - cand > WINDOW {
                    break;
                }
                // count match length
                let mut l = 0;
                while l < max_len && input[cand + l] == input[i + l] {
                    l += 1;
                }
                if l > best_len {
                    best_len = l;
                    best_off = i - cand;
                    if l == max_len {
                        break;
                    }
                }
                let next = prev[cand % WINDOW];
                // chains can alias across window generations; only follow
                // strictly older positions
                if next >= cand {
                    break;
                }
                cand = next;
                probes += 1;
            }
        }

        if best_len >= MIN_MATCH {
            debug_assert!((1..=WINDOW).contains(&best_off));
            let off = best_off - 1; // store 0-based, 12 bits
            let len_code = (best_len - MIN_MATCH) as u8; // 4 bits
            let b0 = (off & 0xFF) as u8;
            let b1 = (((off >> 8) as u8) << 4) | len_code;
            push_token(&mut out, &mut flag_pos, &mut flag_bit, &[b0, b1], false);
            for k in 0..best_len {
                insert(&mut head, &mut prev, input, i + k);
            }
            i += best_len;
        } else {
            push_token(&mut out, &mut flag_pos, &mut flag_bit, &[input[i]], true);
            insert(&mut head, &mut prev, input, i);
            i += 1;
        }
    }
    out
}

/// Decompress a buffer produced by [`compress`].
pub fn decompress(data: &[u8]) -> Result<Vec<u8>, DecompressError> {
    if data.len() < 8 {
        return Err(DecompressError::Truncated);
    }
    if &data[0..4] != MAGIC {
        return Err(DecompressError::BadMagic);
    }
    let declared = u32::from_le_bytes(data[4..8].try_into().unwrap()) as usize;
    let mut out = Vec::with_capacity(declared);
    let mut i = 8;
    'outer: while out.len() < declared {
        if i >= data.len() {
            return Err(DecompressError::UnexpectedEnd);
        }
        let flags = data[i];
        i += 1;
        for bit in 0..8 {
            if out.len() == declared {
                break 'outer;
            }
            if flags & (1 << bit) != 0 {
                // literal
                let &b = data.get(i).ok_or(DecompressError::UnexpectedEnd)?;
                out.push(b);
                i += 1;
            } else {
                let b0 = *data.get(i).ok_or(DecompressError::UnexpectedEnd)? as usize;
                let b1 = *data.get(i + 1).ok_or(DecompressError::UnexpectedEnd)? as usize;
                i += 2;
                let off = (b0 | ((b1 >> 4) << 8)) + 1;
                let len = (b1 & 0x0F) + MIN_MATCH;
                if off > out.len() {
                    return Err(DecompressError::BadOffset { at: out.len() });
                }
                let start = out.len() - off;
                for k in 0..len {
                    let b = out[start + k];
                    out.push(b);
                }
            }
        }
    }
    if out.len() != declared {
        return Err(DecompressError::LengthMismatch {
            declared,
            produced: out.len(),
        });
    }
    Ok(out)
}

/// Compression ratio (compressed / original); 1.0 means no reduction.
pub fn ratio(original: usize, compressed: usize) -> f64 {
    if original == 0 {
        return 1.0;
    }
    compressed as f64 / original as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_round_trips() {
        let c = compress(b"");
        assert_eq!(decompress(&c).unwrap(), b"");
    }

    #[test]
    fn short_literal_round_trips() {
        let c = compress(b"ab");
        assert_eq!(decompress(&c).unwrap(), b"ab");
    }

    #[test]
    fn repetitive_text_compresses_well() {
        let text = "MemTotal:  1048576 kB\nMemFree:   524288 kB\n".repeat(100);
        let c = compress(text.as_bytes());
        assert_eq!(decompress(&c).unwrap(), text.as_bytes());
        // highly repetitive: expect at least 5x reduction
        assert!(
            c.len() * 5 < text.len(),
            "only got {} -> {}",
            text.len(),
            c.len()
        );
    }

    #[test]
    fn overlapping_match_rle_style() {
        // 'aaaa...' forces overlapping back-references (offset 1)
        let text = vec![b'a'; 1000];
        let c = compress(&text);
        assert_eq!(decompress(&c).unwrap(), text);
        assert!(
            c.len() < 160,
            "RLE-like input should collapse, got {}",
            c.len()
        );
    }

    #[test]
    fn incompressible_data_round_trips() {
        // pseudo-random bytes: no matches, pure literal stream
        let mut x: u32 = 0x1234_5678;
        let data: Vec<u8> = (0..4096)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 17;
                x ^= x << 5;
                (x & 0xFF) as u8
            })
            .collect();
        let c = compress(&data);
        assert_eq!(decompress(&c).unwrap(), data);
        // bounded expansion: 8-byte header + 1 flag byte per 8 literals
        assert!(c.len() <= 8 + data.len() + data.len() / 8 + 1);
    }

    #[test]
    fn matches_across_large_distance_within_window() {
        let mut data = Vec::new();
        data.extend_from_slice(b"the quick brown fox jumps over the lazy dog");
        data.extend(std::iter::repeat_n(b'.', 3000));
        data.extend_from_slice(b"the quick brown fox jumps over the lazy dog");
        let c = compress(&data);
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn rejects_bad_magic() {
        assert_eq!(
            decompress(b"NOPE\x00\x00\x00\x00"),
            Err(DecompressError::BadMagic)
        );
    }

    #[test]
    fn rejects_truncated_header() {
        assert_eq!(decompress(b"CWZ"), Err(DecompressError::Truncated));
    }

    #[test]
    fn rejects_truncated_stream() {
        let mut c = compress(b"hello world hello world hello world");
        c.truncate(c.len() - 3);
        assert!(matches!(
            decompress(&c),
            Err(DecompressError::UnexpectedEnd)
        ));
    }

    #[test]
    fn rejects_bad_offset() {
        // header says 4 bytes, first token is a match with offset beyond output
        let mut c = Vec::new();
        c.extend_from_slice(b"CWZ1");
        c.extend_from_slice(&4u32.to_le_bytes());
        c.push(0b0000_0000); // first token: match
        c.push(0xFF); // offset low
        c.push(0xF0); // offset high nibble, len code 0
        assert!(matches!(
            decompress(&c),
            Err(DecompressError::BadOffset { .. })
        ));
    }

    #[test]
    fn ratio_helper() {
        assert_eq!(ratio(100, 25), 0.25);
        assert_eq!(ratio(0, 10), 1.0);
    }

    proptest! {
        #[test]
        fn round_trip_arbitrary(data in proptest::collection::vec(any::<u8>(), 0..5000)) {
            let c = compress(&data);
            prop_assert_eq!(decompress(&c).unwrap(), data);
        }

        #[test]
        fn round_trip_texty(s in "[a-f ]{0,2000}") {
            // low-entropy alphabet: exercises the match path heavily
            let c = compress(s.as_bytes());
            prop_assert_eq!(decompress(&c).unwrap(), s.as_bytes());
        }
    }
}
