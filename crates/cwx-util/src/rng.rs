//! Seeded randomness and the distribution samplers used by workload
//! generators and failure-injection models.
//!
//! Everything random in the simulation flows from a single seeded
//! [`rand::rngs::StdRng`], so every experiment is reproducible from its
//! seed. The exponential/normal samplers are implemented here by inverse
//! transform / Box–Muller rather than pulling in `rand_distr`, keeping the
//! dependency set to the allowed list.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Construct the deterministic RNG for a given experiment seed.
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Fingerprint an RNG's *stream position* without perturbing it: clone
/// the generator, draw `draws` words from the clone, and FNV-fold them.
///
/// `StdRng` exposes no state-extraction API, but it is `Clone` and
/// deterministic, so the upcoming output stream identifies the state
/// for equality purposes. Two generators with equal probes produce
/// identical draws for at least the probed horizon — snapshots use
/// this to verify a replayed world's RNGs landed in the same place.
pub fn stream_probe(rng: &StdRng, draws: usize) -> u64 {
    let mut clone = rng.clone();
    let mut h = crate::hash::FNV_OFFSET;
    for _ in 0..draws {
        h = crate::hash::fnv1a_fold_u64(h, clone.random::<u64>());
    }
    h
}

/// Sample an exponential variate with the given rate (events per unit).
///
/// Used for failure inter-arrival times and job arrival processes.
/// Returns 0 for non-positive rates.
pub fn exponential(rng: &mut impl Rng, rate: f64) -> f64 {
    if rate <= 0.0 {
        return 0.0;
    }
    // inverse transform; guard the log argument away from 0
    let u: f64 = rng.random::<f64>().max(1e-12);
    -u.ln() / rate
}

/// Sample a normal variate via Box–Muller.
pub fn normal(rng: &mut impl Rng, mean: f64, std_dev: f64) -> f64 {
    let u1: f64 = rng.random::<f64>().max(1e-12);
    let u2: f64 = rng.random::<f64>();
    let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    mean + std_dev * z
}

/// Sample a normal variate truncated to `[lo, hi]` by clamping.
pub fn normal_clamped(rng: &mut impl Rng, mean: f64, std_dev: f64, lo: f64, hi: f64) -> f64 {
    normal(rng, mean, std_dev).clamp(lo, hi)
}

/// Bernoulli trial with probability `p` (clamped to `[0,1]`).
pub fn chance(rng: &mut impl Rng, p: f64) -> bool {
    if p <= 0.0 {
        false
    } else if p >= 1.0 {
        true
    } else {
        rng.random::<f64>() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = rng(42);
        let mut b = rng(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = rng(1);
        let mut b = rng(2);
        let va: Vec<u64> = (0..8).map(|_| a.random()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.random()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn exponential_mean_close() {
        let mut r = rng(7);
        let rate = 0.5;
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| exponential(&mut r, rate)).sum();
        let mean = sum / n as f64;
        // expected mean = 1/rate = 2.0; generous tolerance
        assert!((mean - 2.0).abs() < 0.1, "mean={mean}");
    }

    #[test]
    fn exponential_nonpositive_rate_is_zero() {
        let mut r = rng(7);
        assert_eq!(exponential(&mut r, 0.0), 0.0);
        assert_eq!(exponential(&mut r, -3.0), 0.0);
    }

    #[test]
    fn normal_moments_close() {
        let mut r = rng(11);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut r, 10.0, 3.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean={mean}");
        assert!((var.sqrt() - 3.0).abs() < 0.1, "sd={}", var.sqrt());
    }

    #[test]
    fn normal_clamped_respects_bounds() {
        let mut r = rng(3);
        for _ in 0..1000 {
            let v = normal_clamped(&mut r, 0.0, 100.0, -1.0, 1.0);
            assert!((-1.0..=1.0).contains(&v));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = rng(5);
        assert!(!chance(&mut r, 0.0));
        assert!(chance(&mut r, 1.0));
        assert!(!chance(&mut r, -0.5));
        assert!(chance(&mut r, 1.5));
    }

    #[test]
    fn chance_frequency_close() {
        let mut r = rng(9);
        let hits = (0..10_000).filter(|_| chance(&mut r, 0.3)).count();
        assert!((2700..3300).contains(&hits), "hits={hits}");
    }
}
