//! Simulated time.
//!
//! All cluster-scale experiments in this reproduction run on a discrete
//! event simulator, so time is a logical quantity: nanoseconds since the
//! start of the simulation. [`SimTime`] is an instant, [`SimDuration`] a
//! span. Both are thin wrappers over `u64` nanoseconds so they are `Copy`,
//! totally ordered and cheap to pass around.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// An instant in simulated time, measured in nanoseconds from simulation
/// start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinitely far away"
    /// sentinel for deadlines.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Raw nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start, as a float (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The duration elapsed since `earlier`.
    ///
    /// Saturates to zero if `earlier` is in the future, which keeps
    /// measurement code robust against reordered observations.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Construct from fractional seconds. Negative inputs clamp to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        if s <= 0.0 || !s.is_finite() {
            return SimDuration(0);
        }
        SimDuration((s * 1e9).round() as u64)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole microseconds (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Whole milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// True if the duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Multiply by a float factor (clamped at zero), used by jitter models.
    pub fn mul_f64(self, k: f64) -> Self {
        SimDuration::from_secs_f64(self.as_secs_f64() * k)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns < 1_000 {
            write!(f, "{ns}ns")
        } else if ns < 1_000_000 {
            write!(f, "{:.1}us", ns as f64 / 1e3)
        } else if ns < 1_000_000_000 {
            write!(f, "{:.1}ms", ns as f64 / 1e6)
        } else if ns < 60 * 1_000_000_000 {
            write!(f, "{:.2}s", ns as f64 / 1e9)
        } else {
            let secs = ns as f64 / 1e9;
            write!(f, "{}m{:04.1}s", (secs / 60.0) as u64, secs % 60.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_round_trip() {
        assert_eq!(SimDuration::from_secs(2).as_nanos(), 2_000_000_000);
        assert_eq!(SimDuration::from_millis(3).as_micros(), 3_000);
        assert_eq!(SimDuration::from_micros(7).as_nanos(), 7_000);
        assert_eq!(SimDuration::from_secs_f64(0.5).as_millis(), 500);
    }

    #[test]
    fn negative_and_nan_seconds_clamp_to_zero() {
        assert!(SimDuration::from_secs_f64(-1.0).is_zero());
        assert!(SimDuration::from_secs_f64(f64::NAN).is_zero());
        assert!(SimDuration::from_secs_f64(f64::INFINITY).is_zero());
    }

    #[test]
    fn time_arithmetic() {
        let t0 = SimTime::from_nanos(100);
        let t1 = t0 + SimDuration::from_nanos(50);
        assert_eq!(t1.as_nanos(), 150);
        assert_eq!((t1 - t0).as_nanos(), 50);
        // saturating "since" when observer order is inverted
        assert_eq!((t0 - t1).as_nanos(), 0);
    }

    #[test]
    fn duration_arithmetic_saturates() {
        let a = SimDuration::from_nanos(u64::MAX);
        assert_eq!((a + a).as_nanos(), u64::MAX);
        assert_eq!(
            (SimDuration::from_nanos(1) - SimDuration::from_nanos(2)).as_nanos(),
            0
        );
        assert_eq!((a * 3).as_nanos(), u64::MAX);
    }

    #[test]
    fn display_picks_sane_units() {
        assert_eq!(SimDuration::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimDuration::from_micros(12).to_string(), "12.0us");
        assert_eq!(SimDuration::from_millis(12).to_string(), "12.0ms");
        assert_eq!(SimDuration::from_secs(12).to_string(), "12.00s");
        assert_eq!(SimDuration::from_secs(720).to_string(), "12m00.0s");
    }

    #[test]
    fn mul_f64_scales() {
        let d = SimDuration::from_secs(10).mul_f64(0.25);
        assert_eq!(d.as_millis(), 2_500);
    }
}
