//! A deterministic discrete-event simulator.
//!
//! The reproduction runs every cluster-scale experiment (boot storms,
//! cloning campaigns, monitoring traffic, failure-injection) on this
//! engine, so its dispatch rate bounds how large an experiment the
//! harness can sweep. The design is a hierarchical timing wheel over a
//! slab of event entries:
//!
//! * events live in a slab (`Vec` + free list) and are addressed by a
//!   generation-checked [`EventId`], giving O(1) schedule and O(1)
//!   [`Sim::cancel`] with no ABA hazards,
//! * the pending set is a hierarchical timing wheel — `LEVELS` levels
//!   of `SLOTS` slots, each level covering 64× the span of the one
//!   below, together spanning the full `u64` nanosecond clock — so
//!   scheduling is O(1) and dispatch is amortized O(1) (an event
//!   cascades down at most `LEVELS` times over its whole life),
//! * recurring timers ([`Sim::schedule_every`]) keep one slab entry and
//!   one closure allocation for their entire life instead of re-boxing
//!   a fresh closure every period,
//! * ties at the same timestamp are broken by a global insertion
//!   sequence number, which makes runs bit-for-bit reproducible for a
//!   fixed seed — the exact `(time, seq)` order the original
//!   binary-heap engine produced (kept as [`baseline::HeapSim`] and
//!   cross-checked against this one in `tests/sim_properties.rs`).
//!
//! The world state `W` is owned by the simulator and handed to each event
//! by `&mut`, so event handlers can freely mutate any component without
//! interior mutability.

use std::collections::VecDeque;
use std::mem;

use crate::time::{SimDuration, SimTime};

/// A one-shot event handler: runs at its scheduled time with exclusive
/// access to the whole simulation.
type OnceFn<W> = Box<dyn FnOnce(&mut Sim<W>)>;
/// A recurring event handler: re-fires every period until it returns
/// `false` (or is cancelled).
type EveryFn<W> = Box<dyn FnMut(&mut Sim<W>) -> bool>;

/// Handle to a scheduled event, returned by the `schedule_*` methods.
///
/// Stays valid until the event fires (its last firing, for recurring
/// events) or is cancelled; after that, [`Sim::cancel`] on the stale id
/// is a safe no-op even if the slab slot has been reused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId {
    idx: u32,
    gen: u32,
}

enum Payload<W> {
    /// One-shot closure.
    Once(OnceFn<W>),
    /// Recurring closure; the box is reused across firings.
    Every { period: SimDuration, f: EveryFn<W> },
    /// Free slot, cancelled entry, or closure taken out while firing.
    Empty,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Free,
    Pending,
    /// A recurring event whose closure is currently executing.
    Running,
    /// Cancelled but still referenced by a wheel slot; reclaimed lazily.
    Cancelled,
}

/// The slab entry: just lifecycle state and the closure. Time and seq
/// travel with the [`Ticket`] instead, so cascading an event between
/// wheel levels never touches the slab — at millions of pending events
/// that's the difference between streaming slot lists through the cache
/// and taking a random-access miss per event per level.
struct Entry<W> {
    gen: u32,
    state: State,
    payload: Payload<W>,
}

/// What wheel slots hold: everything ordering needs, inline.
#[derive(Debug, Clone, Copy)]
struct Ticket {
    /// Absolute firing time, nanoseconds.
    time: u64,
    /// Global insertion order; the tie-break at equal times.
    seq: u64,
    /// Slab index of the entry.
    idx: u32,
}

/// log2 of the wheel fan-out: 64 slots per level, so each level's
/// occupancy bitmap is a single word. (A 256-slot variant was measured
/// and lost: the shallower cascade didn't pay for the larger slot
/// footprint on the tick-clustered workloads the cluster produces.)
const SLOT_BITS: u32 = 6;
/// Slots per wheel level.
const SLOTS: usize = 1 << SLOT_BITS;
/// Words of occupancy bitmap per level.
const OCC_WORDS: usize = SLOTS / 64;
/// Wheel levels. 11 × 6 = 66 bits ≥ the full `u64` nanosecond clock,
/// so arbitrarily far-future events need no overflow list.
const LEVELS: usize = 11;

/// A discrete-event simulation over a world `W`.
///
/// ```
/// use cwx_util::sim::Sim;
/// use cwx_util::time::SimDuration;
///
/// let mut sim = Sim::new(0u32);
/// sim.schedule_in(SimDuration::from_secs(1), |sim| {
///     *sim.world_mut() += 1;
///     sim.schedule_in(SimDuration::from_secs(1), |sim| *sim.world_mut() += 10);
/// });
/// sim.run();
/// assert_eq!(*sim.world(), 11);
/// assert_eq!(sim.now().as_secs_f64(), 2.0);
/// ```
pub struct Sim<W> {
    world: W,
    now: SimTime,
    seq: u64,
    executed: u64,
    /// Live (non-cancelled) scheduled events.
    pending: usize,
    /// The wheel cursor: never ahead of the earliest pending event, and
    /// never behind the last dispatched one.
    wheel_now: u64,
    /// `LEVELS × SLOTS` slot lists of tickets.
    slots: Vec<Vec<Ticket>>,
    /// One occupancy bitmap per level (bit set ⇔ slot list non-empty).
    occ: [[u64; OCC_WORDS]; LEVELS],
    /// Events staged for dispatch: one drained level-0 slot, seq-sorted.
    /// All share the timestamp `due_time`.
    due: VecDeque<u32>,
    due_time: u64,
    entries: Vec<Entry<W>>,
    free: Vec<u32>,
    /// Reused drain buffer (keeps the hot path allocation-free).
    scratch: Vec<Ticket>,
}

impl<W> Sim<W> {
    /// Create a simulator at time zero owning `world`.
    pub fn new(world: W) -> Self {
        Sim {
            world,
            now: SimTime::ZERO,
            seq: 0,
            executed: 0,
            pending: 0,
            wheel_now: 0,
            slots: (0..LEVELS * SLOTS).map(|_| Vec::new()).collect(),
            occ: [[0; OCC_WORDS]; LEVELS],
            due: VecDeque::new(),
            due_time: 0,
            entries: Vec::new(),
            free: Vec::new(),
            scratch: Vec::new(),
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events executed so far.
    pub fn events_executed(&self) -> u64 {
        self.executed
    }

    /// Number of events still pending (cancelled events don't count).
    pub fn events_pending(&self) -> usize {
        self.pending
    }

    /// Shared access to the world.
    pub fn world(&self) -> &W {
        &self.world
    }

    /// Exclusive access to the world.
    pub fn world_mut(&mut self) -> &mut W {
        &mut self.world
    }

    /// Consume the simulator, returning the world.
    pub fn into_world(self) -> W {
        self.world
    }

    /// A canonical digest of the engine's scheduling state: clock,
    /// sequence counter, every pending ticket (time, seq, slab index),
    /// slab entry states and generations, and the free list.
    ///
    /// Two simulators that executed the same event history have equal
    /// digests; any divergence in wheel contents, tie-break order or
    /// slab reuse shows up here. Event closures themselves are opaque
    /// and deliberately excluded — the snapshot design verifies them by
    /// replay, not by serialization.
    pub fn state_digest(&self) -> u64 {
        use crate::hash::{fnv1a_fold_u64 as f, FNV_OFFSET};
        let mut h = FNV_OFFSET;
        h = f(h, self.now.as_nanos());
        h = f(h, self.seq);
        h = f(h, self.executed);
        h = f(h, self.pending as u64);
        h = f(h, self.wheel_now);
        h = f(h, self.due_time);
        for &idx in &self.due {
            h = f(h, idx as u64);
        }
        for slot in &self.slots {
            for t in slot {
                h = f(h, t.time);
                h = f(h, t.seq);
                h = f(h, t.idx as u64);
            }
        }
        h = f(h, self.entries.len() as u64);
        for e in &self.entries {
            let s = match e.state {
                State::Free => 0u64,
                State::Pending => 1,
                State::Running => 2,
                State::Cancelled => 3,
            };
            h = f(h, s | ((e.gen as u64) << 8));
        }
        for &idx in &self.free {
            h = f(h, idx as u64);
        }
        h
    }

    // ---- slab ----

    fn alloc(&mut self, payload: Payload<W>) -> EventId {
        self.pending += 1;
        match self.free.pop() {
            Some(idx) => {
                let e = &mut self.entries[idx as usize];
                debug_assert_eq!(e.state, State::Free);
                e.state = State::Pending;
                e.payload = payload;
                EventId { idx, gen: e.gen }
            }
            None => {
                let idx = self.entries.len() as u32;
                self.entries.push(Entry {
                    gen: 0,
                    state: State::Pending,
                    payload,
                });
                EventId { idx, gen: 0 }
            }
        }
    }

    fn free_entry(&mut self, idx: u32) {
        let e = &mut self.entries[idx as usize];
        e.state = State::Free;
        e.payload = Payload::Empty;
        e.gen = e.gen.wrapping_add(1);
        self.free.push(idx);
    }

    // ---- wheel ----

    /// Level an event at absolute time `t` belongs to, relative to the
    /// cursor: the level of the highest bit-group in which `t` and the
    /// cursor differ. Events sharing the cursor's whole prefix (same
    /// tick) go to level 0.
    fn level_of(cursor: u64, t: u64) -> usize {
        let diff = cursor ^ t;
        if diff == 0 {
            0
        } else {
            ((63 - diff.leading_zeros()) / SLOT_BITS) as usize
        }
    }

    fn slot_of(level: usize, t: u64) -> usize {
        ((t >> (SLOT_BITS as usize * level)) & (SLOTS as u64 - 1)) as usize
    }

    fn insert_into_wheel(&mut self, ticket: Ticket) {
        debug_assert!(
            ticket.time >= self.wheel_now,
            "event inserted behind the cursor"
        );
        let level = Self::level_of(self.wheel_now, ticket.time);
        let slot = Self::slot_of(level, ticket.time);
        self.slots[level * SLOTS + slot].push(ticket);
        self.occ[level][slot >> 6] |= 1 << (slot & 63);
    }

    /// First occupied slot at `level` at or after slot `cur`, if any.
    fn first_occupied(&self, level: usize, cur: usize) -> Option<usize> {
        let mut w = cur >> 6;
        let mut word = self.occ[level][w] & (!0u64 << (cur & 63));
        loop {
            if word != 0 {
                return Some(w * 64 + word.trailing_zeros() as usize);
            }
            w += 1;
            if w == OCC_WORDS {
                return None;
            }
            word = self.occ[level][w];
        }
    }

    /// Ensure the front of `due` is a live event with `time <= limit`.
    /// Cascades higher-level slots down and drains the next level-0 slot
    /// as needed, without ever moving the cursor past `limit` (so a
    /// bounded run never corrupts placement of later insertions).
    fn stage(&mut self, limit: u64) -> bool {
        loop {
            // the staged slot: skip lazily-reclaimed cancellations
            while let Some(&idx) = self.due.front() {
                match self.entries[idx as usize].state {
                    State::Cancelled => {
                        self.due.pop_front();
                        self.free_entry(idx);
                    }
                    State::Pending => return self.due_time <= limit,
                    State::Free | State::Running => unreachable!("staged event in bad state"),
                }
            }
            if self.pending == 0 {
                return false;
            }
            // find the lowest occupied level; within it, the first
            // occupied slot at or after the cursor (never before it:
            // every pending event is in the cursor's future)
            let mut found = None;
            for level in 0..LEVELS {
                let cur = Self::slot_of(level, self.wheel_now);
                // invariant: nothing occupied behind the cursor at any
                // level — every pending event is in the cursor's future
                if let Some(slot) = self.first_occupied(level, cur) {
                    found = Some((level, slot));
                    break;
                }
            }
            let Some((level, slot)) = found else {
                debug_assert!(false, "pending events but an empty wheel");
                return false;
            };
            let shift = SLOT_BITS as usize * level;
            let list_ix = level * SLOTS + slot;
            if level == 0 {
                // a level-0 slot holds events of exactly one timestamp
                let t = (self.wheel_now >> SLOT_BITS << SLOT_BITS) | slot as u64;
                if t > limit {
                    return false;
                }
                self.wheel_now = t;
                self.due_time = t;
                self.occ[0][slot >> 6] &= !(1 << (slot & 63));
                mem::swap(&mut self.slots[list_ix], &mut self.scratch);
                // same tick ⇒ dispatch in insertion (seq) order; direct
                // inserts and cascades may have interleaved out of order.
                // Cancelled events ride along as dead tickets; the
                // front-skip above reclaims them, so staging itself
                // never touches the slab.
                self.scratch.sort_unstable_by_key(|tk| tk.seq);
                self.due.extend(self.scratch.iter().map(|tk| {
                    debug_assert_eq!(tk.time, t);
                    tk.idx
                }));
                self.scratch.clear();
                let mut drained = mem::take(&mut self.scratch);
                mem::swap(&mut self.slots[list_ix], &mut drained);
                self.scratch = drained;
            } else {
                // cascade: advance the cursor to the slot's start and
                // redistribute its tickets into lower levels — a pure
                // ticket-list stream, no slab access
                let above = shift + SLOT_BITS as usize;
                let high_mask = if above >= 64 { 0 } else { !0u64 << above };
                let slot_start = (self.wheel_now & high_mask) | ((slot as u64) << shift);
                if slot_start > limit {
                    return false;
                }
                self.wheel_now = slot_start;
                self.occ[level][slot >> 6] &= !(1 << (slot & 63));
                mem::swap(&mut self.slots[list_ix], &mut self.scratch);
                for k in 0..self.scratch.len() {
                    let tk = self.scratch[k];
                    self.insert_into_wheel(tk);
                }
                self.scratch.clear();
                let mut drained = mem::take(&mut self.scratch);
                mem::swap(&mut self.slots[list_ix], &mut drained);
                self.scratch = drained;
            }
        }
    }

    /// Pop and execute the front of `due` (must be staged and live).
    fn dispatch_one(&mut self) {
        let idx = self.due.pop_front().expect("dispatch without staging");
        let e = &mut self.entries[idx as usize];
        debug_assert_eq!(e.state, State::Pending);
        let t = self.due_time;
        debug_assert!(t >= self.now.as_nanos(), "event list went backwards");
        self.now = SimTime::from_nanos(t);
        self.executed += 1;
        self.pending -= 1;
        match mem::replace(&mut e.payload, Payload::Empty) {
            Payload::Once(f) => {
                // free before the call: the id is dead, the slot reusable
                self.free_entry(idx);
                f(self);
            }
            Payload::Every { period, mut f } => {
                self.entries[idx as usize].state = State::Running;
                let again = f(self);
                let e = &mut self.entries[idx as usize];
                if !again || e.state == State::Cancelled {
                    self.free_entry(idx);
                } else {
                    // reuse the entry and the closure box; fresh seq so
                    // the next firing ties after anything `f` scheduled
                    e.state = State::Pending;
                    e.payload = Payload::Every { period, f };
                    let seq = self.seq;
                    self.seq += 1;
                    self.pending += 1;
                    self.insert_into_wheel(Ticket {
                        time: t.saturating_add(period.as_nanos()),
                        seq,
                        idx,
                    });
                }
            }
            Payload::Empty => unreachable!("dispatching an empty event"),
        }
    }

    // ---- public scheduling API ----

    /// Schedule `f` to run at absolute time `at`.
    ///
    /// Scheduling in the past is clamped to "now": the event runs at the
    /// current time, after already-queued events with the same timestamp.
    pub fn schedule_at(&mut self, at: SimTime, f: impl FnOnce(&mut Sim<W>) + 'static) -> EventId {
        let time = at.max(self.now).as_nanos();
        let id = self.alloc(Payload::Once(Box::new(f)));
        let seq = self.seq;
        self.seq += 1;
        self.insert_into_wheel(Ticket {
            time,
            seq,
            idx: id.idx,
        });
        id
    }

    /// Schedule `f` to run `delay` after the current time.
    pub fn schedule_in(
        &mut self,
        delay: SimDuration,
        f: impl FnOnce(&mut Sim<W>) + 'static,
    ) -> EventId {
        self.schedule_at(self.now + delay, f)
    }

    /// Schedule a recurring event every `period`, starting one period
    /// from now, until `f` returns `false` (or the event is cancelled).
    /// One slab entry and one closure allocation serve every firing.
    pub fn schedule_every(
        &mut self,
        period: SimDuration,
        f: impl FnMut(&mut Sim<W>) -> bool + 'static,
    ) -> EventId {
        let time = (self.now + period).as_nanos();
        let id = self.alloc(Payload::Every {
            period,
            f: Box::new(f),
        });
        let seq = self.seq;
        self.seq += 1;
        self.insert_into_wheel(Ticket {
            time,
            seq,
            idx: id.idx,
        });
        id
    }

    /// Cancel a scheduled event in O(1). Returns `true` if the event was
    /// still pending (or is a recurring event, including mid-firing —
    /// it will not re-fire); `false` if it already fired, was already
    /// cancelled, or the id is stale.
    pub fn cancel(&mut self, id: EventId) -> bool {
        let Some(e) = self.entries.get_mut(id.idx as usize) else {
            return false;
        };
        if e.gen != id.gen {
            return false;
        }
        match e.state {
            State::Pending => {
                e.state = State::Cancelled;
                e.payload = Payload::Empty;
                self.pending -= 1;
                true
            }
            // a recurring event cancelling itself from inside its own
            // closure: suppress the re-schedule
            State::Running => {
                e.state = State::Cancelled;
                true
            }
            State::Free | State::Cancelled => false,
        }
    }

    // ---- driving ----

    /// Execute the next pending event, advancing the clock to its
    /// timestamp. Returns `false` when no live events remain.
    pub fn step(&mut self) -> bool {
        if self.stage(u64::MAX) {
            self.dispatch_one();
            true
        } else {
            false
        }
    }

    /// Run until no events remain.
    pub fn run(&mut self) {
        while self.step() {}
    }

    /// Run until no events remain or the clock would pass `deadline`.
    ///
    /// Events scheduled exactly at the deadline still execute; the first
    /// event strictly beyond it is left in the queue and the clock is
    /// advanced to the deadline.
    pub fn run_until(&mut self, deadline: SimTime) {
        let limit = deadline.as_nanos();
        while self.stage(limit) {
            self.dispatch_one();
        }
        if self.now < deadline {
            self.now = deadline;
        }
    }

    /// Run for `span` of simulated time from now.
    pub fn run_for(&mut self, span: SimDuration) {
        let deadline = self.now + span;
        self.run_until(deadline);
    }
}

pub mod baseline {
    //! The pre-wheel event-list engine: a `BinaryHeap` of boxed
    //! closures ordered by `(time, seq)`.
    //!
    //! Kept as the reference implementation: `tests/sim_properties.rs`
    //! cross-checks the timing wheel against it event-for-event, and
    //! `bench`'s `benches/sim.rs` measures the wheel's speedup over it.
    //! Not used by any production path.

    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    use crate::time::{SimDuration, SimTime};

    type EventFn<W> = Box<dyn FnOnce(&mut HeapSim<W>)>;

    struct Entry<W> {
        time: SimTime,
        seq: u64,
        f: EventFn<W>,
    }

    impl<W> PartialEq for Entry<W> {
        fn eq(&self, other: &Self) -> bool {
            self.time == other.time && self.seq == other.seq
        }
    }
    impl<W> Eq for Entry<W> {}
    impl<W> PartialOrd for Entry<W> {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    impl<W> Ord for Entry<W> {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            (self.time, self.seq).cmp(&(other.time, other.seq))
        }
    }

    /// The binary-heap reference simulator (old engine, same semantics).
    pub struct HeapSim<W> {
        world: W,
        now: SimTime,
        seq: u64,
        queue: BinaryHeap<Reverse<Entry<W>>>,
        executed: u64,
    }

    impl<W> HeapSim<W> {
        /// Create a simulator at time zero owning `world`.
        pub fn new(world: W) -> Self {
            HeapSim {
                world,
                now: SimTime::ZERO,
                seq: 0,
                queue: BinaryHeap::new(),
                executed: 0,
            }
        }

        /// Current simulated time.
        pub fn now(&self) -> SimTime {
            self.now
        }

        /// Number of events executed so far.
        pub fn events_executed(&self) -> u64 {
            self.executed
        }

        /// Number of events still pending.
        pub fn events_pending(&self) -> usize {
            self.queue.len()
        }

        /// Shared access to the world.
        pub fn world(&self) -> &W {
            &self.world
        }

        /// Exclusive access to the world.
        pub fn world_mut(&mut self) -> &mut W {
            &mut self.world
        }

        /// Schedule `f` at absolute time `at` (clamped to now).
        pub fn schedule_at(&mut self, at: SimTime, f: impl FnOnce(&mut HeapSim<W>) + 'static) {
            let time = at.max(self.now);
            let seq = self.seq;
            self.seq += 1;
            self.queue.push(Reverse(Entry {
                time,
                seq,
                f: Box::new(f),
            }));
        }

        /// Schedule `f` to run `delay` after the current time.
        pub fn schedule_in(
            &mut self,
            delay: SimDuration,
            f: impl FnOnce(&mut HeapSim<W>) + 'static,
        ) {
            self.schedule_at(self.now + delay, f);
        }

        /// Recurring event every `period` until `f` returns `false`
        /// (re-boxes the closure each firing — the churn the wheel's
        /// native recurring timers eliminate).
        pub fn schedule_every(
            &mut self,
            period: SimDuration,
            f: impl FnMut(&mut HeapSim<W>) -> bool + 'static,
        ) {
            fn tick<W>(
                sim: &mut HeapSim<W>,
                period: SimDuration,
                mut f: impl FnMut(&mut HeapSim<W>) -> bool + 'static,
            ) {
                if f(sim) {
                    sim.schedule_in(period, move |sim| tick(sim, period, f));
                }
            }
            self.schedule_in(period, move |sim| tick(sim, period, f));
        }

        /// Execute the next pending event.
        pub fn step(&mut self) -> bool {
            match self.queue.pop() {
                Some(Reverse(entry)) => {
                    debug_assert!(entry.time >= self.now, "event list went backwards");
                    self.now = entry.time;
                    self.executed += 1;
                    (entry.f)(self);
                    true
                }
                None => false,
            }
        }

        /// Run until no events remain.
        pub fn run(&mut self) {
            while self.step() {}
        }

        /// Run until the clock would pass `deadline` (inclusive).
        pub fn run_until(&mut self, deadline: SimTime) {
            loop {
                match self.queue.peek() {
                    Some(Reverse(entry)) if entry.time <= deadline => {
                        self.step();
                    }
                    _ => break,
                }
            }
            if self.now < deadline {
                self.now = deadline;
            }
        }

        /// Run for `span` of simulated time from now.
        pub fn run_for(&mut self, span: SimDuration) {
            let deadline = self.now + span;
            self.run_until(deadline);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn events_run_in_time_order() {
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Sim::new(());
        for &t in &[5u64, 1, 3, 2, 4] {
            let log = Rc::clone(&log);
            sim.schedule_at(SimTime::from_nanos(t), move |_| log.borrow_mut().push(t));
        }
        sim.run();
        assert_eq!(*log.borrow(), vec![1, 2, 3, 4, 5]);
        assert_eq!(sim.events_executed(), 5);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Sim::new(());
        for i in 0..10u32 {
            let log = Rc::clone(&log);
            sim.schedule_at(SimTime::from_nanos(7), move |_| log.borrow_mut().push(i));
        }
        sim.run();
        assert_eq!(*log.borrow(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn scheduling_in_the_past_clamps_to_now() {
        let mut sim = Sim::new(Vec::new());
        sim.schedule_at(SimTime::from_nanos(100), |sim| {
            // try to schedule "earlier" — must still run, at t=100
            sim.schedule_at(SimTime::from_nanos(10), |sim| {
                let now = sim.now();
                sim.world_mut().push(now);
            });
        });
        sim.run();
        assert_eq!(sim.world().len(), 1);
        assert_eq!(sim.world()[0], SimTime::from_nanos(100));
    }

    #[test]
    fn past_clamp_runs_after_queued_same_time_events() {
        // an event clamped to "now" must run after events already queued
        // at that timestamp (it has a later seq)
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Sim::new(());
        for tag in [1u32, 2] {
            let log = Rc::clone(&log);
            sim.schedule_at(SimTime::from_nanos(50), move |_| log.borrow_mut().push(tag));
        }
        {
            let log = Rc::clone(&log);
            sim.schedule_at(SimTime::from_nanos(50), move |sim| {
                log.borrow_mut().push(3);
                let log = Rc::clone(&log);
                // clamped: runs at t=50 but after the tag=2 event
                sim.schedule_at(SimTime::from_nanos(7), move |_| log.borrow_mut().push(4));
            });
        }
        // reorder: the clamping event was scheduled first at seq order 1,2,3
        sim.run();
        assert_eq!(*log.borrow(), vec![1, 2, 3, 4]);
        assert_eq!(sim.now(), SimTime::from_nanos(50));
    }

    #[test]
    fn run_until_stops_at_deadline_and_advances_clock() {
        let mut sim = Sim::new(0u32);
        sim.schedule_at(SimTime::from_nanos(10), |sim| *sim.world_mut() += 1);
        sim.schedule_at(SimTime::from_nanos(20), |sim| *sim.world_mut() += 1);
        sim.schedule_at(SimTime::from_nanos(30), |sim| *sim.world_mut() += 1);
        sim.run_until(SimTime::from_nanos(20));
        assert_eq!(*sim.world(), 2); // event at t=20 inclusive
        assert_eq!(sim.now(), SimTime::from_nanos(20));
        assert_eq!(sim.events_pending(), 1);
        sim.run_until(SimTime::from_nanos(25));
        // nothing ran, but the clock advanced to the deadline
        assert_eq!(*sim.world(), 2);
        assert_eq!(sim.now(), SimTime::from_nanos(25));
    }

    #[test]
    fn bounded_run_then_insert_before_parked_events() {
        // a paused run must leave the wheel able to accept events earlier
        // than what is still parked (regression guard for cursor abuse)
        let mut sim = Sim::new(Vec::new());
        sim.schedule_at(SimTime::from_secs_n(1000), |sim| sim.world_mut().push(1000));
        sim.run_until(SimTime::from_secs_n(10));
        sim.schedule_at(SimTime::from_secs_n(20), |sim| sim.world_mut().push(20));
        sim.run();
        assert_eq!(*sim.world(), vec![20, 1000]);
    }

    impl SimTime {
        fn from_secs_n(s: u64) -> SimTime {
            SimTime::ZERO + SimDuration::from_secs(s)
        }
    }

    #[test]
    fn schedule_every_repeats_until_false() {
        let mut sim = Sim::new(0u32);
        sim.schedule_every(SimDuration::from_secs(1), |sim| {
            *sim.world_mut() += 1;
            *sim.world() < 5
        });
        sim.run();
        assert_eq!(*sim.world(), 5);
        assert_eq!(sim.now(), SimTime::ZERO + SimDuration::from_secs(5));
    }

    #[test]
    fn nested_scheduling_cascades() {
        // each event schedules the next; 1000 deep
        fn chain(sim: &mut Sim<u64>, remaining: u64) {
            *sim.world_mut() += 1;
            if remaining > 0 {
                sim.schedule_in(SimDuration::from_nanos(1), move |sim| {
                    chain(sim, remaining - 1)
                });
            }
        }
        let mut sim = Sim::new(0u64);
        sim.schedule_in(SimDuration::ZERO, |sim| chain(sim, 999));
        sim.run();
        assert_eq!(*sim.world(), 1000);
    }

    #[test]
    fn cancel_prevents_execution() {
        let mut sim = Sim::new(0u32);
        let keep = sim.schedule_at(SimTime::from_nanos(10), |sim| *sim.world_mut() += 1);
        let kill = sim.schedule_at(SimTime::from_nanos(20), |sim| *sim.world_mut() += 10);
        assert_eq!(sim.events_pending(), 2);
        assert!(sim.cancel(kill));
        assert_eq!(sim.events_pending(), 1);
        assert!(!sim.cancel(kill), "double cancel is a no-op");
        sim.run();
        assert_eq!(*sim.world(), 1);
        assert_eq!(sim.events_executed(), 1);
        assert!(!sim.cancel(keep), "fired events cannot be cancelled");
    }

    #[test]
    fn cancel_then_fire_same_tick() {
        // first handler at t cancels the second handler at the same t
        let log = Rc::new(RefCell::new(Vec::new()));
        let victim = Rc::new(RefCell::new(None));
        let mut sim = Sim::new(());
        {
            let victim = Rc::clone(&victim);
            let log = Rc::clone(&log);
            sim.schedule_at(SimTime::from_nanos(5), move |sim| {
                log.borrow_mut().push("killer");
                let id = victim.borrow_mut().take().unwrap();
                assert!(sim.cancel(id));
            });
        }
        {
            let log = Rc::clone(&log);
            let id = sim.schedule_at(SimTime::from_nanos(5), move |_| {
                log.borrow_mut().push("victim");
            });
            *victim.borrow_mut() = Some(id);
        }
        sim.run();
        assert_eq!(*log.borrow(), vec!["killer"]);
        assert_eq!(sim.events_executed(), 1);
        assert_eq!(sim.events_pending(), 0);
    }

    #[test]
    fn cancel_recurring_stops_it_for_good() {
        let mut sim = Sim::new(0u32);
        let id = sim.schedule_every(SimDuration::from_secs(1), |sim| {
            *sim.world_mut() += 1;
            true
        });
        sim.run_for(SimDuration::from_secs(3));
        assert_eq!(*sim.world(), 3);
        assert!(sim.cancel(id));
        sim.run_for(SimDuration::from_secs(10));
        assert_eq!(*sim.world(), 3);
        assert_eq!(sim.events_pending(), 0);
    }

    #[test]
    fn recurring_can_cancel_itself_mid_firing() {
        let id_cell: Rc<RefCell<Option<EventId>>> = Rc::new(RefCell::new(None));
        let id_cell2 = Rc::clone(&id_cell);
        let mut sim = Sim::new(0u32);
        let id = sim.schedule_every(SimDuration::from_secs(1), move |sim| {
            *sim.world_mut() += 1;
            if *sim.world() == 2 {
                let id = id_cell2.borrow().unwrap();
                assert!(sim.cancel(id));
            }
            true // says "go on", but the cancellation wins
        });
        *id_cell.borrow_mut() = Some(id);
        sim.run();
        assert_eq!(*sim.world(), 2);
    }

    #[test]
    fn stale_id_on_reused_slot_is_rejected() {
        let mut sim = Sim::new(0u32);
        let old = sim.schedule_at(SimTime::from_nanos(1), |sim| *sim.world_mut() += 1);
        sim.run();
        // the slab slot is free now; a new event will reuse it
        let new = sim.schedule_at(SimTime::from_nanos(2), |sim| *sim.world_mut() += 10);
        assert!(!sim.cancel(old), "stale generation must not cancel");
        sim.run();
        assert_eq!(*sim.world(), 11);
        assert!(!sim.cancel(new));
    }

    #[test]
    fn far_future_events_cross_every_wheel_level() {
        // times spread over 10 orders of magnitude, including one close
        // to the top wheel level, all dispatch in order
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Sim::new(());
        let times: Vec<u64> = (0..12)
            .map(|k| 7u64 << (5 * k))
            .chain([u64::MAX - 1])
            .collect();
        for &t in times.iter().rev() {
            let log = Rc::clone(&log);
            sim.schedule_at(SimTime::from_nanos(t), move |_| log.borrow_mut().push(t));
        }
        sim.run();
        let mut expect = times.clone();
        expect.sort_unstable();
        assert_eq!(*log.borrow(), expect);
    }

    #[test]
    fn interleaved_near_and_far_events() {
        // a far-future event parked at a high level must not block or
        // reorder a stream of near events cascading beneath it
        let mut sim = Sim::new(Vec::new());
        sim.schedule_at(SimTime::from_nanos(1 << 40), |sim| {
            sim.world_mut().push(u64::MAX)
        });
        sim.schedule_every(SimDuration::from_secs(1), |sim| {
            let n = sim.now().as_nanos();
            sim.world_mut().push(n);
            sim.world().len() < 20
        });
        sim.run();
        let w = sim.world();
        assert_eq!(w.len(), 21);
        assert!(w.windows(2).all(|p| p[0] < p[1]));
        assert_eq!(*w.last().unwrap(), u64::MAX);
    }
}
