//! A deterministic discrete-event simulator.
//!
//! The reproduction runs every cluster-scale experiment (boot storms,
//! cloning campaigns, monitoring traffic, failure-injection) on this
//! engine. The design is the classic event-list simulator:
//!
//! * a priority queue of `(time, sequence)`-ordered events,
//! * each event owns a closure that mutates the world and may schedule
//!   further events,
//! * ties at the same timestamp are broken by insertion order, which makes
//!   runs bit-for-bit reproducible for a fixed seed.
//!
//! The world state `W` is owned by the simulator and handed to each event
//! by `&mut`, so event handlers can freely mutate any component without
//! interior mutability.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::time::{SimDuration, SimTime};

/// An event handler: runs at its scheduled time with exclusive access to
/// the whole simulation.
type EventFn<W> = Box<dyn FnOnce(&mut Sim<W>)>;

struct Entry<W> {
    time: SimTime,
    seq: u64,
    f: EventFn<W>,
}

// Ordering for the BinaryHeap: we wrap entries in `Reverse` at push time,
// so `Ord` here is the natural (time, seq) order.
impl<W> PartialEq for Entry<W> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<W> Eq for Entry<W> {}
impl<W> PartialOrd for Entry<W> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<W> Ord for Entry<W> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// A discrete-event simulation over a world `W`.
///
/// ```
/// use cwx_util::sim::Sim;
/// use cwx_util::time::SimDuration;
///
/// let mut sim = Sim::new(0u32);
/// sim.schedule_in(SimDuration::from_secs(1), |sim| {
///     *sim.world_mut() += 1;
///     sim.schedule_in(SimDuration::from_secs(1), |sim| *sim.world_mut() += 10);
/// });
/// sim.run();
/// assert_eq!(*sim.world(), 11);
/// assert_eq!(sim.now().as_secs_f64(), 2.0);
/// ```
pub struct Sim<W> {
    world: W,
    now: SimTime,
    seq: u64,
    queue: BinaryHeap<Reverse<Entry<W>>>,
    executed: u64,
}

impl<W> Sim<W> {
    /// Create a simulator at time zero owning `world`.
    pub fn new(world: W) -> Self {
        Sim {
            world,
            now: SimTime::ZERO,
            seq: 0,
            queue: BinaryHeap::new(),
            executed: 0,
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events executed so far.
    pub fn events_executed(&self) -> u64 {
        self.executed
    }

    /// Number of events still pending.
    pub fn events_pending(&self) -> usize {
        self.queue.len()
    }

    /// Shared access to the world.
    pub fn world(&self) -> &W {
        &self.world
    }

    /// Exclusive access to the world.
    pub fn world_mut(&mut self) -> &mut W {
        &mut self.world
    }

    /// Consume the simulator, returning the world.
    pub fn into_world(self) -> W {
        self.world
    }

    /// Schedule `f` to run at absolute time `at`.
    ///
    /// Scheduling in the past is clamped to "now": the event runs at the
    /// current time, after already-queued events with the same timestamp.
    pub fn schedule_at(&mut self, at: SimTime, f: impl FnOnce(&mut Sim<W>) + 'static) {
        let time = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Reverse(Entry {
            time,
            seq,
            f: Box::new(f),
        }));
    }

    /// Schedule `f` to run `delay` after the current time.
    pub fn schedule_in(&mut self, delay: SimDuration, f: impl FnOnce(&mut Sim<W>) + 'static) {
        self.schedule_at(self.now + delay, f);
    }

    /// Schedule a recurring event every `period`, starting one period from
    /// now, until `f` returns `false`.
    pub fn schedule_every(
        &mut self,
        period: SimDuration,
        f: impl FnMut(&mut Sim<W>) -> bool + 'static,
    ) {
        fn tick<W>(
            sim: &mut Sim<W>,
            period: SimDuration,
            mut f: impl FnMut(&mut Sim<W>) -> bool + 'static,
        ) {
            if f(sim) {
                sim.schedule_in(period, move |sim| tick(sim, period, f));
            }
        }
        self.schedule_in(period, move |sim| tick(sim, period, f));
    }

    /// Execute the next pending event, advancing the clock to its
    /// timestamp. Returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        match self.queue.pop() {
            Some(Reverse(entry)) => {
                debug_assert!(entry.time >= self.now, "event list went backwards");
                self.now = entry.time;
                self.executed += 1;
                (entry.f)(self);
                true
            }
            None => false,
        }
    }

    /// Run until no events remain.
    pub fn run(&mut self) {
        while self.step() {}
    }

    /// Run until no events remain or the clock would pass `deadline`.
    ///
    /// Events scheduled exactly at the deadline still execute; the first
    /// event strictly beyond it is left in the queue and the clock is
    /// advanced to the deadline.
    pub fn run_until(&mut self, deadline: SimTime) {
        loop {
            match self.queue.peek() {
                Some(Reverse(entry)) if entry.time <= deadline => {
                    self.step();
                }
                _ => break,
            }
        }
        if self.now < deadline {
            self.now = deadline;
        }
    }

    /// Run for `span` of simulated time from now.
    pub fn run_for(&mut self, span: SimDuration) {
        let deadline = self.now + span;
        self.run_until(deadline);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn events_run_in_time_order() {
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Sim::new(());
        for &t in &[5u64, 1, 3, 2, 4] {
            let log = Rc::clone(&log);
            sim.schedule_at(SimTime::from_nanos(t), move |_| log.borrow_mut().push(t));
        }
        sim.run();
        assert_eq!(*log.borrow(), vec![1, 2, 3, 4, 5]);
        assert_eq!(sim.events_executed(), 5);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Sim::new(());
        for i in 0..10u32 {
            let log = Rc::clone(&log);
            sim.schedule_at(SimTime::from_nanos(7), move |_| log.borrow_mut().push(i));
        }
        sim.run();
        assert_eq!(*log.borrow(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn scheduling_in_the_past_clamps_to_now() {
        let mut sim = Sim::new(Vec::new());
        sim.schedule_at(SimTime::from_nanos(100), |sim| {
            // try to schedule "earlier" — must still run, at t=100
            sim.schedule_at(SimTime::from_nanos(10), |sim| {
                let now = sim.now();
                sim.world_mut().push(now);
            });
        });
        sim.run();
        assert_eq!(sim.world().len(), 1);
        assert_eq!(sim.world()[0], SimTime::from_nanos(100));
    }

    #[test]
    fn run_until_stops_at_deadline_and_advances_clock() {
        let mut sim = Sim::new(0u32);
        sim.schedule_at(SimTime::from_nanos(10), |sim| *sim.world_mut() += 1);
        sim.schedule_at(SimTime::from_nanos(20), |sim| *sim.world_mut() += 1);
        sim.schedule_at(SimTime::from_nanos(30), |sim| *sim.world_mut() += 1);
        sim.run_until(SimTime::from_nanos(20));
        assert_eq!(*sim.world(), 2); // event at t=20 inclusive
        assert_eq!(sim.now(), SimTime::from_nanos(20));
        assert_eq!(sim.events_pending(), 1);
        sim.run_until(SimTime::from_nanos(25));
        // nothing ran, but the clock advanced to the deadline
        assert_eq!(*sim.world(), 2);
        assert_eq!(sim.now(), SimTime::from_nanos(25));
    }

    #[test]
    fn schedule_every_repeats_until_false() {
        let mut sim = Sim::new(0u32);
        sim.schedule_every(SimDuration::from_secs(1), |sim| {
            *sim.world_mut() += 1;
            *sim.world() < 5
        });
        sim.run();
        assert_eq!(*sim.world(), 5);
        assert_eq!(sim.now(), SimTime::ZERO + SimDuration::from_secs(5));
    }

    #[test]
    fn nested_scheduling_cascades() {
        // each event schedules the next; 1000 deep
        fn chain(sim: &mut Sim<u64>, remaining: u64) {
            *sim.world_mut() += 1;
            if remaining > 0 {
                sim.schedule_in(SimDuration::from_nanos(1), move |sim| {
                    chain(sim, remaining - 1)
                });
            }
        }
        let mut sim = Sim::new(0u64);
        sim.schedule_in(SimDuration::ZERO, |sim| chain(sim, 999));
        sim.run();
        assert_eq!(*sim.world(), 1000);
    }
}
