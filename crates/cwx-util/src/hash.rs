//! The canonical FNV-1a hash used for every determinism fingerprint in
//! the workspace: result.json fingerprints, audit-trail hashes, and
//! snapshot section digests.
//!
//! Three crates grew their own copies of these two constants before
//! this module existed; they now all route through here so a constant
//! typo can never make one fingerprint silently diverge from another.

/// FNV-1a 64-bit offset basis. `fnv1a(b"")` returns exactly this.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
pub const FNV_PRIME: u64 = 0x100_0000_01b3;

/// Hash `bytes` with 64-bit FNV-1a.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    fnv1a_fold(FNV_OFFSET, bytes)
}

/// Fold `bytes` into an existing FNV-1a state `h`.
///
/// `fnv1a_fold(fnv1a(a), b) == fnv1a(a ++ b)`, so callers can hash a
/// logical stream without materializing it.
pub fn fnv1a_fold(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Fold a `u64` into an FNV-1a state as its 8 little-endian bytes.
pub fn fnv1a_fold_u64(h: u64, v: u64) -> u64 {
    fnv1a_fold(h, &v.to_le_bytes())
}

/// Fold a sequence of `Debug` items into an FNV-1a state by hashing
/// each item's debug rendering in order.
///
/// This is the canonical audit-trail hash: the chaos engine and the
/// federation head both fingerprint their audit records this way, and
/// snapshot sections reuse it for any state that is `Debug` but has no
/// tighter canonical encoding.
pub fn fnv1a_debug_fold<T: std::fmt::Debug>(mut h: u64, items: &[T]) -> u64 {
    for it in items {
        h = fnv1a_fold(h, format!("{it:?}").as_bytes());
    }
    h
}

/// Hash a sequence of `Debug` items from the offset basis. See
/// [`fnv1a_debug_fold`].
pub fn fnv1a_debug<T: std::fmt::Debug>(items: &[T]) -> u64 {
    fnv1a_debug_fold(FNV_OFFSET, items)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input_is_the_offset_basis() {
        assert_eq!(fnv1a(b""), FNV_OFFSET);
    }

    #[test]
    fn known_vectors() {
        // classic FNV-1a 64-bit test vectors
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn fold_is_concatenation() {
        let whole = fnv1a(b"hello world");
        let split = fnv1a_fold(fnv1a(b"hello "), b"world");
        assert_eq!(whole, split);
    }

    #[test]
    fn fold_u64_matches_le_bytes() {
        let v = 0x0123_4567_89ab_cdefu64;
        assert_eq!(fnv1a_fold_u64(FNV_OFFSET, v), fnv1a(&v.to_le_bytes()));
    }
}
