//! The `cwx-snapshot-v1` container: a self-checking binary envelope for
//! captured world state.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic    8 bytes  "CWXSNAP1"
//! version  u32      container version (currently 1)
//! crc      u32      CRC-32 (IEEE) of everything after this field
//! body:
//!   identity   u64  prefix-identity hash (seed + mode + fault prefix)
//!   t_nanos    u64  capture time, simulated nanoseconds
//!   mode       u8   0 = chaos, 1 = federation
//!   n_sections u32
//!   sections   n ×  (name_len u32, name utf-8, data_len u32, data)
//! ```
//!
//! The container deliberately stores *named sections* rather than one
//! opaque blob: when a resumed replay diverges from the capture, the
//! runner reports the first divergent section by name ("hw", "rng",
//! "audit", …), which turns a determinism regression from a mystery
//! into a subsystem pointer.
//!
//! Decoding is total: truncated, bit-flipped or version-bumped input
//! yields a single-line [`SnapshotError`] — never a panic — so the CLI
//! can print it verbatim and exit 3.

use std::fmt;

/// Magic bytes opening every snapshot file.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"CWXSNAP1";
/// Container version written by this build.
pub const SNAPSHOT_VERSION: u32 = 1;
/// Capture mode tag: a single-cluster chaos world.
pub const MODE_CHAOS: u8 = 0;
/// Capture mode tag: a federation (sub-worlds + head).
pub const MODE_FEDERATION: u8 = 1;

/// A single-line snapshot decode/validate error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotError(pub String);

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for SnapshotError {}

fn err(msg: impl Into<String>) -> SnapshotError {
    SnapshotError(msg.into())
}

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the same
/// checksum gzip and PNG use. Bitwise, no table: snapshot files are
/// megabytes at most and integrity beats speed here.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = !0;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xedb8_8320 & mask);
        }
    }
    !crc
}

/// Append a `u32` little-endian.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a `u64` little-endian.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append an `f64` as its exact IEEE-754 bit pattern.
pub fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

/// Append a length-prefixed byte string.
pub fn put_bytes(out: &mut Vec<u8>, v: &[u8]) {
    put_u32(out, v.len() as u32);
    out.extend_from_slice(v);
}

/// Append a length-prefixed UTF-8 string.
pub fn put_str(out: &mut Vec<u8>, v: &str) {
    put_bytes(out, v.as_bytes());
}

/// A decoded (or to-be-encoded) snapshot: header metadata plus named
/// state sections in capture order.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotFile {
    /// Prefix-identity hash: a fingerprint of everything that shapes
    /// the world up to `t_nanos` (seed, cluster/federation spec, the
    /// fault prefix). Resume refuses a manifest whose identity differs.
    pub identity: u64,
    /// Capture time in simulated nanoseconds.
    pub t_nanos: u64,
    /// [`MODE_CHAOS`] or [`MODE_FEDERATION`].
    pub mode: u8,
    /// Named canonical state sections, in capture order.
    pub sections: Vec<(String, Vec<u8>)>,
}

impl SnapshotFile {
    /// Serialize to the on-disk `cwx-snapshot-v1` format.
    pub fn encode(&self) -> Vec<u8> {
        let mut body = Vec::new();
        put_u64(&mut body, self.identity);
        put_u64(&mut body, self.t_nanos);
        body.push(self.mode);
        put_u32(&mut body, self.sections.len() as u32);
        for (name, data) in &self.sections {
            put_str(&mut body, name);
            put_bytes(&mut body, data);
        }
        let mut out = Vec::with_capacity(16 + body.len());
        out.extend_from_slice(&SNAPSHOT_MAGIC);
        put_u32(&mut out, SNAPSHOT_VERSION);
        put_u32(&mut out, crc32(&body));
        out.extend_from_slice(&body);
        out
    }

    /// Parse and validate a snapshot file. Any defect — wrong magic,
    /// unsupported version, CRC mismatch, truncation — is a one-line
    /// error; this function never panics on hostile input.
    pub fn decode(bytes: &[u8]) -> Result<SnapshotFile, SnapshotError> {
        if bytes.len() < 16 {
            return Err(err(format!(
                "not a snapshot: {} bytes, shorter than the 16-byte header",
                bytes.len()
            )));
        }
        if bytes[..8] != SNAPSHOT_MAGIC {
            return Err(err("not a snapshot: bad magic (expected \"CWXSNAP1\")"));
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
        if version != SNAPSHOT_VERSION {
            return Err(err(format!(
                "unsupported snapshot version {version} (this build reads version {SNAPSHOT_VERSION})"
            )));
        }
        let want_crc = u32::from_le_bytes(bytes[12..16].try_into().unwrap());
        let body = &bytes[16..];
        let got_crc = crc32(body);
        if got_crc != want_crc {
            return Err(err(format!(
                "snapshot corrupt: CRC mismatch (header {want_crc:08x}, body {got_crc:08x})"
            )));
        }
        let mut r = Reader { buf: body, pos: 0 };
        let identity = r.u64("identity")?;
        let t_nanos = r.u64("t_nanos")?;
        let mode = r.u8("mode")?;
        if mode > MODE_FEDERATION {
            return Err(err(format!("snapshot corrupt: unknown mode tag {mode}")));
        }
        let n = r.u32("section count")?;
        let mut sections = Vec::new();
        for i in 0..n {
            let name = r.str(&format!("section {i} name"))?;
            let data = r.bytes(&format!("section {i} data"))?.to_vec();
            sections.push((name, data));
        }
        if r.pos != r.buf.len() {
            return Err(err(format!(
                "snapshot corrupt: {} trailing bytes after the last section",
                r.buf.len() - r.pos
            )));
        }
        Ok(SnapshotFile {
            identity,
            t_nanos,
            mode,
            sections,
        })
    }

    /// Look up a section by name.
    pub fn section(&self, name: &str) -> Option<&[u8]> {
        self.sections
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, d)| d.as_slice())
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], SnapshotError> {
        if self.buf.len() - self.pos < n {
            return Err(err(format!(
                "snapshot truncated while reading {what} (need {n} bytes, have {})",
                self.buf.len() - self.pos
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self, what: &str) -> Result<u8, SnapshotError> {
        Ok(self.take(1, what)?[0])
    }

    fn u32(&mut self, what: &str) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().unwrap()))
    }

    fn u64(&mut self, what: &str) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    fn bytes(&mut self, what: &str) -> Result<&'a [u8], SnapshotError> {
        let n = self.u32(what)? as usize;
        self.take(n, what)
    }

    fn str(&mut self, what: &str) -> Result<String, SnapshotError> {
        let raw = self.bytes(what)?;
        String::from_utf8(raw.to_vec())
            .map_err(|_| err(format!("snapshot corrupt: {what} is not UTF-8")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SnapshotFile {
        SnapshotFile {
            identity: 0xdead_beef_cafe_f00d,
            t_nanos: 1_234_567_890,
            mode: MODE_CHAOS,
            sections: vec![
                ("clock".into(), vec![1, 2, 3]),
                ("hw".into(), vec![0; 300]),
                ("empty".into(), vec![]),
            ],
        }
    }

    #[test]
    fn crc32_known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
    }

    #[test]
    fn round_trips() {
        let s = sample();
        let bytes = s.encode();
        let back = SnapshotFile::decode(&bytes).expect("decodes");
        assert_eq!(back, s);
        assert_eq!(back.section("clock"), Some(&[1u8, 2, 3][..]));
        assert_eq!(back.section("missing"), None);
    }

    #[test]
    fn every_truncation_is_a_single_line_error() {
        let bytes = sample().encode();
        for len in 0..bytes.len() {
            let e = SnapshotFile::decode(&bytes[..len]).expect_err("truncation must fail");
            assert!(!e.to_string().contains('\n'), "multi-line error: {e}");
        }
    }

    #[test]
    fn every_bit_flip_is_detected() {
        let bytes = sample().encode();
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            // a flip in the CRC field itself, the magic, the version or
            // the body must all be caught — decode may never succeed on
            // a modified file, and may never panic
            assert!(
                SnapshotFile::decode(&bad).is_err(),
                "bit flip at byte {i} went undetected"
            );
        }
    }

    #[test]
    fn version_bump_is_rejected_by_name() {
        let mut bytes = sample().encode();
        bytes[8] = 9; // version field
                      // fix the CRC so only the version differs? CRC covers the body,
                      // not the header, so the version check fires directly.
        let e = SnapshotFile::decode(&bytes).expect_err("future version must fail");
        assert!(e.to_string().contains("version 9"), "{e}");
    }

    #[test]
    fn wrong_magic_is_rejected() {
        let mut bytes = sample().encode();
        bytes[0] = b'X';
        let e = SnapshotFile::decode(&bytes).expect_err("bad magic");
        assert!(e.to_string().contains("magic"), "{e}");
    }
}
