//! Summary statistics for experiment reporting.
//!
//! The benchmark harness prints paper-style rows (rates, per-call costs,
//! completion times); [`Summary`] condenses a sample vector into the
//! moments and percentiles those rows need.

/// Summary statistics over a set of `f64` samples.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Minimum sample.
    pub min: f64,
    /// Maximum sample.
    pub max: f64,
    /// Median (50th percentile).
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
}

impl Summary {
    /// Compute statistics over `samples`. Returns `None` for an empty or
    /// all-NaN input.
    pub fn of(samples: &[f64]) -> Option<Summary> {
        let mut sorted: Vec<f64> = samples.iter().copied().filter(|x| !x.is_nan()).collect();
        if sorted.is_empty() {
            return None;
        }
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let n = sorted.len();
        let mean = sorted.iter().sum::<f64>() / n as f64;
        let var = sorted.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        Some(Summary {
            count: n,
            mean,
            std_dev: var.sqrt(),
            min: sorted[0],
            max: sorted[n - 1],
            p50: percentile_sorted(&sorted, 0.50),
            p95: percentile_sorted(&sorted, 0.95),
            p99: percentile_sorted(&sorted, 0.99),
        })
    }
}

/// Nearest-rank percentile of an already-sorted, non-empty slice.
///
/// `q` is in `[0,1]`; out-of-range values clamp to the extremes.
pub fn percentile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty slice");
    let q = q.clamp(0.0, 1.0);
    let rank = (q * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank]
}

/// A streaming counter of a rate: events per second of simulated time.
#[derive(Debug, Clone, Copy, Default)]
pub struct RateMeter {
    events: u64,
    bytes: u64,
}

impl RateMeter {
    /// New, empty meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one event carrying `bytes` of payload.
    pub fn record(&mut self, bytes: u64) {
        self.events += 1;
        self.bytes += bytes;
    }

    /// Total events recorded.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Total payload bytes recorded.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Events per second over an elapsed window.
    pub fn event_rate(&self, elapsed_secs: f64) -> f64 {
        if elapsed_secs <= 0.0 {
            0.0
        } else {
            self.events as f64 / elapsed_secs
        }
    }

    /// Bytes per second over an elapsed window.
    pub fn byte_rate(&self, elapsed_secs: f64) -> f64 {
        if elapsed_secs <= 0.0 {
            0.0
        } else {
            self.bytes as f64 / elapsed_secs
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_values() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(s.count, 5);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.p50, 3.0);
        assert!((s.std_dev - 2.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn summary_empty_is_none() {
        assert!(Summary::of(&[]).is_none());
        assert!(Summary::of(&[f64::NAN]).is_none());
    }

    #[test]
    fn summary_filters_nan() {
        let s = Summary::of(&[1.0, f64::NAN, 3.0]).unwrap();
        assert_eq!(s.count, 2);
        assert_eq!(s.mean, 2.0);
    }

    #[test]
    fn percentiles_on_larger_set() {
        let v: Vec<f64> = (1..=100).map(|x| x as f64).collect();
        let s = Summary::of(&v).unwrap();
        // nearest-rank: round(0.5 * 99) = 50 -> the 51st value
        assert_eq!(s.p50, 51.0);
        assert_eq!(s.p95, 95.0);
        assert_eq!(s.p99, 99.0);
    }

    #[test]
    fn percentile_clamps_q() {
        let v = [1.0, 2.0, 3.0];
        assert_eq!(percentile_sorted(&v, -1.0), 1.0);
        assert_eq!(percentile_sorted(&v, 2.0), 3.0);
    }

    #[test]
    fn rate_meter_rates() {
        let mut m = RateMeter::new();
        for _ in 0..10 {
            m.record(100);
        }
        assert_eq!(m.events(), 10);
        assert_eq!(m.bytes(), 1000);
        assert_eq!(m.event_rate(2.0), 5.0);
        assert_eq!(m.byte_rate(2.0), 500.0);
        assert_eq!(m.event_rate(0.0), 0.0);
    }
}
