//! Ingest-plane smoke: many concurrent loopback agent connections
//! through the reactor, with store sample counts checked exactly.
//!
//! The small variant always runs; the 5k-connection variant is
//! `#[ignore]` and driven by CI's release-mode ingest-smoke job
//! (`cargo test --release --test ingest_smoke -- --ignored`).

use std::sync::Arc;
use std::time::{Duration, Instant};

use clusterworx::actions::ControlPlane;
use clusterworx::ingest::{drive, IngestConfig, IngestServer, LoadConfig};
use clusterworx::server::Server;
use cwx_store::disk::{DiskStore, StoreConfig};
use cwx_store::Store;
use cwx_util::time::SimDuration;
use parking_lot::{Mutex, RwLock};

fn smoke(conns: usize, frames_per_conn: u64, keys: usize) {
    let _ = cwx_net::reactor::raise_nofile_limit();
    let dir =
        std::env::temp_dir().join(format!("cwx-ingest-smoke-{}-{}", conns, std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = Arc::new(
        DiskStore::open(
            &dir,
            StoreConfig {
                n_shards: 4,
                nodes_per_group: (conns as u32).div_ceil(4).max(1),
                ..StoreConfig::default()
            },
        )
        .unwrap(),
    );
    let server = Arc::new(RwLock::new(Server::new(
        "ingest-smoke",
        SimDuration::from_secs(5),
        64,
        SimDuration::from_secs(600),
    )));
    let control = Arc::new(Mutex::new(ControlPlane::new(conns)));
    let ingest = IngestServer::start(
        IngestConfig {
            n_lanes: 4,
            nodes_per_group: (conns as u32).div_ceil(4).max(1),
            ..IngestConfig::default()
        },
        Arc::clone(&server),
        Some(Arc::clone(&store)),
        Arc::clone(&control),
        Instant::now(),
    )
    .unwrap();

    let sent = drive(LoadConfig {
        addr: ingest.addr().to_string(),
        conns,
        frames_per_conn,
        interval: Duration::from_millis(200),
        writer_threads: 8,
        keys,
        ..LoadConfig::default()
    })
    .unwrap();
    assert_eq!(sent.connected as usize, conns, "every connection came up");
    assert_eq!(sent.frames_sent, conns as u64 * frames_per_conn);
    assert_eq!(sent.write_errors, 0, "no evictions under healthy load");

    let ingested = ingest.shutdown();
    assert_eq!(ingested, sent.frames_sent, "every frame ingested");
    store.flush_all().unwrap();
    assert_eq!(
        store.total_samples(),
        sent.samples_sent,
        "every sample is in the store"
    );
    let srv = server.read();
    assert_eq!(srv.stats().reports_rx, sent.frames_sent);
    assert_eq!(srv.stats().decode_errors, 0);
    drop(srv);
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn two_hundred_connections_every_sample_lands() {
    smoke(200, 5, 4);
}

#[test]
#[ignore = "release-mode CI smoke: 5k concurrent connections (10k fds)"]
fn five_thousand_connections_every_sample_lands() {
    smoke(5000, 3, 4);
}
