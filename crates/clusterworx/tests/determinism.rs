//! Fixed-seed determinism: the acceptance contract for the scaled
//! engine. A seeded run must produce a byte-identical action/audit
//! trail (a) run-to-run and (b) for any hardware shard count — the
//! parallel fleet step must be unobservable.

use clusterworx::config::{ClusterConfig, WorkloadMix};
use clusterworx::world::schedule_fault;
use clusterworx::Cluster;
use cwx_hw::Fault;
use cwx_util::time::{SimDuration, SimTime};

/// Drive a busy little cluster (boots, faults, event-engine actions,
/// reports) and serialize everything observable about the run.
fn run_trace(seed: u64, hw_shards: usize) -> String {
    let mut sim = Cluster::build(ClusterConfig {
        n_nodes: 24,
        seed,
        hw_shards,
        workload: WorkloadMix::Mixed,
        ..Default::default()
    });
    schedule_fault(
        &mut sim,
        SimTime::ZERO + SimDuration::from_secs(120),
        3,
        Fault::FanFailure,
    );
    schedule_fault(
        &mut sim,
        SimTime::ZERO + SimDuration::from_secs(200),
        17,
        Fault::KernelPanic,
    );
    sim.run_for(SimDuration::from_secs(600));
    let w = sim.world();
    let mut out = String::new();
    use std::fmt::Write;
    for a in &w.action_log() {
        writeln!(out, "{} node{} {:?}", a.time.as_nanos(), a.node, a.action).unwrap();
    }
    for r in w.control.audit() {
        writeln!(
            out,
            "audit {} {} {:?} {:?}",
            r.seq,
            r.time.as_nanos(),
            r.node,
            r.entry
        )
        .unwrap();
    }
    writeln!(out, "stats {:?}", w.server.stats()).unwrap();
    writeln!(out, "outbox {}", w.server.outbox().len()).unwrap();
    writeln!(out, "up {}", w.up_count()).unwrap();
    writeln!(out, "events {}", sim.events_executed()).unwrap();
    for (i, st) in w.nodes.iter().enumerate() {
        writeln!(
            out,
            "node{} temp {:.9} watts {:.9} up {}",
            i,
            st.hw.temperature_c(),
            st.hw.power_watts(),
            st.hw.is_up()
        )
        .unwrap();
    }
    out
}

#[test]
fn identical_runs_for_identical_seeds() {
    let a = run_trace(7, 1);
    let b = run_trace(7, 1);
    assert_eq!(a, b, "same seed, same shard count, different trace");
    let c = run_trace(8, 1);
    assert_ne!(a, c, "different seeds should not collide");
}

#[test]
fn shard_count_is_unobservable() {
    let one = run_trace(7, 1);
    for shards in [2, 4, 7] {
        let n = run_trace(7, shards);
        assert_eq!(one, n, "trace diverged at hw_shards={shards}");
    }
}
