//! The control plane is one state machine with two drivers: the
//! discrete-event simulation and the wall-clock realtime deployment.
//! These tests prove (a) both drivers walk the identical lifecycle
//! transitions for the same administrative action script, and (b) under
//! heavy chassis-command loss every fired power action terminates in the
//! audit trail — completed or failed after bounded retries, never
//! silently dropped.

use std::time::Duration;

use clusterworx::world::{power_off_node, power_on_node};
use clusterworx::{
    AuditEntry, AuditRecord, Cluster, ClusterConfig, LifecycleState, RealTimeConfig,
    RealTimeDeployment, SuppressReason, WorkloadMix,
};
use cwx_events::Action;
use cwx_util::time::{SimDuration, SimTime};

/// A node's story as the audit trail tells it: lifecycle transitions
/// plus suppressed actions, with the boot/adoption prefix (everything
/// through the first arrival at `Up`) stripped. The simulation boots
/// `Off → PoweringOn → Bios → Up`; the realtime deployment adopts a
/// running fleet with a forced `Off → Up`. After that first `Up` the
/// two must agree exactly.
type Story = (
    Vec<(LifecycleState, LifecycleState)>,
    Vec<(Action, SuppressReason)>,
);

fn node_story(audit: &[AuditRecord], node: u32) -> Story {
    let mut transitions = Vec::new();
    let mut suppressed = Vec::new();
    for r in audit {
        if r.node != Some(node) {
            continue;
        }
        match &r.entry {
            AuditEntry::Transition { from, to } => transitions.push((*from, *to)),
            AuditEntry::ActionSuppressed { action, reason } => {
                suppressed.push((action.clone(), *reason))
            }
            _ => {}
        }
    }
    if let Some(pos) = transitions
        .iter()
        .position(|(_, to)| *to == LifecycleState::Up)
    {
        transitions.drain(..=pos);
    }
    (transitions, suppressed)
}

/// The script both deployments execute: a power-down, a reboot, a halt,
/// and — once the power-down has landed — a duplicate power-down that
/// the dedup rules must suppress.
const DOWN_NODE: u32 = 1;
const REBOOT_NODE: u32 = 2;
const HALT_NODE: u32 = 0;

#[test]
fn sim_and_realtime_drive_identical_state_machines() {
    // --- the simulated deployment runs the script on virtual time
    let mut sim = Cluster::build(ClusterConfig {
        n_nodes: 3,
        seed: 71,
        workload: WorkloadMix::Constant(0.3),
        ..Default::default()
    });
    sim.run_for(SimDuration::from_secs(120));
    assert_eq!(sim.world().up_count(), 3, "fleet must boot first");
    let now = sim.now();
    let srv = &mut sim.world_mut().server;
    srv.request_action(now, DOWN_NODE, Action::PowerDown);
    srv.request_action(now, REBOOT_NODE, Action::Reboot);
    srv.request_action(now, HALT_NODE, Action::Halt);
    sim.run_for(SimDuration::from_secs(60));
    let now = sim.now();
    sim.world_mut()
        .server
        .request_action(now, DOWN_NODE, Action::PowerDown);
    sim.run_for(SimDuration::from_secs(60));
    let sim_audit: Vec<AuditRecord> = sim.world().control.audit().to_vec();

    // --- the realtime deployment runs the same script on the wall clock
    let dep = RealTimeDeployment::start(RealTimeConfig {
        n_nodes: 3,
        interval: Duration::from_millis(10),
        control_interval: Duration::from_millis(10),
        boot_delay: Duration::from_millis(50),
        ..RealTimeConfig::default()
    });
    dep.control()
        .lock()
        .set_reboot_delay(SimDuration::from_millis(200));
    std::thread::sleep(Duration::from_millis(150)); // fleet adoption settles
    {
        let server = dep.server();
        let mut s = server.write();
        s.request_action(SimTime::ZERO, DOWN_NODE, Action::PowerDown);
        s.request_action(SimTime::ZERO, REBOOT_NODE, Action::Reboot);
        s.request_action(SimTime::ZERO, HALT_NODE, Action::Halt);
    }
    // reboot budget: off + 200ms pause + sequenced energize + 50ms boot
    std::thread::sleep(Duration::from_millis(2500));
    dep.server()
        .write()
        .request_action(SimTime::ZERO, DOWN_NODE, Action::PowerDown);
    std::thread::sleep(Duration::from_millis(400));
    let control = dep.control();
    dep.shutdown();
    let rt_audit: Vec<AuditRecord> = control.lock().audit().to_vec();

    // --- identical transitions and identical dedup decisions, per node
    for node in 0..3u32 {
        let sim_story = node_story(&sim_audit, node);
        let rt_story = node_story(&rt_audit, node);
        assert_eq!(
            sim_story, rt_story,
            "node{node}: sim and realtime walked different state machines"
        );
    }
    // sanity that the script actually exercised the machine
    let (down_t, down_s) = node_story(&sim_audit, DOWN_NODE);
    assert_eq!(
        down_t,
        vec![(LifecycleState::Up, LifecycleState::Off)],
        "power-down lifecycle"
    );
    assert_eq!(
        down_s,
        vec![(Action::PowerDown, SuppressReason::PoweredOff)],
        "duplicate suppressed on both sides"
    );
    let (reboot_t, _) = node_story(&sim_audit, REBOOT_NODE);
    assert_eq!(
        reboot_t,
        vec![
            (LifecycleState::Up, LifecycleState::Off),
            (LifecycleState::Off, LifecycleState::PoweringOn),
            (LifecycleState::PoweringOn, LifecycleState::Bios),
            (LifecycleState::Bios, LifecycleState::Up),
        ],
        "reboot lifecycle"
    );
    let (halt_t, _) = node_story(&sim_audit, HALT_NODE);
    assert_eq!(
        halt_t,
        vec![(LifecycleState::Up, LifecycleState::Halted)],
        "halt lifecycle"
    );
}

#[test]
fn lossy_chassis_commands_always_terminate_in_audit() {
    // 10% of chassis commands vanish in transit; a burst of power
    // cycles must still leave zero commands in flight and a terminal
    // audit record (completed or failed) for every command that went on
    // the wire.
    let mut sim = Cluster::build(ClusterConfig {
        n_nodes: 12,
        seed: 4242,
        workload: WorkloadMix::Constant(0.3),
        icebox_command_loss: 0.10,
        ..Default::default()
    });
    sim.run_for(SimDuration::from_secs(200));
    for n in 0..12 {
        power_off_node(&mut sim, n);
    }
    sim.run_for(SimDuration::from_secs(120));
    for n in 0..12 {
        power_on_node(&mut sim, n);
    }
    sim.run_for(SimDuration::from_secs(240));
    for n in 0..6 {
        power_off_node(&mut sim, n);
    }
    sim.run_for(SimDuration::from_secs(240));

    let cp = &sim.world().control;
    assert_eq!(cp.outstanding(), 0, "no command may be left in flight");
    let stats = cp.stats();
    assert!(
        stats.retries > 0,
        "10% loss over 30 commands must cause retries: {stats:?}"
    );
    let (mut fired, mut completed, mut failed) = (0u64, 0u64, 0u64);
    for r in cp.audit() {
        match &r.entry {
            AuditEntry::CommandIssued { attempt: 1, .. } => fired += 1,
            AuditEntry::CommandCompleted { .. } => completed += 1,
            AuditEntry::CommandFailed { .. } => failed += 1,
            _ => {}
        }
    }
    assert!(fired >= 30, "the burst reached the wire: {fired}");
    assert_eq!(
        fired,
        completed + failed,
        "every fired command must reach a terminal audit state"
    );
    assert_eq!(
        completed + failed,
        stats.commands_completed + stats.commands_failed,
        "stats agree with the audit trail"
    );
}
