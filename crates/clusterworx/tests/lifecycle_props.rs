//! Property tests on the lifecycle state machine: the transition table
//! rejects every illegal edge, the tracker never corrupts state when it
//! refuses one, and quarantine is entered and left only through the
//! edges the flap-detection design promises.

use clusterworx::lifecycle::{legal_transition, LifecycleTracker};
use clusterworx::{FailReason, LifecycleState};
use cwx_util::time::{SimDuration, SimTime};
use proptest::prelude::*;

use LifecycleState::*;

/// Every inhabitant of the state space, `Failed` reasons included.
const ALL_STATES: [LifecycleState; 11] = [
    Off,
    PoweringOn,
    Bios,
    Cloning,
    Up,
    Draining,
    Halted,
    Quarantined,
    Failed(FailReason::MemoryCheck),
    Failed(FailReason::Burned),
    Failed(FailReason::Unresponsive),
];

// The vendored proptest has no select/map combinators: draw indices
// into ALL_STATES instead.
fn state(i: usize) -> LifecycleState {
    ALL_STATES[i % ALL_STATES.len()]
}

/// Force a fresh one-node tracker into `state` (legality aside).
fn tracker_in(state: LifecycleState) -> LifecycleTracker {
    let mut t = LifecycleTracker::new(1);
    t.force(SimTime::ZERO, 0, state);
    assert_eq!(t.state(0), state);
    t
}

/// Exhaustive, not sampled: the tracker agrees with the table on every
/// one of the 11 × 11 edges — refusals leave state and log untouched.
#[test]
fn tracker_agrees_with_the_table_on_every_edge() {
    for &from in &ALL_STATES {
        for &to in &ALL_STATES {
            let mut t = tracker_in(from);
            let log_before = t.log().len();
            let now = SimTime::ZERO + SimDuration::from_secs(1);
            let got = t.transition(now, 0, to);
            if legal_transition(from, to) {
                let tr = got.unwrap_or_else(|| panic!("legal {from:?} -> {to:?} refused"));
                assert_eq!((tr.from, tr.to), (from, to));
                assert_eq!(t.state(0), to);
                assert_eq!(t.log().len(), log_before + 1);
            } else {
                assert!(got.is_none(), "illegal {from:?} -> {to:?} accepted");
                assert_eq!(t.state(0), from, "refusal must not move the node");
                assert_eq!(t.log().len(), log_before, "refusal must not log");
            }
        }
    }
}

/// The quarantine promise, restated independently of the table: a node
/// enters `Quarantined` only from a plain power/failure state — never
/// mid-drain, mid-clone, or when already quarantined — and leaves only
/// through an explicit release (power-on) or park (off). The single
/// exception is hardware truth outranking the machine: a CPU can burn
/// in any state, quarantine included.
#[test]
fn quarantine_entry_and_exit_edges_match_the_design() {
    for &s in &ALL_STATES {
        let may_enter = matches!(s, Off | PoweringOn | Bios | Up | Halted | Failed(_));
        assert_eq!(
            legal_transition(s, Quarantined),
            may_enter,
            "entry from {s:?}"
        );
        let may_exit = matches!(s, Off | PoweringOn | Failed(FailReason::Burned));
        assert_eq!(legal_transition(Quarantined, s), may_exit, "exit to {s:?}");
    }
}

proptest! {
    /// Self-loops are caller bugs: never a legal transition, from any
    /// state.
    #[test]
    fn self_loops_are_always_rejected(i in 0usize..11) {
        let s = state(i);
        prop_assert!(!legal_transition(s, s));
        let mut t = tracker_in(s);
        prop_assert!(t.transition(SimTime::ZERO + SimDuration::from_secs(1), 0, s).is_none());
        prop_assert_eq!(t.state(0), s);
    }

    /// A random walk of transition *requests* produces a log whose every
    /// recorded edge is legal and whose edges chain (each `from` is the
    /// previous `to`), no matter how many requests were refused along
    /// the way.
    #[test]
    fn random_request_walks_log_only_legal_chained_edges(
        targets in proptest::collection::vec(0usize..11, 1..80)
    ) {
        let mut t = LifecycleTracker::new(1);
        let mut now = SimTime::ZERO;
        for &ti in &targets {
            let to = state(ti);
            now += SimDuration::from_secs(1);
            let before = t.state(0);
            match t.transition(now, 0, to) {
                Some(tr) => {
                    prop_assert!(legal_transition(tr.from, tr.to));
                    prop_assert_eq!(tr.from, before);
                    prop_assert_eq!(t.state(0), to);
                }
                None => prop_assert_eq!(t.state(0), before, "refusal moved the node"),
            }
        }
        let mut prev = Off; // nodes are born Off
        for tr in t.log() {
            prop_assert!(legal_transition(tr.from, tr.to), "logged illegal edge {tr:?}");
            prop_assert_eq!(tr.from, prev, "log does not chain at {tr:?}");
            prev = tr.to;
        }
        prop_assert_eq!(t.state(0), prev);
    }

    /// Quarantine inside random walks: whenever the walk manages to
    /// enter or leave `Quarantined`, the logged edge is one of the
    /// design's — entries from power/failure states, exits to
    /// `Off`/`PoweringOn` only.
    #[test]
    fn walks_cross_quarantine_only_on_design_edges(
        targets in proptest::collection::vec(0usize..11, 1..120)
    ) {
        let mut t = LifecycleTracker::new(1);
        let mut now = SimTime::ZERO;
        for &ti in &targets {
            now += SimDuration::from_secs(1);
            t.transition(now, 0, state(ti));
        }
        for tr in t.log() {
            if tr.to == Quarantined {
                prop_assert!(
                    matches!(tr.from, Off | PoweringOn | Bios | Up | Halted | Failed(_)),
                    "bad quarantine entry {tr:?}"
                );
            }
            if tr.from == Quarantined {
                prop_assert!(
                    matches!(tr.to, Off | PoweringOn | Failed(FailReason::Burned)),
                    "bad quarantine exit {tr:?}"
                );
            }
        }
    }
}
