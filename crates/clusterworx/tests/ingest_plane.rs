//! The connection-oriented ingest plane, attacked from outside the
//! crate: wire fragmentation, hostile tails, slow consumers, and the
//! reactor-vs-baseline differential.

use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use clusterworx::actions::{AuditEntry, ControlPlane};
use clusterworx::ingest::{
    drive, scripted_report, IngestConfig, IngestMode, IngestServer, LoadConfig,
};
use clusterworx::server::Server;
use cwx_monitor::monitor::{MonitorKey, Value};
use cwx_monitor::transmit::{Report, WireDecoder, WireEncoder};
use cwx_net::frame::{put_frame, FrameBuffer};
use cwx_store::disk::{DiskStore, StoreConfig};
use cwx_store::Store;
use cwx_util::time::{SimDuration, SimTime};
use parking_lot::{Mutex, RwLock};
use proptest::prelude::*;

fn test_server() -> Arc<RwLock<Server>> {
    Arc::new(RwLock::new(Server::new(
        "ingest-plane-test",
        SimDuration::from_secs(5),
        4096,
        SimDuration::from_secs(60),
    )))
}

/// A deterministic report stream for one node, with enough value
/// variety to exercise the delta chains and dictionary machinery.
fn report_stream(node: u32, n: usize) -> Vec<Report> {
    (0..n)
        .map(|i| {
            let mut values = vec![
                (
                    MonitorKey::new("load.one"),
                    Value::Num(node as f64 + i as f64 * 0.25),
                ),
                (
                    MonitorKey::new("mem.free"),
                    Value::Num(1e9 - i as f64 * 4096.0),
                ),
            ];
            if i % 3 == 0 {
                values.push((MonitorKey::new("net.state"), Value::Text(format!("up-{i}"))));
            }
            Report {
                node,
                seq: i as u64,
                time_secs: i as f64 * 0.5,
                values,
            }
        })
        .collect()
}

/// Encode a report stream into framed wire bytes, returning both the
/// wire and the frame payload boundaries.
fn framed_wire(reports: &[Report]) -> (Vec<u8>, Vec<Vec<u8>>) {
    let mut enc = WireEncoder::new();
    let mut wire = Vec::new();
    let mut payloads = Vec::new();
    let mut payload = Vec::new();
    for r in reports {
        enc.encode_into(r, &mut payload);
        put_frame(&mut wire, &payload);
        payloads.push(payload.clone());
    }
    (wire, payloads)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Satellite: a CWB1 stream chopped at arbitrary byte boundaries
    /// decodes to exactly the same reports as a single-shot decode —
    /// partial frames must survive readiness-event boundaries.
    #[test]
    fn fragmented_stream_decodes_identically(
        node in 0u32..1000,
        n_reports in 1usize..20,
        cuts in proptest::collection::vec(0usize..10_000, 0..40),
    ) {
        let reports = report_stream(node, n_reports);
        let (wire, payloads) = framed_wire(&reports);

        // reference: decode each payload whole, in order
        let mut reference = Vec::new();
        let mut dec = WireDecoder::new();
        for p in &payloads {
            reference.push(dec.decode_auto(p).expect("valid payload"));
        }

        // fragmented: the same bytes through a FrameBuffer in chunks
        // cut at arbitrary positions
        let mut boundaries: Vec<usize> = cuts.iter().map(|c| c % (wire.len() + 1)).collect();
        boundaries.push(0);
        boundaries.push(wire.len());
        boundaries.sort_unstable();
        boundaries.dedup();
        let mut fb = FrameBuffer::new(1 << 20);
        let mut dec = WireDecoder::new();
        let mut decoded = Vec::new();
        for w in boundaries.windows(2) {
            fb.extend(&wire[w[0]..w[1]]);
            while let Some(frame) = fb.next_frame().expect("no oversize in valid stream") {
                decoded.push(dec.decode_auto(frame).expect("valid frame"));
            }
        }
        prop_assert_eq!(decoded, reference);
    }

    /// Satellite: truncating the stream mid-frame and corrupting the
    /// tail never panics; every frame before the damage still decodes.
    #[test]
    fn corrupt_or_truncated_tail_never_panics(
        node in 0u32..1000,
        n_reports in 1usize..12,
        cut_at in 0usize..10_000,
        flip_pos in 0usize..10_000,
        flip_xor in 0u8..=255, // 0 = no corruption, just truncation
    ) {
        let reports = report_stream(node, n_reports);
        let (wire, payloads) = framed_wire(&reports);
        let cut = cut_at % (wire.len() + 1);
        let mut mangled = wire[..cut].to_vec();
        let mut damage_from = cut;
        if flip_xor != 0 && !mangled.is_empty() {
            let p = flip_pos % mangled.len();
            mangled[p] ^= flip_xor;
            damage_from = damage_from.min(p);
        }

        // frames wholly before the damage must still decode; nothing
        // may panic after it
        let mut intact = 0usize;
        {
            let mut off = 0;
            for p in &payloads {
                let end = off + 4 + p.len();
                if end <= damage_from {
                    intact += 1;
                    off = end;
                } else {
                    break;
                }
            }
        }
        let mut fb = FrameBuffer::new(1 << 20);
        fb.extend(&mangled);
        let mut dec = WireDecoder::new();
        let mut ok = 0usize;
        loop {
            match fb.next_frame() {
                Ok(Some(frame)) => {
                    // errors allowed (the reactor audits + counts them);
                    // panics are not
                    if let Ok(r) = dec.decode_auto(frame) {
                        if ok < intact {
                            prop_assert_eq!(&r, &reports[ok]);
                        }
                        ok += 1;
                    }
                }
                Ok(None) => break,
                Err(_) => break, // corrupt length prefix: framing lost, conn dies
            }
        }
        prop_assert!(ok >= intact, "frames before the damage decoded");
    }
}

/// Satellite: a slow consumer trips lane backpressure (audited), gets
/// evicted after the pause bound, and never stalls traffic on other
/// lanes.
#[test]
fn slow_consumer_is_evicted_while_other_lanes_flow() {
    let control = Arc::new(Mutex::new(ControlPlane::new(8)));
    let server = test_server();
    let cfg = IngestConfig {
        n_lanes: 2,
        nodes_per_group: 1, // node 0 → lane 0, node 1 → lane 1
        batch_samples: 8,
        batch_delay: Duration::from_millis(5),
        lane_queue_batches: 1,
        evict_pause: Duration::from_millis(100),
        // one report wedges the lane-1 flusher for far longer than the
        // eviction bound: a genuinely stuck consumer, not a slow one
        flush_stall: Some(Duration::from_millis(200)),
        stall_lane: Some(1),
        ..IngestConfig::default()
    };
    let ingest = IngestServer::start(
        cfg,
        Arc::clone(&server),
        None,
        Arc::clone(&control),
        Instant::now(),
    )
    .unwrap();
    let addr = ingest.addr();

    // node 1: drips frames into the stalled lane, holding its socket
    // open — only eviction may close it
    let flood = std::thread::spawn(move || {
        let mut s = TcpStream::connect(addr).unwrap();
        let mut enc = WireEncoder::new();
        let mut payload = Vec::new();
        let mut frame = Vec::new();
        for seq in 0..30u64 {
            let r = scripted_report(1, seq, Duration::from_millis(1), 8);
            enc.encode_into(&r, &mut payload);
            frame.clear();
            put_frame(&mut frame, &payload);
            if s.write_all(&frame).is_err() {
                break; // evicted — expected
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        std::thread::sleep(Duration::from_millis(300));
    });

    // node 0: steady traffic on the healthy lane
    let healthy = std::thread::spawn(move || {
        let mut s = TcpStream::connect(addr).unwrap();
        let mut enc = WireEncoder::new();
        let mut payload = Vec::new();
        let mut frame = Vec::new();
        let mut sent = 0u64;
        for seq in 0..60u64 {
            let r = scripted_report(0, seq, Duration::from_millis(2), 8);
            enc.encode_into(&r, &mut payload);
            frame.clear();
            put_frame(&mut frame, &payload);
            if s.write_all(&frame).is_ok() {
                sent += 1;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        sent
    });

    let healthy_sent = healthy.join().unwrap();
    flood.join().unwrap();
    let stats = ingest.stats();
    ingest.shutdown();

    assert_eq!(healthy_sent, 60, "healthy lane never blocked the sender");
    assert!(
        stats.backpressure_trips >= 1,
        "stalled lane tripped backpressure: {stats:?}"
    );
    assert!(stats.evicted >= 1, "slow consumer was evicted: {stats:?}");
    let srv = server.read();
    assert_eq!(
        srv.node_status(0).map(|s| s.reports),
        Some(60),
        "every healthy-lane report was ingested despite the stalled lane"
    );
    let control = control.lock();
    let audit = control.audit();
    assert!(
        audit
            .iter()
            .any(|r| matches!(r.entry, AuditEntry::IngestBackpressure { lane: 1, .. })),
        "backpressure audited for the stalled lane"
    );
    assert!(
        audit.iter().any(|r| matches!(
            &r.entry,
            AuditEntry::ConnectionEvicted { reason } if reason.contains("slow consumer")
        )),
        "eviction audited"
    );
}

/// Tentpole acceptance: the reactor and the thread-per-connection
/// baseline, fed identical scripted traffic, leave byte-identical
/// sample sets in the store.
#[test]
fn reactor_and_baseline_store_identical_contents() {
    let run = |mode: IngestMode, dir: &std::path::Path| -> Arc<DiskStore> {
        let store = Arc::new(
            DiskStore::open(
                dir,
                StoreConfig {
                    n_shards: 2,
                    nodes_per_group: 4,
                    ..StoreConfig::default()
                },
            )
            .unwrap(),
        );
        let control = Arc::new(Mutex::new(ControlPlane::new(8)));
        let server = test_server();
        let ingest = IngestServer::start(
            IngestConfig {
                mode,
                n_lanes: 2,
                nodes_per_group: 4,
                batch_delay: Duration::from_millis(5),
                ..IngestConfig::default()
            },
            server,
            Some(Arc::clone(&store)),
            control,
            Instant::now(),
        )
        .unwrap();
        let load = LoadConfig {
            addr: ingest.addr().to_string(),
            conns: 8,
            frames_per_conn: 10,
            interval: Duration::from_millis(2),
            writer_threads: 4,
            keys: 4,
            ..LoadConfig::default()
        };
        let sent = drive(load).unwrap();
        assert_eq!(sent.frames_sent, 80);
        assert_eq!(sent.write_errors, 0);
        let ingested = ingest.shutdown();
        assert_eq!(ingested, 80, "every frame ingested ({mode:?})");
        store.flush_all().unwrap();
        store
    };

    let base = std::env::temp_dir().join(format!("cwx-ingest-diff-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let a = run(IngestMode::Reactor, &base.join("reactor"));
    let b = run(IngestMode::ThreadPerConn, &base.join("baseline"));

    assert_eq!(a.total_samples(), b.total_samples());
    assert_eq!(a.total_samples(), 8 * 10 * 4);
    for node in 0..8u32 {
        for k in 0..4 {
            let key = format!("bench.m{k}");
            let sa = a.range(node, &key, SimTime::ZERO, SimTime::MAX);
            let sb = b.range(node, &key, SimTime::ZERO, SimTime::MAX);
            assert_eq!(sa.len(), 10, "node{node} {key} sample count");
            assert_eq!(sa, sb, "node{node} {key} samples differ across modes");
        }
    }
    let _ = std::fs::remove_dir_all(base);
}
