//! Out-of-band monitoring passes: ICE Box probe sampling and the
//! server's housekeeping/liveness tick.
//!
//! Split out of the old `world.rs` god module. Both passes derive their
//! "is this node supposed to be running?" gating from the control
//! plane's lifecycle machine ([`crate::lifecycle`]) instead of the
//! ad-hoc `expected_up`/`up_since` booleans the world used to carry.

use cwx_icebox::chassis::ProbeReading;
use cwx_monitor::monitor::MonitorKey;
use cwx_util::sim::Sim;

use crate::world::{execute_pending_actions, World};

/// Sample the ICE Box probes and feed them to the server out-of-band.
///
/// A single fleet-wide pass over the dense node vector: the chassis,
/// node, and server borrows are split once instead of re-borrowing the
/// world per node.
pub(crate) fn probe_tick(sim: &mut Sim<World>) {
    let now = sim.now();
    {
        let World {
            nodes,
            iceboxes,
            server,
            control,
            ..
        } = sim.world_mut();
        let lifecycle = control.lifecycle();
        for (i, st) in nodes.iter().enumerate() {
            let (bx, port) = World::rack_of(i as u32);
            let reading = ProbeReading {
                temp_c: st.hw.temperature_c(),
                watts: st.hw.power_watts(),
                fan_rpm: st.hw.fan_rpm(),
            };
            iceboxes[bx].record_probe(port, reading);
            // Feed the event engine only for nodes that are supposed to
            // be running: a node mid-boot (or whose outlet is still in
            // its sequenced energize window) legitimately draws nothing
            // and must not trip the PSU/fan rules.
            let relay_on = iceboxes[bx].relay_on(port);
            let settled = iceboxes[bx].pending_energize(port).is_none();
            let expected = st.hw.is_up()
                || lifecycle.state(i as u32).expects_os()
                || matches!(
                    st.hw.health(),
                    cwx_hw::HealthState::PsuFailed | cwx_hw::HealthState::Burned
                );
            if relay_on && settled && expected {
                server.record_probe(
                    now,
                    i as u32,
                    reading.temp_c,
                    reading.watts,
                    reading.fan_rpm,
                );
            }
        }
    }
    execute_pending_actions(sim);
}

/// Flush mail, check liveness via the UDP echo probe.
///
/// The echo travels the same management network the reports do, so the
/// model uses the evidence the server actually has: a node answers the
/// echo iff its OS is up *and* its reports have been arriving. A grace
/// window after boot keeps a freshly started agent from reading as dead
/// before its first report lands.
pub(crate) fn housekeeping_tick(sim: &mut Sim<World>) {
    let now = sim.now();
    let key = MonitorKey::new("net.connectivity");
    {
        let w = sim.world_mut();
        let stale = w.cfg.effective_stale_after();
        let World {
            nodes,
            server,
            control,
            ..
        } = w;
        let lifecycle = control.lifecycle();
        for (i, st) in nodes.iter().enumerate() {
            let Some(up_since) = lifecycle.up_since(i as u32) else {
                continue;
            };
            if now.since(up_since) <= stale {
                continue; // grace period after boot
            }
            let heard_recently = server
                .node_status(i as u32)
                .map(|s| now.since(s.last_report) <= stale)
                .unwrap_or(false);
            let echo = st.hw.is_up() && heard_recently;
            server.observe(now, i as u32, &key, echo as u8 as f64);
        }
    }
    execute_pending_actions(sim);
    sim.world_mut().server.housekeeping(now);
}
