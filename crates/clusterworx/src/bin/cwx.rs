//! `cwx` — command-line frontend for the ClusterWorX reproduction.
//!
//! ```text
//! cwx simulate --nodes 32 --secs 600 [--seed 42] [--fan-fail 4@300]...
//! cwx clone    --nodes 100 --image-mb 650 [--loss 0.005] [--unicast]
//! cwx lite     [--ticks 5]
//! cwx help
//! ```

use clusterworx::world::schedule_fault;
use clusterworx::{dashboard, Cluster, ClusterConfig, LiteMonitor, WorkloadMix};
use cwx_clone::protocol::{run_clone, CloneConfig, RepairStrategy};
use cwx_hw::node::Fault;
use cwx_monitor::snapshot::Sensors;
use cwx_net::FAST_ETHERNET_BPS;
use cwx_util::time::{SimDuration, SimTime};

fn usage() -> ! {
    eprintln!(
        "usage:\n  cwx simulate --nodes N --secs S [--seed X] [--fan-fail NODE@SECS]... [--dump-history FILE --dump-node N]\n  cwx clone --nodes N --image-mb M [--loss P] [--unicast]\n  cwx lite [--ticks N]\n  cwx help"
    );
    std::process::exit(2);
}

/// Tiny flag parser: `--key value` pairs plus repeatable `--fan-fail`.
struct Args {
    pairs: Vec<(String, String)>,
    flags: Vec<String>,
}

impl Args {
    fn parse(args: &[String]) -> Args {
        let mut pairs = Vec::new();
        let mut flags = Vec::new();
        let mut i = 0;
        while i < args.len() {
            let a = &args[i];
            if let Some(key) = a.strip_prefix("--") {
                if i + 1 < args.len() && !args[i + 1].starts_with("--") {
                    pairs.push((key.to_string(), args[i + 1].clone()));
                    i += 2;
                } else {
                    flags.push(key.to_string());
                    i += 1;
                }
            } else {
                eprintln!("unexpected argument: {a}");
                usage();
            }
        }
        Args { pairs, flags }
    }

    fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        self.pairs
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .and_then(|(_, v)| v.parse().ok())
            .unwrap_or(default)
    }

    fn all(&self, key: &str) -> Vec<&str> {
        self.pairs.iter().filter(|(k, _)| k == key).map(|(_, v)| v.as_str()).collect()
    }

    fn flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }
}

fn cmd_simulate(args: &Args) {
    let nodes: u32 = args.get("nodes", 16);
    let secs: u64 = args.get("secs", 600);
    let seed: u64 = args.get("seed", 42);
    let mut sim = Cluster::build(ClusterConfig {
        n_nodes: nodes,
        seed,
        workload: WorkloadMix::Mixed,
        ..Default::default()
    });
    for spec in args.all("fan-fail") {
        let Some((node, at)) = spec.split_once('@') else {
            eprintln!("--fan-fail wants NODE@SECS, got {spec}");
            usage();
        };
        let (node, at): (u32, u64) = match (node.parse(), at.parse()) {
            (Ok(n), Ok(a)) => (n, a),
            _ => usage(),
        };
        schedule_fault(&mut sim, SimTime::ZERO + SimDuration::from_secs(at), node, Fault::FanFailure);
        println!("scheduled fan failure: node{node:03} at t={at}s");
    }
    sim.run_for(SimDuration::from_secs(secs));
    let w = sim.world();
    println!("{}", dashboard::render(w, sim.now()));
    let st = w.server.stats();
    println!(
        "server: {} reports / {} values / {} B on the wire / {} decode errors",
        st.reports_rx, st.values_rx, st.bytes_rx, st.decode_errors
    );
    if !w.action_log.is_empty() {
        println!("actions taken:");
        for a in &w.action_log {
            println!("  {}: node{:03} {:?}", a.time, a.node, a.action);
        }
    }
    for m in w.server.outbox() {
        println!("mail: {}", m.subject);
    }
    if let Some((_, path)) = args.pairs.iter().find(|(k, _)| k == "dump-history") {
        let node: u32 = args.get("dump-node", 0);
        let csv = w.server.history().export_node_csv(node);
        match std::fs::write(path, &csv) {
            Ok(()) => println!("wrote {} bytes of node{node:03} history to {path}", csv.len()),
            Err(e) => eprintln!("could not write {path}: {e}"),
        }
    }
}

fn cmd_clone(args: &Args) {
    let nodes: u32 = args.get("nodes", 100);
    let image_mb: u64 = args.get("image-mb", 650);
    let loss: f64 = args.get("loss", 0.005);
    let seed: u64 = args.get("seed", 42);
    let strategy =
        if args.flag("unicast") { RepairStrategy::Unicast } else { RepairStrategy::MulticastRoundRobin };
    let cfg = CloneConfig { image_bytes: image_mb << 20, strategy, ..CloneConfig::default() };
    println!(
        "cloning {image_mb} MiB to {nodes} nodes ({}), {:.2}% chunk loss...",
        if args.flag("unicast") { "unicast baseline" } else { "reliable multicast" },
        loss * 100.0
    );
    let r = run_clone(seed, nodes, FAST_ETHERNET_BPS, loss, cfg);
    println!(
        "stream {:.1}s | all data {:.1}s | all nodes up {:.1} min | wire {:.2} GB | {} repairs | {} failed",
        r.stream_secs,
        r.data_complete_secs,
        r.makespan_secs / 60.0,
        r.wire_bytes as f64 / 1e9,
        r.repair_chunks,
        r.failed_nodes
    );
}

fn cmd_lite(args: &Args) {
    let ticks: u64 = args.get("ticks", 5);
    let src = cwx_proc::source::RealProc::new();
    if !src.available() {
        eprintln!("no /proc on this host; `cwx lite` needs Linux");
        std::process::exit(1);
    }
    let mut lite = LiteMonitor::new(src, "localhost").expect("lite monitor");
    println!("ClusterWorX Lite on the local /proc ({ticks} ticks, 1 s apart):");
    let mut now = SimTime::ZERO;
    for i in 0..ticks {
        now += SimDuration::from_secs(1);
        std::thread::sleep(std::time::Duration::from_secs(1));
        let tick = lite
            .tick(
                now,
                Sensors { fan_rpm: 6000.0, power_watts: 120.0, udp_echo_ok: true, ..Default::default() },
            )
            .expect("tick");
        let load = lite
            .history()
            .latest(0, &cwx_monitor::monitor::MonitorKey::new("load.one"))
            .map(|s| s.value)
            .unwrap_or(f64::NAN);
        let memfree = lite
            .history()
            .latest(0, &cwx_monitor::monitor::MonitorKey::new("mem.free"))
            .map(|s| s.value)
            .unwrap_or(f64::NAN);
        println!(
            "  tick {i}: {} changed values | load {load:.2} | mem free {:.0} MB | {} events",
            tick.changed_values,
            memfree / 1024.0,
            tick.fired.len()
        );
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = argv.split_first() else { usage() };
    let args = Args::parse(rest);
    match cmd.as_str() {
        "simulate" => cmd_simulate(&args),
        "clone" => cmd_clone(&args),
        "lite" => cmd_lite(&args),
        "help" | "--help" | "-h" => usage(),
        other => {
            eprintln!("unknown command: {other}");
            usage();
        }
    }
}
