//! Provisioning operations on a live cluster: cloning an image to a
//! node group and adding new nodes.
//!
//! "With ClusterWorX, cloning an image or adding a node to the cluster
//! becomes as simple as a few mouse clicks. Administrators are able to
//! load the OS and applications to build the required functionality into
//! an image. Then ClusterWorX automatically clones the images to
//! selected nodes."
//!
//! Cloning uses two-level simulation: the detailed multicast protocol
//! (`cwx-clone`) runs as an inner deterministic simulation to obtain the
//! per-node completion times, which are then replayed as world events —
//! the nodes drop out of monitoring, sit dark while the image streams,
//! and come back (with the new image recorded) exactly when the protocol
//! says they would.

use cwx_clone::image::Image;
use cwx_clone::protocol::{run_clone, CloneConfig};
use cwx_util::sim::Sim;
use cwx_util::time::SimDuration;

use crate::groups::Groups;
use crate::world::{power_off_node, power_on_node, World};

/// The image stamp a provisioned node carries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InstalledImage {
    /// Image name.
    pub name: String,
    /// Image version.
    pub version: u32,
    /// Checksum at install time.
    pub checksum: u64,
}

/// Outcome of a group-clone operation.
#[derive(Debug, Clone, PartialEq)]
pub struct CloneOutcome {
    /// Nodes targeted.
    pub targets: Vec<u32>,
    /// Inner-protocol makespan (first power-off to last node back).
    pub makespan_secs: f64,
    /// Repair chunks the protocol needed.
    pub repair_chunks: u64,
}

/// Clone `image` to every member of `group`. Nodes power off, receive
/// the stream, write their disks, and boot back with the new image.
/// Returns `None` for an empty group.
pub fn clone_image_to_group(
    sim: &mut Sim<World>,
    groups: &Groups,
    group: &str,
    image: &Image,
    loss: f64,
) -> Option<CloneOutcome> {
    let targets = groups.members(group);
    if targets.is_empty() {
        return None;
    }
    // inner simulation: the full reliable-multicast protocol
    let (seed, bandwidth, firmware) = {
        let w = sim.world();
        (w.cfg.seed ^ 0xc10e, w.cfg.bandwidth_bps, w.cfg.firmware)
    };
    let report = run_clone(
        seed,
        targets.len() as u32,
        bandwidth,
        loss,
        CloneConfig {
            image_bytes: image.size_bytes,
            firmware,
            ..CloneConfig::default()
        },
    );

    // replay: targets go dark now, claimed by the provisioning overlay
    // state (deliberately dark while the image streams)
    for &node in &targets {
        power_off_node(sim, node);
        let now = sim.now();
        sim.world_mut().control.note_cloning(now, node);
    }
    // ...and come back at their protocol-determined completion times
    // (power_on_node replays the boot; subtract the boot the protocol
    // already accounted for by scheduling power-on a boot-length early
    // is needless precision — the shape is per-node staggered returns)
    let stamp = InstalledImage {
        name: image.name.clone(),
        version: image.version,
        checksum: image.checksum,
    };
    for (k, &node) in targets.iter().enumerate() {
        let when = report.per_node_operational[k];
        if !when.is_finite() {
            // the protocol evicted this node (dead receiver / broken
            // control channel): tell the control plane when the session
            // wraps up instead of leaving it parked in Cloning forever
            let at = SimDuration::from_secs_f64(report.makespan_secs.max(0.0));
            sim.schedule_in(at, move |sim| {
                let now = sim.now();
                sim.world_mut().control.note_clone_failed(now, node);
            });
            continue;
        }
        let stamp = stamp.clone();
        sim.schedule_in(SimDuration::from_secs_f64(when), move |sim| {
            sim.world_mut().nodes[node as usize].image = Some(stamp.clone());
            power_on_node(sim, node);
        });
    }
    Some(CloneOutcome {
        targets,
        makespan_secs: report.makespan_secs,
        repair_chunks: report.repair_chunks,
    })
}

/// Add a brand-new node to the running cluster: racked into the next
/// free ICE Box port, attached to the management segment, powered on.
/// Returns its node id.
pub fn add_node(sim: &mut Sim<World>) -> u32 {
    let node = {
        let w = sim.world_mut();
        let node = w.nodes.len() as u32;
        let workload = cwx_hw::workload::Workload::Idle;
        w.nodes.push(crate::world::NodeState {
            hw: cwx_hw::node::NodeHardware::new(
                cwx_hw::NodeId(node),
                cwx_hw::node::ThermalConfig::default(),
                workload,
            ),
            bios: cwx_bios::BiosChip::new(w.cfg.firmware),
            agent: None,
            pending_boot: Vec::new(),
            image: None,
            agent_fault: None,
            rng: crate::world::node_rng(w.cfg.seed, node),
        });
        w.control.add_node();
        // a new chassis every 10 nodes
        let (bx, _) = World::rack_of(node);
        while w.iceboxes.len() <= bx {
            w.iceboxes.push(cwx_icebox::chassis::IceBox::new());
        }
        // attach to the management network: its rack's segment on the
        // rack topology (adding one for a fresh chassis), else the
        // single shared segment
        let seg = if w.cfg.rack_network {
            while w.net.segment_count() <= 1 + bx {
                let (bw, lat, loss) = (
                    w.cfg.bandwidth_bps,
                    SimDuration::from_micros(100),
                    w.cfg.loss,
                );
                w.net.add_segment(bw, lat, loss);
            }
            w.rack_segment(bx)
        } else {
            w.net
                .segment_of(World::SERVER_ADDR)
                .expect("server attached")
        };
        w.net.attach(World::addr_of(node), seg);
        w.cfg.n_nodes += 1;
        node
    };
    power_on_node(sim, node);
    node
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ClusterConfig;
    use crate::world::Cluster;
    use cwx_clone::image::ImageManager;
    use cwx_monitor::monitor::MonitorKey;

    #[test]
    fn group_clone_replays_the_protocol_in_the_world() {
        let mut sim = Cluster::build(ClusterConfig {
            n_nodes: 12,
            seed: 71,
            ..Default::default()
        });
        sim.run_for(SimDuration::from_secs(120));
        assert_eq!(sim.world().up_count(), 12);

        let mut mgr = ImageManager::with_prebuilt();
        let id = mgr.build(
            "rh73-new",
            cwx_clone::image::ImageKind::HardDisk,
            64 << 20,
            &["kernel-2.4.20"],
        );
        let image = mgr.get(id).unwrap().clone();

        let groups = Groups::by_rack(12);
        let outcome = clone_image_to_group(&mut sim, &groups, "rack0", &image, 0.005)
            .expect("nonempty group");
        assert_eq!(outcome.targets.len(), 10);

        // mid-clone: rack0 is dark, rack1 keeps working
        sim.run_for(SimDuration::from_secs(10));
        assert!(sim.world().up_count() <= 2);

        // after the protocol makespan (+boot margin) everyone is back
        sim.run_for(SimDuration::from_secs_f64(outcome.makespan_secs + 120.0));
        let w = sim.world();
        assert_eq!(w.up_count(), 12, "all nodes back after cloning");
        for &n in &outcome.targets {
            let img = w.nodes[n as usize].image.as_ref().expect("image stamped");
            assert_eq!(img.name, "rh73-new");
        }
        assert!(w.nodes[10].image.is_none(), "rack1 untouched");
        // monitoring resumed on recloned nodes
        assert!(w
            .server
            .history()
            .latest(0, &MonitorKey::new("uptime.secs"))
            .is_some());
    }

    #[test]
    fn empty_group_clone_is_none() {
        let mut sim = Cluster::build(ClusterConfig {
            n_nodes: 2,
            ..Default::default()
        });
        let mgr = ImageManager::with_prebuilt();
        let image = mgr.find("rh73-compute").unwrap().clone();
        assert!(clone_image_to_group(&mut sim, &Groups::new(), "nope", &image, 0.0).is_none());
    }

    #[test]
    fn hot_added_node_joins_monitoring() {
        let mut sim = Cluster::build(ClusterConfig {
            n_nodes: 10,
            seed: 72,
            ..Default::default()
        });
        sim.run_for(SimDuration::from_secs(120));
        assert_eq!(sim.world().up_count(), 10);

        // "adding a node to the cluster becomes as simple as a few
        // mouse clicks" — node 10 lands in a fresh chassis
        let new = add_node(&mut sim);
        assert_eq!(new, 10);
        assert_eq!(sim.world().iceboxes.len(), 2);
        sim.run_for(SimDuration::from_secs(120));
        let w = sim.world();
        assert_eq!(w.up_count(), 11);
        assert!(w
            .server
            .node_status(new)
            .map(|s| s.reachable)
            .unwrap_or(false));
        assert!(w
            .server
            .history()
            .latest(new, &MonitorKey::new("load.one"))
            .is_some());
        // and it is probe-covered by its chassis
        let (bx, port) = World::rack_of(new);
        assert!(w.iceboxes[bx].probe(port).is_some());
    }
}
