//! ClusterWorX — the integrated cluster management framework.
//!
//! This crate assembles every substrate into the system the paper
//! describes: a simulated cluster of nodes (hardware + LinuxBIOS + the
//! monitoring agent) racked into ICE Box chassis on a shared network,
//! managed by a central ClusterWorX server that
//!
//! * receives and decodes the agents' consolidated, compressed reports,
//! * stores them in the history store for charting,
//! * samples the ICE Box probes out-of-band (so a hung node's
//!   temperature is still visible),
//! * evaluates administrator-defined events and executes their actions
//!   through the chassis (power-down / reboot / halt), and
//! * mails the administrator through the smart notifier.
//!
//! The whole thing runs on the deterministic discrete-event simulator:
//! [`Cluster::build`] wires the world and its recurring events, and the
//! experiment drivers (`crates/bench`) inject faults, advance time and
//! read the reports.
//!
//! ```
//! use clusterworx::{Cluster, ClusterConfig};
//! use cwx_util::time::SimDuration;
//!
//! let mut sim = Cluster::build(ClusterConfig { n_nodes: 4, ..ClusterConfig::default() });
//! sim.run_for(SimDuration::from_secs(120));
//! let up = sim.world().nodes.iter().filter(|n| n.hw.is_up()).count();
//! assert_eq!(up, 4);
//! ```

#![warn(missing_docs)]

pub mod actions;
pub mod config;
pub mod dashboard;
pub mod groups;
pub mod ingest;
pub mod lifecycle;
pub mod lite;
mod probes;
pub mod provisioning;
pub mod realtime;
pub mod scheduler;
pub mod server;
pub mod snapshot;
pub mod world;

pub use actions::{
    AuditEntry, AuditRecord, BootWatchdog, CommandTransport, ControlPlane, ControlStats, DrainGate,
    Effect, FlapPolicy, IssueOutcome, NoGate, PowerCmd, RetryPolicy, SuppressReason,
};
pub use config::{ClusterConfig, WorkloadMix};
pub use groups::Groups;
pub use lifecycle::{FailReason, LifecycleCounts, LifecycleState, LifecycleTracker, Transition};
pub use lite::LiteMonitor;
pub use provisioning::{add_node, clone_image_to_group};
pub use realtime::{RealTimeConfig, RealTimeDeployment};
pub use scheduler::{attach_scheduler, submit_job, SchedulerBridge};
pub use server::{ClusterSnapshot, NodeStatus, Server, ServerStats};
pub use world::{
    chassis_restart, schedule_fault, set_agent_fault, ActionLog, Cluster, NodeState, World,
};
