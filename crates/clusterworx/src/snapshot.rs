//! Canonical world-state capture for the snapshot subsystem.
//!
//! [`capture_sections`] walks every stateful component of a simulated
//! cluster — engine scheduling state, RNG streams, per-node hardware,
//! firmware, agents, the network, chassis, lifecycle chains, the audit
//! trail, the control plane, the server and its history store — and
//! renders each into a named section of canonical bytes.
//!
//! The capture is strictly read-only: it never drains queues (no
//! `take_actions`/`take_alarms`/`fed_snapshot`), never draws from an
//! RNG (stream positions are probed on clones), and never schedules an
//! event — so capturing at time *t* leaves the run byte-identical to a
//! run that never captured at all. That property is what makes
//! verified-replay resume sound: the straight run and the resumed run
//! both capture, compare, and neither is perturbed by it.
//!
//! Event closures in the timing wheel are deliberately *not*
//! serialized (they are arbitrary `FnOnce`/`FnMut` over the world);
//! instead the engine's ticket/slab layout is digested via
//! [`cwx_util::Sim::state_digest`] and resume re-derives the closures
//! by replaying the deterministic prefix, verifying every section
//! below matches the capture byte-for-byte.

use cwx_util::hash::{fnv1a, fnv1a_debug, fnv1a_fold_u64};
use cwx_util::rng::stream_probe;
use cwx_util::snapshot::{put_str, put_u32, put_u64};
use cwx_util::Sim;

use crate::world::World;

/// How many words each RNG stream probe draws from a cloned generator.
const PROBE_DRAWS: usize = 4;

/// Capture the complete state of a cluster world as named canonical
/// sections, in a fixed order. See the module docs for what each
/// section covers and why closures are excluded.
pub fn capture_sections(sim: &Sim<World>) -> Vec<(String, Vec<u8>)> {
    let w = sim.world();
    let n = w.nodes.len();
    let mut sections: Vec<(String, Vec<u8>)> = Vec::new();
    let mut push = |name: &str, data: Vec<u8>| sections.push((name.to_string(), data));

    // engine: clock, counters and the full wheel/slab digest
    let mut b = Vec::new();
    put_u64(&mut b, sim.now().as_nanos());
    put_u64(&mut b, sim.events_executed());
    put_u64(&mut b, sim.events_pending() as u64);
    put_u64(&mut b, sim.state_digest());
    push("engine", b);

    // rng: stream positions of every generator in the world
    let mut b = Vec::new();
    put_u64(&mut b, stream_probe(&w.rng, PROBE_DRAWS));
    put_u64(&mut b, stream_probe(&w.cmd_rng, PROBE_DRAWS));
    for st in &w.nodes {
        put_u64(&mut b, stream_probe(&st.rng, PROBE_DRAWS));
    }
    push("rng", b);

    // hw: every node's full hardware state, exact float bits
    let mut b = Vec::new();
    put_u32(&mut b, n as u32);
    for st in &w.nodes {
        st.hw.encode_state(&mut b);
    }
    push("hw", b);

    // bios: per-node firmware chip state
    let mut b = Vec::new();
    for st in &w.nodes {
        put_str(&mut b, &format!("{:?}", st.bios));
    }
    push("bios", b);

    // agents: presence, counters, injected faults, boot chains, images
    let mut b = Vec::new();
    for st in &w.nodes {
        match &st.agent {
            Some(a) => {
                b.push(1);
                put_str(&mut b, &format!("{:?}", a.stats()));
            }
            None => b.push(0),
        }
        put_str(&mut b, &format!("{:?}", st.agent_fault));
        put_u32(&mut b, st.pending_boot.len() as u32);
        put_str(&mut b, &format!("{:?}", st.image));
    }
    push("agents", b);

    // net: segments, topology, counters, loss-RNG stream
    let mut b = Vec::new();
    put_u64(&mut b, w.net.state_digest());
    push("net", b);

    // icebox: chassis relays, sequencer queues, probes, consoles
    let mut b = Vec::new();
    put_u32(&mut b, w.iceboxes.len() as u32);
    for bx in &w.iceboxes {
        put_str(&mut b, bx.firmware_version());
        for aux in 0..cwx_icebox::chassis::AUX_PORTS {
            b.push(bx.aux_outlet_on(aux) as u8);
        }
        for p in 0..cwx_icebox::NODE_PORTS {
            let port = cwx_icebox::PortId(p as u8);
            b.push(bx.relay_on(port) as u8);
            put_str(&mut b, &format!("{:?}", bx.pending_energize(port)));
            put_str(&mut b, &format!("{:?}", bx.probe_fault(port)));
            put_u64(&mut b, fnv1a(bx.console_log(port).as_bytes()));
            put_u64(&mut b, bx.console_overflow(port));
        }
    }
    push("icebox", b);

    // lifecycle: per-node chain position plus the full transition log
    let lc = w.control.lifecycle();
    let mut b = Vec::new();
    for node in 0..n as u32 {
        put_str(&mut b, &format!("{:?}", lc.state(node)));
        put_str(&mut b, &format!("{:?}", lc.since(node)));
        put_str(&mut b, &format!("{:?}", lc.up_since(node)));
    }
    for c in lc.counts().as_array() {
        put_u64(&mut b, c as u64);
    }
    put_u64(&mut b, lc.log().len() as u64);
    put_u64(&mut b, fnv1a_debug(lc.log()));
    push("lifecycle", b);

    // audit: the control plane's audit trail (the chaos report's hash)
    let mut b = Vec::new();
    put_u64(&mut b, w.control.audit().len() as u64);
    put_u64(&mut b, fnv1a_debug(w.control.audit()));
    push("audit", b);

    // control: command accounting, quarantine set, timed-work wakeups
    let mut b = Vec::new();
    put_str(&mut b, &format!("{:?}", w.control.stats()));
    put_u64(&mut b, w.control.outstanding() as u64);
    put_str(&mut b, &format!("{:?}", w.control.next_wakeup()));
    put_str(&mut b, &format!("{:?}", w.control_wake));
    for node in 0..n as u32 {
        b.push(w.control.quarantined(node) as u8);
    }
    push("control", b);

    // server: ingest counters, per-node status, notifier state
    let mut b = Vec::new();
    put_str(&mut b, &format!("{:?}", w.server.stats()));
    put_u64(&mut b, w.server.reachable_count() as u64);
    put_u64(&mut b, w.server.mails_suppressed());
    put_u64(&mut b, w.server.storms());
    put_u64(&mut b, w.server.outbox().len() as u64);
    put_u64(&mut b, fnv1a_debug(w.server.outbox()));
    for node in 0..n as u32 {
        put_str(&mut b, &format!("{:?}", w.server.node_status(node)));
    }
    b.push(w.scheduler.is_some() as u8);
    push("server", b);

    // store: the history store's full contents, one digest per node
    let mut b = Vec::new();
    let hist = w.server.history();
    put_u64(&mut b, hist.series_count() as u64);
    put_u64(&mut b, hist.total_samples());
    for node in 0..n as u32 {
        put_u64(&mut b, fnv1a(hist.export_node_csv(node).as_bytes()));
    }
    push("store", b);

    sections
}

/// One `u64` summarizing an entire capture — handy for logging and
/// quick comparisons when the section bytes themselves aren't needed.
pub fn capture_digest(sections: &[(String, Vec<u8>)]) -> u64 {
    let mut h = cwx_util::hash::FNV_OFFSET;
    for (name, data) in sections {
        h = cwx_util::hash::fnv1a_fold(h, name.as_bytes());
        h = fnv1a_fold_u64(h, data.len() as u64);
        h = cwx_util::hash::fnv1a_fold(h, data);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Cluster, ClusterConfig};
    use cwx_util::SimDuration;

    fn world(seed: u64) -> Sim<World> {
        Cluster::build(ClusterConfig {
            n_nodes: 8,
            seed,
            ..ClusterConfig::default()
        })
    }

    #[test]
    fn capture_is_deterministic_and_non_perturbing() {
        let mut a = world(7);
        let mut b = world(7);
        a.run_for(SimDuration::from_secs(300));
        b.run_for(SimDuration::from_secs(300));
        let ca = capture_sections(&a);
        // b captures twice: capturing must not change anything
        let cb1 = capture_sections(&b);
        let cb2 = capture_sections(&b);
        assert_eq!(capture_digest(&ca), capture_digest(&cb1));
        assert_eq!(capture_digest(&cb1), capture_digest(&cb2));
        // and the worlds keep evolving identically after a capture
        a.run_for(SimDuration::from_secs(300));
        b.run_for(SimDuration::from_secs(300));
        assert_eq!(
            capture_digest(&capture_sections(&a)),
            capture_digest(&capture_sections(&b))
        );
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = world(7);
        let mut b = world(8);
        a.run_for(SimDuration::from_secs(300));
        b.run_for(SimDuration::from_secs(300));
        assert_ne!(
            capture_digest(&capture_sections(&a)),
            capture_digest(&capture_sections(&b))
        );
    }

    #[test]
    fn sections_cover_every_subsystem() {
        let sim = world(1);
        let sections = capture_sections(&sim);
        let names: Vec<&str> = sections.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(
            names,
            [
                "engine",
                "rng",
                "hw",
                "bios",
                "agents",
                "net",
                "icebox",
                "lifecycle",
                "audit",
                "control",
                "server",
                "store"
            ]
        );
    }
}
