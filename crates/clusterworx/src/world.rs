//! The simulated cluster world and its event wiring.
//!
//! Node orchestration — what is legal, what is queued, what was done —
//! lives in the control plane ([`crate::lifecycle`] + [`crate::actions`]);
//! this module is the *driver*: it owns the physical substrates (hardware,
//! chassis, network, server), translates control-plane [`Effect`]s into
//! simulation events, and feeds hardware reality back in. The observation
//! paths (probe sampling, liveness housekeeping) are in `crate::probes`.

use cwx_bios::{BiosChip, MemoryCheck};
use cwx_events::Action;
use cwx_hw::node::{Fault, HwEvent, NodeHardware, PowerState, ThermalConfig};
use cwx_hw::workload::Workload;
use cwx_hw::NodeId;
use cwx_icebox::chassis::{IceBox, NodeCommand, PortEffect, PortId, NODE_PORTS};
use cwx_monitor::agent::{Agent, AgentConfig};
use cwx_monitor::fault::AgentFault;
use cwx_monitor::snapshot::Sensors;
use cwx_net::{Network, NodeAddr};
use cwx_proc::synthetic::SyntheticProc;
use cwx_util::rng::rng as seeded_rng;
use cwx_util::sim::{EventId, Sim};
use cwx_util::time::{SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::Rng;

use crate::actions::{
    BootWatchdog, CommandTransport, ControlPlane, Effect, FlapPolicy, IssueOutcome, NoGate,
    PowerCmd,
};
use crate::config::{ClusterConfig, WorkloadMix};
use crate::server::Server;

/// What an action plug-in tells the framework to do after it ran (a
/// site script might drain the node and then ask for a power-cycle).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PluginVerdict {
    /// Nothing further.
    Done,
    /// Power the node down after the script.
    ThenPowerDown,
    /// Power-cycle the node after the script.
    ThenReboot,
}

/// An executable action plug-in: called with the node the event fired
/// on. Stands in for the "shell scripts, perl scripts, symbolic links,
/// programs, and more" the paper allows as actions.
pub type ActionPlugin = Box<dyn FnMut(u32) -> PluginVerdict>;

/// An executed event action (the audit trail).
#[derive(Debug, Clone, PartialEq)]
pub struct ActionLog {
    /// When it was executed.
    pub time: SimTime,
    /// Target node.
    pub node: u32,
    /// What was done.
    pub action: Action,
}

/// Per-node state bundle.
pub struct NodeState {
    /// The physical node.
    pub hw: NodeHardware,
    /// Its firmware.
    pub bios: BiosChip,
    /// The monitoring agent (present while the OS is up).
    pub agent: Option<Agent<SyntheticProc>>,
    /// In-flight boot-sequence events (energize, console phases, boot
    /// completion); cancelled wholesale when power changes.
    pub pending_boot: Vec<EventId>,
    /// The system image provisioned onto this node (None = factory).
    pub image: Option<crate::provisioning::InstalledImage>,
    /// Injected monitoring-daemon fault (chaos campaigns); the node's
    /// OS and workload keep running underneath a sick agent.
    pub agent_fault: Option<AgentFault>,
    /// This node's private noise stream. Independent per-node RNGs make
    /// the parallel hardware step deterministic for any shard count.
    pub rng: StdRng,
}

/// The private noise stream for one node: derived from the cluster seed
/// and the node id, independent of every other node's.
pub fn node_rng(seed: u64, node: u32) -> StdRng {
    // splitmix-style index mix so adjacent nodes get unrelated streams
    let mixed = (seed ^ 0x5eed).wrapping_add((node as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15));
    seeded_rng(mixed)
}

/// The whole simulated cluster.
pub struct World {
    /// Build parameters.
    pub cfg: ClusterConfig,
    /// Compute nodes.
    pub nodes: Vec<NodeState>,
    /// One chassis per 10 nodes.
    pub iceboxes: Vec<IceBox>,
    /// Shared management network (messages are report payloads).
    pub net: Network<Vec<u8>>,
    /// The management server.
    pub server: Server,
    /// The node-lifecycle control plane: every chassis action flows
    /// through its command bus and lands in its audit trail.
    pub control: ControlPlane,
    /// Optional SLURM-lite attachment (see [`crate::scheduler`]).
    pub scheduler: Option<crate::scheduler::SchedulerBridge>,
    /// Registered action plug-ins by name.
    action_plugins: std::collections::BTreeMap<String, ActionPlugin>,
    /// One-shot wake event for the control plane's timed work (retry
    /// backoffs, drain deadlines, reboot pauses): `(when, event)`.
    pub(crate) control_wake: Option<(SimTime, EventId)>,
    /// Command-loss draws for the chassis transport.
    pub(crate) cmd_rng: StdRng,
    pub(crate) rng: StdRng,
}

impl World {
    /// Chassis + port housing a node.
    pub fn rack_of(node: u32) -> (usize, PortId) {
        (
            (node as usize) / NODE_PORTS,
            PortId((node % NODE_PORTS as u32) as u8),
        )
    }

    /// Network address of a node's agent.
    pub fn addr_of(node: u32) -> NodeAddr {
        NodeAddr(node + 1)
    }

    /// Network address of the server.
    pub const SERVER_ADDR: NodeAddr = NodeAddr(0);

    /// Nodes whose OS is currently up.
    pub fn up_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.hw.is_up()).count()
    }

    /// The network segment serving chassis `bx`. With
    /// [`crate::ClusterConfig::rack_network`] that is the rack's own
    /// segment; on the flat topology it is the single shared segment.
    pub fn rack_segment(&self, bx: usize) -> cwx_net::SegmentId {
        if self.cfg.rack_network {
            cwx_net::SegmentId((1 + bx) as u16)
        } else {
            cwx_net::SegmentId(0)
        }
    }

    /// Register an action plug-in under `name`; events with
    /// `Action::Plugin(name)` will invoke it.
    pub fn register_action_plugin(&mut self, name: &str, plugin: ActionPlugin) {
        self.action_plugins.insert(name.to_string(), plugin);
    }

    /// Executed event actions in order — a projection of the control
    /// plane's audit trail (formerly a field updated in parallel).
    pub fn action_log(&self) -> Vec<ActionLog> {
        self.control.action_log()
    }

    /// Plug-in executions `(time, plugin name, node)` — also projected
    /// from the audit trail.
    pub fn plugin_log(&self) -> Vec<(SimTime, String, u32)> {
        self.control.plugin_log()
    }

    /// A point-in-time rollup of this cluster for federation export:
    /// lifecycle census from the control plane, liveness and traffic
    /// counters from the server, and the alarms raised since the last
    /// call (drained from the server's alarm feed).
    pub fn fed_snapshot(&mut self) -> crate::server::ClusterSnapshot {
        let (alarms, alarms_dropped) = self.server.take_alarms();
        crate::server::ClusterSnapshot {
            n_nodes: self.cfg.n_nodes,
            counts: self.control.lifecycle().counts(),
            reachable: self.server.reachable_count(),
            stats: self.server.stats(),
            alarms,
            alarms_dropped,
        }
    }
}

/// Namespace struct: builds simulated clusters.
pub struct Cluster;

impl Cluster {
    /// Wire a cluster world onto a fresh simulator and install its
    /// recurring events. Drive it with `run_for`/`run_until` (the
    /// recurring events never drain the queue).
    pub fn build(cfg: ClusterConfig) -> Sim<World> {
        let mut rng = seeded_rng(cfg.seed);
        let n = cfg.n_nodes;
        let mut nodes = Vec::with_capacity(n as usize);
        for i in 0..n {
            let workload = match cfg.workload {
                WorkloadMix::Idle => Workload::Idle,
                WorkloadMix::Constant(u) => Workload::Constant(u),
                WorkloadMix::Mixed => match i % 10 {
                    0..=5 => Workload::Batch {
                        peak: 0.95,
                        busy_secs: 240.0 + 30.0 * (i % 4) as f64,
                        gap_secs: 60.0,
                    },
                    6..=8 => Workload::Noisy {
                        mean: 0.35,
                        reversion: 0.2,
                        sigma: 0.25,
                    },
                    _ => Workload::Idle,
                },
            };
            nodes.push(NodeState {
                hw: NodeHardware::new(NodeId(i), ThermalConfig::default(), workload),
                bios: BiosChip::new(cfg.firmware),
                agent: None,
                pending_boot: Vec::new(),
                image: None,
                agent_fault: None,
                rng: node_rng(cfg.seed, i),
            });
        }
        let n_boxes = (n as usize).div_ceil(NODE_PORTS);
        let iceboxes = (0..n_boxes).map(|_| IceBox::new()).collect();
        let net = if cfg.rack_network {
            // one segment per chassis behind a fat backbone: the server
            // sits on the backbone, so partitioning one rack's segment
            // isolates exactly that chassis's nodes
            let mut net = Network::new(cfg.seed ^ 0xdead_beef);
            let backbone = net.add_segment(
                cfg.bandwidth_bps * 10,
                cwx_util::time::SimDuration::from_micros(100),
                0.0,
            );
            net.set_backbone(backbone);
            net.attach(World::SERVER_ADDR, backbone);
            for bx in 0..n_boxes {
                let seg = net.add_segment(
                    cfg.bandwidth_bps,
                    cwx_util::time::SimDuration::from_micros(100),
                    cfg.loss,
                );
                debug_assert_eq!(seg.0 as usize, 1 + bx);
            }
            for i in 0..n {
                let (bx, _) = World::rack_of(i);
                net.attach(World::addr_of(i), cwx_net::SegmentId((1 + bx) as u16));
            }
            net
        } else {
            Network::single_segment(cfg.seed ^ 0xdead_beef, n + 1, cfg.bandwidth_bps, cfg.loss)
        };
        let stale_after = cfg.effective_stale_after();
        let server = match &cfg.store_dir {
            None => Server::new(
                "cluster",
                cfg.notify_window,
                cfg.history_capacity,
                stale_after,
            ),
            Some(dir) => {
                // persistent history: a restarted simulation over the
                // same directory recovers every recorded sample
                let disk =
                    cwx_store::disk::DiskStore::open(dir, cwx_store::disk::StoreConfig::default())
                        .expect("open persistent history store");
                Server::with_history(
                    "cluster",
                    cfg.notify_window,
                    cwx_monitor::history::HistoryStore::with_backend(Box::new(disk)),
                    stale_after,
                )
            }
        };
        let control = {
            let mut c = ControlPlane::new(n as usize);
            c.set_drain_force_after(cfg.drain_force_after);
            c.set_flap_policy(FlapPolicy {
                // threshold 0 disables the detector outright
                threshold: if cfg.flap_threshold == 0 {
                    u32::MAX
                } else {
                    cfg.flap_threshold
                },
                window: cfg.flap_window,
                release_after: cfg.quarantine_release_after,
            });
            c.set_boot_watchdog(BootWatchdog {
                deadline: cfg.boot_deadline,
                max_retries: cfg.boot_max_retries,
            });
            c
        };
        let world = World {
            nodes,
            iceboxes,
            net,
            server,
            control,
            scheduler: None,
            action_plugins: std::collections::BTreeMap::new(),
            control_wake: None,
            // command-loss draws get their own stream so enabling loss
            // injection cannot perturb any other random sequence
            cmd_rng: seeded_rng(cfg.seed ^ 0x1ce_b0c5),
            rng: {
                // separate stream for firmware boot-plan randomness
                // (hardware noise lives in the per-node RNGs)
                let _ = &mut rng;
                seeded_rng(cfg.seed ^ 0x5eed)
            },
            cfg,
        };
        let mut sim = Sim::new(world);
        install_recurring_events(&mut sim);
        if sim.world().cfg.autostart {
            sim.schedule_at(SimTime::ZERO, |sim| {
                let n = sim.world().cfg.n_nodes;
                for i in 0..n {
                    power_on_node(sim, i);
                }
            });
        }
        sim
    }
}

fn install_recurring_events(sim: &mut Sim<World>) {
    let hw_step = sim.world().cfg.hw_step;
    let agent_interval = sim.world().cfg.agent_interval;
    let probe_interval = sim.world().cfg.probe_interval;
    let housekeeping = sim.world().cfg.housekeeping_interval;

    sim.schedule_every(hw_step, move |sim| {
        hw_tick(sim, hw_step.as_secs_f64());
        true
    });
    sim.schedule_every(agent_interval, |sim| {
        agent_tick(sim);
        true
    });
    sim.schedule_every(probe_interval, |sim| {
        crate::probes::probe_tick(sim);
        true
    });
    sim.schedule_every(housekeeping, |sim| {
        crate::probes::housekeeping_tick(sim);
        true
    });
}

/// Advance the physics of every node and route console output.
///
/// One fleet-wide pass, parallelized over shards: each node evolves from
/// its own RNG, so shards never contend and the merged event stream is
/// node-id-ordered regardless of shard count. Events route back through
/// the sim single-threaded, untouched semantics.
fn hw_tick(sim: &mut Sim<World>, dt_secs: f64) {
    let shards = sim.world().cfg.effective_hw_shards();
    let emitted = {
        let w = sim.world_mut();
        cwx_hw::fleet::step_fleet(&mut w.nodes, shards, |_, st| {
            let events = st.hw.advance(dt_secs, &mut st.rng);
            (!events.is_empty()).then_some(events)
        })
    };
    for (node, events) in emitted {
        route_hw_events(sim, node, events);
    }
}

fn route_hw_events(sim: &mut Sim<World>, node: u32, events: Vec<HwEvent>) {
    for e in events {
        match e {
            HwEvent::Console(text) => {
                let (bx, port) = World::rack_of(node);
                sim.world_mut().iceboxes[bx].feed_console(port, text.as_bytes());
            }
            HwEvent::CpuBurned { .. } => {
                let now = sim.now();
                let w = sim.world_mut();
                w.control.note_burned(now, node);
                w.nodes[node as usize].agent = None;
            }
        }
    }
}

/// Run every live agent and ship its report to the server.
///
/// Report *generation* (sampling `/proc`, consolidation, encoding) is
/// per-node work and runs through the same sharded fleet pass as the
/// hardware step; the shared network and server stay single-threaded,
/// fed in node-id order.
fn agent_tick(sim: &mut Sim<World>) {
    let now = sim.now();
    // clear daemon faults that expired on their own (a timed hang); the
    // recovered agent resyncs so its next report is a full retransmit
    {
        let w = sim.world_mut();
        for st in &mut w.nodes {
            if st.agent_fault.is_some_and(|f| f.expired(now)) {
                st.agent_fault = None;
                if let Some(a) = st.agent.as_mut() {
                    a.resync();
                }
            }
        }
    }
    let shards = sim.world().cfg.effective_hw_shards();
    let reports = {
        let w = sim.world_mut();
        cwx_hw::fleet::step_fleet(&mut w.nodes, shards, |_, st| {
            if !st.hw.is_up() {
                return None;
            }
            // a crashed or hung daemon produces nothing this tick
            if st.agent_fault.is_some_and(|f| f.silences(now)) {
                return None;
            }
            let agent = st.agent.as_mut()?;
            let sensors = Sensors {
                cpu_temp_c: st.hw.temperature_c(),
                board_temp_c: st.hw.temperature_c() - 8.0,
                fan_rpm: st.hw.fan_rpm(),
                power_watts: st.hw.power_watts(),
                udp_echo_ok: true,
            };
            agent.tick(now, sensors).ok().map(|out| out.payload)
        })
    };
    let mut deliveries: Vec<(SimTime, Vec<u8>)> = Vec::new();
    for (node, payload) in reports {
        let fault = sim.world().nodes[node as usize].agent_fault;
        let extra = match fault {
            Some(AgentFault::DelayedReports { extra }) => extra,
            _ => SimDuration::ZERO,
        };
        let copies = if matches!(fault, Some(AgentFault::DuplicatedReports)) {
            2
        } else {
            1
        };
        for _ in 0..copies {
            let size = payload.len() as u64;
            let ds = sim.world_mut().net.unicast(
                now,
                World::addr_of(node),
                World::SERVER_ADDR,
                size,
                payload.clone(),
            );
            deliveries.extend(ds.into_iter().map(|d| (d.at + extra, d.msg)));
        }
    }
    for (at, msg) in deliveries {
        sim.schedule_at(at, move |sim| {
            let now = sim.now();
            sim.world_mut().server.ingest(now, &msg);
            execute_pending_actions(sim);
        });
    }
}

/// The simulation-side [`CommandTransport`]: commands land on the
/// in-world chassis through [`IceBox::execute`], optionally losing a
/// configured fraction in transit (the E13 fault-injection knob).
struct SimTransport<'a> {
    iceboxes: &'a mut Vec<IceBox>,
    loss: f64,
    rng: &'a mut StdRng,
}

impl CommandTransport for SimTransport<'_> {
    fn issue(&mut self, now: SimTime, node: u32, cmd: PowerCmd) -> IssueOutcome {
        // the loss draw comes first: a lost command never reaches the
        // chassis at all. The draw is skipped entirely at loss 0 so the
        // reliable-link configurations consume no randomness here.
        if self.loss > 0.0 && self.rng.random::<f64>() < self.loss {
            return IssueOutcome::Lost;
        }
        let (bx, port) = World::rack_of(node);
        let Some(icebox) = self.iceboxes.get_mut(bx) else {
            return IssueOutcome::Rejected;
        };
        let chassis_cmd = match cmd {
            PowerCmd::On => NodeCommand::PowerOn,
            PowerCmd::Off => NodeCommand::PowerOff,
        };
        match icebox.execute(now, port, chassis_cmd) {
            Ok(Some(PortEffect::EnergizeAt { at, .. })) => IssueOutcome::Applied {
                energize_at: Some(at),
            },
            Ok(Some(_)) => IssueOutcome::Applied { energize_at: None },
            Ok(None) => IssueOutcome::Noop,
            Err(_) => IssueOutcome::Rejected,
        }
    }

    fn relay_on(&self, node: u32) -> bool {
        let (bx, port) = World::rack_of(node);
        self.iceboxes.get(bx).is_some_and(|ib| ib.relay_on(port))
    }
}

/// Hand actions queued by the event engine to the control plane.
pub(crate) fn execute_pending_actions(sim: &mut Sim<World>) {
    let actions = sim.world_mut().server.take_actions();
    if actions.is_empty() {
        return;
    }
    let now = sim.now();
    for a in actions {
        let relay_on = {
            let (bx, port) = World::rack_of(a.node);
            sim.world().iceboxes[bx].relay_on(port)
        };
        let effects = {
            let w = sim.world_mut();
            let World {
                control, scheduler, ..
            } = w;
            match scheduler.as_mut() {
                Some(bridge) => control.submit_action(now, a.node, &a.action, relay_on, bridge),
                None => control.submit_action(now, a.node, &a.action, relay_on, &mut NoGate),
            }
        };
        for e in effects {
            apply_effect(sim, e);
        }
        // pump after each submission so a power-down that completes
        // synchronously suppresses later duplicates in the same batch,
        // exactly as the pre-bus code did
        pump_control(sim);
    }
}

/// Drive the control plane until it has nothing immediately runnable,
/// applying every physical effect, then park a wake event at its next
/// timed deadline (retry backoff, drain force-after, reboot pause).
pub(crate) fn pump_control(sim: &mut Sim<World>) {
    loop {
        let now = sim.now();
        let effects = {
            let w = sim.world_mut();
            let World {
                iceboxes,
                control,
                scheduler,
                cmd_rng,
                cfg,
                ..
            } = w;
            let mut transport = SimTransport {
                iceboxes,
                loss: cfg.icebox_command_loss,
                rng: cmd_rng,
            };
            match scheduler.as_mut() {
                Some(bridge) => control.step(now, &mut transport, bridge),
                None => control.step(now, &mut transport, &mut NoGate),
            }
        };
        if effects.is_empty() {
            break;
        }
        for e in effects {
            apply_effect(sim, e);
        }
    }
    schedule_control_wake(sim);
}

/// Keep exactly one wake event parked at the control plane's next
/// deadline; cancel and re-park when the deadline moves.
fn schedule_control_wake(sim: &mut Sim<World>) {
    let want = sim.world().control.next_wakeup();
    match (want, sim.world().control_wake) {
        (None, None) => {}
        (Some(at), Some((parked, _))) if parked == at => {}
        (want, parked) => {
            if let Some((_, id)) = parked {
                sim.cancel(id);
                sim.world_mut().control_wake = None;
            }
            if let Some(at) = want {
                let at = at.max(sim.now());
                let id = sim.schedule_at(at, |sim| {
                    sim.world_mut().control_wake = None;
                    pump_control(sim);
                });
                sim.world_mut().control_wake = Some((at, id));
            }
        }
    }
}

/// Apply one physical [`Effect`] the control plane emitted.
fn apply_effect(sim: &mut Sim<World>, effect: Effect) {
    match effect {
        Effect::PowerApplied {
            node, on: false, ..
        } => {
            cancel_boot_events(sim, node);
            let w = sim.world_mut();
            let st = &mut w.nodes[node as usize];
            st.hw.set_power(PowerState::Off);
            st.agent = None;
            w.server.forget_node(node);
        }
        Effect::PowerApplied {
            node,
            on: true,
            energize_at,
        } => {
            // a re-issued power-on supersedes any boot already in flight
            cancel_boot_events(sim, node);
            let at = energize_at.unwrap_or_else(|| sim.now());
            let energize = sim.schedule_at(at, move |sim| energize_node(sim, node));
            sim.world_mut().nodes[node as usize]
                .pending_boot
                .push(energize);
        }
        Effect::HaltOs { node } => {
            cancel_boot_events(sim, node);
            let st = &mut sim.world_mut().nodes[node as usize];
            st.hw.set_booted(false);
            st.agent = None;
        }
        Effect::RunPlugin { node, name } => {
            let now = sim.now();
            let verdict = {
                let w = sim.world_mut();
                match w.action_plugins.get_mut(&name) {
                    Some(plugin) => {
                        let v = plugin(node);
                        w.control.note_plugin_ran(now, node, &name);
                        Some(v)
                    }
                    None => None, // unregistered plug-in: audited action only
                }
            };
            match verdict {
                Some(PluginVerdict::ThenPowerDown) => {
                    sim.world_mut()
                        .control
                        .submit_followup_power(now, node, false);
                }
                Some(PluginVerdict::ThenReboot) => {
                    sim.world_mut()
                        .control
                        .submit_followup_power(now, node, true);
                }
                _ => {}
            }
        }
    }
}

/// Cancel every in-flight boot-sequence event for a node (energize,
/// console phases, boot completion). O(1) per event in the wheel; stale
/// ids that already fired are rejected by their generation check, so
/// draining the whole list is always safe.
fn cancel_boot_events(sim: &mut Sim<World>, node: u32) {
    let ids = std::mem::take(&mut sim.world_mut().nodes[node as usize].pending_boot);
    for id in ids {
        sim.cancel(id);
    }
}

/// Cut a node's power: an ungated administrator request through the
/// control plane (the operator outranks the scheduler).
pub fn power_off_node(sim: &mut Sim<World>, node: u32) {
    let now = sim.now();
    sim.world_mut()
        .control
        .request_power(now, node, PowerCmd::Off);
    pump_control(sim);
}

/// Power a node on through the control plane; the chassis sequences the
/// outlet and the boot sequence runs once it energizes.
pub fn power_on_node(sim: &mut Sim<World>, node: u32) {
    let now = sim.now();
    sim.world_mut()
        .control
        .request_power(now, node, PowerCmd::On);
    pump_control(sim);
}

/// The outlet's sequenced energize window elapsed: apply power to the
/// node hardware and run its firmware boot sequence, feeding console
/// output into the chassis capture.
fn energize_node(sim: &mut Sim<World>, node: u32) {
    let now = sim.now();
    let (bx, port) = World::rack_of(node);
    {
        let w = sim.world_mut();
        w.iceboxes[bx].mark_energized(port);
        w.nodes[node as usize].hw.set_power(PowerState::On);
        w.control.note_energized(now, node);
    }
    // firmware boot plan
    let (plan, memory_ok) = {
        let w = sim.world_mut();
        let memory = if w.cfg.bad_memory_nodes.contains(&node) {
            MemoryCheck::Bad
        } else {
            MemoryCheck::Ok
        };
        let World { nodes, rng, .. } = w;
        (
            nodes[node as usize].bios.begin_boot(rng, memory),
            memory == MemoryCheck::Ok,
        )
    };
    let mut offset = SimDuration::ZERO;
    let mut chain = Vec::new();
    for phase in &plan.phases {
        if !phase.console.is_empty() {
            let text = phase.console.clone();
            chain.push(sim.schedule_in(offset, move |sim| {
                let (bx, port) = World::rack_of(node);
                sim.world_mut().iceboxes[bx].feed_console(port, text.as_bytes());
            }));
        }
        offset += phase.duration;
    }
    if memory_ok {
        chain.push(sim.schedule_in(offset, move |sim| finish_boot(sim, node)));
    } else {
        // a failed memory check halts in firmware: the node never
        // boots, and only LinuxBIOS told anyone why
        chain.push(sim.schedule_in(offset, move |sim| {
            let now = sim.now();
            let w = sim.world_mut();
            w.nodes[node as usize].pending_boot.clear();
            w.control.note_memory_failed(now, node);
        }));
    }
    sim.world_mut().nodes[node as usize]
        .pending_boot
        .extend(chain);
}

fn finish_boot(sim: &mut Sim<World>, node: u32) {
    let now = sim.now();
    let w = sim.world_mut();
    let st = &mut w.nodes[node as usize];
    // the boot sequence is complete: nothing left to cancel
    st.pending_boot.clear();
    if st.hw.power() != PowerState::On {
        return;
    }
    st.hw.set_booted(true);
    w.control.note_boot_complete(now, node);
    let cfg = AgentConfig {
        node,
        interfaces: vec!["lo".into(), "eth0".into()],
        delta_enabled: w.cfg.delta_enabled,
        compress: w.cfg.compress,
        binary: false,
        cache_ttl_secs: 0.5,
    };
    let st = &mut w.nodes[node as usize];
    st.agent = Agent::new(st.hw.proc_fs().clone(), cfg).ok();
    // the reboot restarted the monitoring daemon too
    st.agent_fault = None;
}

/// Stage a BIOS setting on every node remotely ("changes can be made
/// remotely to a single node or to all nodes in a cluster system. These
/// changes become active as soon as the nodes are rebooted"). Returns
/// `(staged, refused)` — vendor-BIOS nodes refuse remote management.
pub fn stage_bios_setting_fleet(sim: &mut Sim<World>, key: &str, value: &str) -> (usize, usize) {
    let w = sim.world_mut();
    let mut staged = 0;
    let mut refused = 0;
    for st in &mut w.nodes {
        match st.bios.stage_setting(key, value) {
            Ok(()) => staged += 1,
            Err(_) => refused += 1,
        }
    }
    (staged, refused)
}

/// Stage a firmware flash on every node remotely; same semantics as
/// [`stage_bios_setting_fleet`].
pub fn stage_bios_flash_fleet(sim: &mut Sim<World>, version: &str) -> (usize, usize) {
    let w = sim.world_mut();
    let mut staged = 0;
    let mut refused = 0;
    for st in &mut w.nodes {
        match st.bios.stage_flash(cwx_bios::FlashImage {
            version: version.to_string(),
        }) {
            Ok(()) => staged += 1,
            Err(_) => refused += 1,
        }
    }
    (staged, refused)
}

/// Power-cycle every node (the "changes become active" step).
pub fn power_cycle_all(sim: &mut Sim<World>) {
    let n = sim.world().cfg.n_nodes;
    for i in 0..n {
        power_off_node(sim, i);
    }
    sim.schedule_in(SimDuration::from_secs(2), move |sim| {
        for i in 0..n {
            power_on_node(sim, i);
        }
    });
}

/// Inject a hardware fault at an absolute simulated time.
pub fn schedule_fault(sim: &mut Sim<World>, at: SimTime, node: u32, fault: Fault) {
    sim.schedule_at(at, move |sim| {
        let events = sim.world_mut().nodes[node as usize].hw.inject(fault);
        route_hw_events(sim, node, events);
    });
}

/// Set (or clear) a node's monitoring-daemon fault immediately.
/// Clearing a fault resyncs the daemon so the server regains full
/// monitor state on its next report.
pub fn set_agent_fault(sim: &mut Sim<World>, node: u32, fault: Option<AgentFault>) {
    let st = &mut sim.world_mut().nodes[node as usize];
    st.agent_fault = fault;
    if fault.is_none() {
        if let Some(a) = st.agent.as_mut() {
            a.resync();
        }
    }
}

/// Restart a chassis controller mid-flight: relay latches survive (the
/// hardware holds them), but pending energize sequencing is lost — a
/// node whose outlet was waiting its stagger slot hangs in `PoweringOn`
/// until the control plane's boot watchdog power-cycles it. The
/// in-flight energize events are cancelled here, mirroring the lost
/// chassis state.
pub fn chassis_restart(sim: &mut Sim<World>, bx: usize) {
    let now = sim.now();
    let lost = sim.world_mut().iceboxes[bx].controller_restart(now);
    for port in lost {
        let node = (bx * NODE_PORTS + port.0 as usize) as u32;
        if (node as usize) < sim.world().nodes.len() {
            cancel_boot_events(sim, node);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cwx_monitor::monitor::MonitorKey;

    fn run_cluster(cfg: ClusterConfig, secs: u64) -> Sim<World> {
        let mut sim = Cluster::build(cfg);
        sim.run_for(SimDuration::from_secs(secs));
        sim
    }

    #[test]
    fn cluster_boots_and_reports() {
        let sim = run_cluster(
            ClusterConfig {
                n_nodes: 8,
                ..Default::default()
            },
            120,
        );
        let w = sim.world();
        assert_eq!(w.up_count(), 8);
        let stats = w.server.stats();
        assert!(
            stats.reports_rx > 8 * 10,
            "agents must be reporting: {}",
            stats.reports_rx
        );
        assert_eq!(stats.decode_errors, 0);
        // history has data for every node
        for i in 0..8 {
            assert!(w
                .server
                .history()
                .latest(i, &MonitorKey::new("load.one"))
                .is_some());
        }
    }

    #[test]
    fn linuxbios_cluster_comes_up_much_faster() {
        let lb = {
            let mut sim = Cluster::build(ClusterConfig {
                n_nodes: 4,
                firmware: cwx_bios::Firmware::LinuxBios,
                ..Default::default()
            });
            let mut t = None;
            for _ in 0..100_000 {
                if !sim.step() {
                    break;
                }
                if sim.world().up_count() == 4 {
                    t = Some(sim.now());
                    break;
                }
            }
            t.expect("linuxbios cluster must come up")
        };
        let legacy = {
            let mut sim = Cluster::build(ClusterConfig {
                n_nodes: 4,
                firmware: cwx_bios::Firmware::LegacyBios,
                ..Default::default()
            });
            let mut t = None;
            for _ in 0..1_000_000 {
                if !sim.step() {
                    break;
                }
                if sim.world().up_count() == 4 {
                    t = Some(sim.now());
                    break;
                }
            }
            t.expect("legacy cluster must come up")
        };
        assert!(
            legacy.as_secs_f64() > lb.as_secs_f64() + 20.0,
            "legacy {legacy} vs linuxbios {lb}"
        );
    }

    #[test]
    fn fan_failure_triggers_power_down_before_burn() {
        let mut sim = Cluster::build(ClusterConfig {
            n_nodes: 4,
            workload: WorkloadMix::Constant(1.0),
            ..Default::default()
        });
        // let it boot and warm up, then kill a fan
        schedule_fault(
            &mut sim,
            SimTime::ZERO + SimDuration::from_secs(300),
            2,
            Fault::FanFailure,
        );
        sim.run_for(SimDuration::from_secs(1200));
        let w = sim.world();
        // the event engine must have powered node 2 down
        assert!(
            w.action_log()
                .iter()
                .any(|a| a.node == 2 && a.action == Action::PowerDown),
            "power-down action missing: {:?}",
            w.action_log()
        );
        // and the CPU must have survived
        assert_ne!(w.nodes[2].hw.health(), cwx_hw::HealthState::Burned);
        // exactly one email about it
        let mails: Vec<_> = w
            .server
            .outbox()
            .iter()
            .filter(|m| m.event == "cpu-fan-failure")
            .collect();
        assert_eq!(mails.len(), 1, "{:?}", w.server.outbox());
        assert_eq!(mails[0].nodes, vec![2]);
    }

    #[test]
    fn kernel_panic_heals_via_reboot() {
        let mut sim = Cluster::build(ClusterConfig {
            n_nodes: 2,
            ..Default::default()
        });
        schedule_fault(
            &mut sim,
            SimTime::ZERO + SimDuration::from_secs(120),
            1,
            Fault::KernelPanic,
        );
        sim.run_for(SimDuration::from_secs(600));
        let w = sim.world();
        assert!(
            w.action_log()
                .iter()
                .any(|a| a.node == 1 && a.action == Action::Reboot),
            "reboot action missing: {:?}",
            w.action_log()
        );
        assert!(w.nodes[1].hw.is_up(), "node must be healed and back up");
        // the panic spew is in the ICE Box console log for post-mortem
        let (bx, port) = World::rack_of(1);
        assert!(w.iceboxes[bx].console_log(port).contains("Kernel panic"));
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut sim = Cluster::build(ClusterConfig {
                n_nodes: 6,
                seed,
                ..Default::default()
            });
            schedule_fault(
                &mut sim,
                SimTime::ZERO + SimDuration::from_secs(100),
                3,
                Fault::FanFailure,
            );
            sim.run_for(SimDuration::from_secs(400));
            let w = sim.world();
            (w.server.stats(), w.action_log(), w.server.outbox().len())
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn power_off_mid_boot_cancels_the_whole_boot_chain() {
        let mut sim = Cluster::build(ClusterConfig {
            n_nodes: 1,
            autostart: false,
            ..Default::default()
        });
        let idle = sim.events_pending();
        power_on_node(&mut sim, 0);
        // let the energize event fire so the console/finish chain exists
        sim.run_for(SimDuration::from_secs(2));
        assert!(
            !sim.world().nodes[0].pending_boot.is_empty(),
            "boot chain must be tracked"
        );
        power_off_node(&mut sim, 0);
        assert!(sim.world().nodes[0].pending_boot.is_empty());
        assert_eq!(
            sim.events_pending(),
            idle,
            "cancel must reclaim every in-flight boot event"
        );
        sim.run_for(SimDuration::from_secs(120));
        assert!(
            !sim.world().nodes[0].hw.is_up(),
            "cancelled boot must not finish"
        );
    }

    #[test]
    fn completed_boot_leaves_no_cancellable_events() {
        let mut sim = Cluster::build(ClusterConfig {
            n_nodes: 2,
            ..Default::default()
        });
        sim.run_for(SimDuration::from_secs(120));
        assert_eq!(sim.world().up_count(), 2);
        for st in &sim.world().nodes {
            assert!(
                st.pending_boot.is_empty(),
                "finish_boot must clear the chain"
            );
        }
    }

    #[test]
    fn power_cycle_mid_boot_is_safe() {
        let mut sim = Cluster::build(ClusterConfig {
            n_nodes: 1,
            ..Default::default()
        });
        // cut power while the node is still booting, then power on again
        sim.schedule_at(SimTime::ZERO + SimDuration::from_millis(1500), |sim| {
            power_off_node(sim, 0);
        });
        sim.schedule_at(SimTime::ZERO + SimDuration::from_secs(5), |sim| {
            power_on_node(sim, 0);
        });
        sim.run_for(SimDuration::from_secs(120));
        assert!(
            sim.world().nodes[0].hw.is_up(),
            "second boot must complete cleanly"
        );
        // exactly one live agent, reporting
        assert!(sim.world().server.stats().reports_rx > 0);
    }
}

#[cfg(test)]
mod memory_tests {
    use super::*;

    #[test]
    fn bad_memory_node_halts_in_firmware_with_serial_diagnosis() {
        let mut sim = Cluster::build(ClusterConfig {
            n_nodes: 4,
            bad_memory_nodes: vec![2],
            ..Default::default()
        });
        sim.run_for(SimDuration::from_secs(120));
        let w = sim.world();
        assert_eq!(w.up_count(), 3, "the bad-DIMM node never boots");
        assert!(!w.nodes[2].hw.is_up());
        // LinuxBIOS told us why, remotely, on the captured console
        let (bx, port) = World::rack_of(2);
        let log = w.iceboxes[bx].console_log(port);
        assert!(log.contains("Testing DRAM: FAILED"), "console: {log}");
        // healthy neighbours show the pass message instead
        let (bx0, port0) = World::rack_of(0);
        assert!(w.iceboxes[bx0]
            .console_log(port0)
            .contains("Testing DRAM: done"));
    }

    #[test]
    fn legacy_bios_bad_memory_is_silent_on_serial() {
        let mut sim = Cluster::build(ClusterConfig {
            n_nodes: 2,
            firmware: cwx_bios::Firmware::LegacyBios,
            bad_memory_nodes: vec![1],
            ..Default::default()
        });
        sim.run_for(SimDuration::from_secs(200));
        let w = sim.world();
        assert!(!w.nodes[1].hw.is_up());
        let (bx, port) = World::rack_of(1);
        // the administrator gets nothing: the paper's §2 complaint
        assert!(!w.iceboxes[bx].console_log(port).contains("FAILED"));
    }
}

#[cfg(test)]
mod plugin_action_tests {
    use super::*;
    use crate::actions::AuditEntry;
    use crate::lifecycle::LifecycleState;
    use cwx_events::engine::{Comparison, EventDef, EventId, Threshold};
    use cwx_monitor::monitor::MonitorKey;
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::sync::Arc;

    fn hot_rule(action: Action) -> EventDef {
        EventDef {
            id: EventId(100),
            name: "site-overtemp-script".into(),
            threshold: Threshold {
                monitor: MonitorKey::new("temp.cpu"),
                cmp: Comparison::GreaterThan,
                value: 50.0,
                hysteresis: 5.0,
            },
            action,
            notify: false,
        }
    }

    #[test]
    fn plugin_action_runs_and_its_verdict_is_applied() {
        let mut sim = Cluster::build(ClusterConfig {
            n_nodes: 3,
            seed: 31,
            workload: WorkloadMix::Constant(1.0),
            ..Default::default()
        });
        // replace the default overtemp power-down with a site script
        // that records the call and then asks for a power-down
        sim.world_mut()
            .server
            .engine_mut()
            .remove(cwx_events::engine::EventId(1));
        sim.world_mut()
            .server
            .engine_mut()
            .add(hot_rule(Action::Plugin("drain-then-off.sh".into())));
        let calls = Arc::new(AtomicU32::new(0));
        let calls2 = Arc::clone(&calls);
        sim.world_mut().register_action_plugin(
            "drain-then-off.sh",
            Box::new(move |_node| {
                calls2.fetch_add(1, Ordering::Relaxed);
                PluginVerdict::ThenPowerDown
            }),
        );
        sim.run_for(SimDuration::from_secs(900));
        let w = sim.world();
        assert!(calls.load(Ordering::Relaxed) >= 1, "plugin must run");
        assert!(!w.plugin_log().is_empty());
        // the verdict powered the hot nodes down
        assert!(w.nodes.iter().any(|n| n.hw.power() == PowerState::Off));
    }

    #[test]
    fn unregistered_plugin_is_logged_but_harmless() {
        let mut sim = Cluster::build(ClusterConfig {
            n_nodes: 2,
            seed: 32,
            workload: WorkloadMix::Constant(1.0),
            ..Default::default()
        });
        sim.world_mut()
            .server
            .engine_mut()
            .remove(cwx_events::engine::EventId(1));
        sim.world_mut()
            .server
            .engine_mut()
            .add(hot_rule(Action::Plugin("missing.sh".into())));
        sim.run_for(SimDuration::from_secs(600));
        let w = sim.world();
        // action recorded in the audit trail, nothing executed, nodes on
        assert!(w
            .action_log()
            .iter()
            .any(|a| matches!(a.action, Action::Plugin(_))));
        assert!(w.plugin_log().is_empty());
        assert_eq!(w.up_count(), 2);
    }

    #[test]
    fn then_reboot_verdict_power_cycles_the_node() {
        let mut sim = Cluster::build(ClusterConfig {
            n_nodes: 3,
            seed: 33,
            workload: WorkloadMix::Constant(1.0),
            ..Default::default()
        });
        sim.world_mut()
            .server
            .engine_mut()
            .remove(cwx_events::engine::EventId(1));
        sim.world_mut()
            .server
            .engine_mut()
            .add(hot_rule(Action::Plugin("cool-then-reboot.sh".into())));
        let calls = Arc::new(AtomicU32::new(0));
        let calls2 = Arc::clone(&calls);
        sim.world_mut().register_action_plugin(
            "cool-then-reboot.sh",
            Box::new(move |_node| {
                calls2.fetch_add(1, Ordering::Relaxed);
                PluginVerdict::ThenReboot
            }),
        );
        sim.run_for(SimDuration::from_secs(900));
        let w = sim.world();
        assert!(calls.load(Ordering::Relaxed) >= 1, "plugin must run");
        assert!(!w.plugin_log().is_empty());
        // the verdict chained a full power cycle: the audit shows the
        // off leg and the on leg both landing on the hot node
        let cycled = w.plugin_log().iter().any(|(_, _, node)| {
            let mut saw_off = false;
            w.control.audit().iter().any(|r| {
                if r.node != Some(*node) {
                    return false;
                }
                match &r.entry {
                    AuditEntry::Transition {
                        to: LifecycleState::Off,
                        ..
                    } => {
                        saw_off = true;
                        false
                    }
                    AuditEntry::Transition {
                        to: LifecycleState::PoweringOn,
                        ..
                    } => saw_off,
                    _ => false,
                }
            })
        });
        assert!(cycled, "ThenReboot must power the node off and back on");
    }
}

#[cfg(test)]
mod bios_mgmt_tests {
    use super::*;

    #[test]
    fn fleet_settings_and_flash_apply_at_reboot() {
        let mut sim = Cluster::build(ClusterConfig {
            n_nodes: 5,
            seed: 61,
            ..Default::default()
        });
        sim.run_for(SimDuration::from_secs(120));
        assert_eq!(sim.world().up_count(), 5);

        let (staged, refused) = stage_bios_setting_fleet(&mut sim, "boot_source", "ethernet");
        assert_eq!((staged, refused), (5, 0));
        let (staged, _) = stage_bios_flash_fleet(&mut sim, "linuxbios-1.1.8");
        assert_eq!(staged, 5);
        // not active yet
        assert_eq!(
            sim.world().nodes[0].bios.boot_source(),
            cwx_bios::BootSource::Disk
        );
        assert_eq!(sim.world().nodes[0].bios.version(), "linuxbios-1.0.0");

        power_cycle_all(&mut sim);
        sim.run_for(SimDuration::from_secs(120));
        let w = sim.world();
        assert_eq!(w.up_count(), 5, "everyone back after the rolling cycle");
        for (i, st) in w.nodes.iter().enumerate() {
            assert_eq!(
                st.bios.boot_source(),
                cwx_bios::BootSource::Ethernet,
                "node{i}"
            );
            assert_eq!(st.bios.version(), "linuxbios-1.1.8", "node{i}");
        }
        // the netboot shows on the captured consoles
        let (bx, port) = World::rack_of(0);
        assert!(w.iceboxes[bx].console_log(port).contains("etherboot"));
    }

    #[test]
    fn vendor_bios_fleet_refuses_remote_management() {
        let mut sim = Cluster::build(ClusterConfig {
            n_nodes: 3,
            firmware: cwx_bios::Firmware::LegacyBios,
            ..Default::default()
        });
        let (staged, refused) = stage_bios_setting_fleet(&mut sim, "boot_source", "ethernet");
        assert_eq!(
            (staged, refused),
            (0, 3),
            "walk to every node with a keyboard instead"
        );
    }
}
