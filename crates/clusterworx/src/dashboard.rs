//! Text rendering of the "main monitoring screen".
//!
//! The product shipped a Java GUI; the reproduction renders the same
//! information — a per-node status table and a cluster summary — as
//! text, which is what the examples print and what a TUI would consume.

use cwx_monitor::history::HistoryStore;
use cwx_monitor::monitor::MonitorKey;
use cwx_util::time::SimTime;

use crate::world::World;

/// One dashboard row.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeRow {
    /// Node index.
    pub node: u32,
    /// Status word: `up`, `boot`, `off`, `failed`, `unreachable`, or a
    /// lifecycle word (`cloning`, `halted`, `draining`).
    pub status: &'static str,
    /// Last reported CPU utilisation, %.
    pub cpu_pct: f64,
    /// Last reported memory use, %.
    pub mem_pct: f64,
    /// Last reported 1-minute load.
    pub load_one: f64,
    /// Last probed CPU temperature, °C.
    pub temp_c: f64,
    /// Seconds since the last agent report.
    pub report_age_secs: f64,
}

/// Build the dashboard rows at `now`.
pub fn rows(world: &World, now: SimTime) -> Vec<NodeRow> {
    let mut out = Vec::with_capacity(world.nodes.len());
    let lifecycle = world.control.lifecycle();
    for (i, st) in world.nodes.iter().enumerate() {
        let node = i as u32;
        let lc = lifecycle.state(node);
        let status = match () {
            _ if st.hw.health() == cwx_hw::HealthState::Burned => "failed",
            _ if st.hw.power() == cwx_hw::PowerState::Off => "off",
            _ if st.hw.is_up() => {
                if world
                    .server
                    .node_status(node)
                    .map(|s| s.reachable)
                    .unwrap_or(false)
                {
                    "up"
                } else {
                    "unreachable"
                }
            }
            // lifecycle says an OS should be answering but the hardware
            // disagrees: the node wedged or paniced out from under us
            _ if lc.expects_os() => "unreachable",
            _ => lc.status_word(),
        };
        let latest = |key: &str| {
            world
                .server
                .history()
                .latest(node, &MonitorKey::new(key))
                .map(|s| s.value)
                .unwrap_or(f64::NAN)
        };
        let report_age = world
            .server
            .node_status(node)
            .map(|s| now.since(s.last_report).as_secs_f64())
            .unwrap_or(f64::INFINITY);
        out.push(NodeRow {
            node,
            status,
            cpu_pct: latest("cpu.util_pct"),
            mem_pct: latest("mem.used_pct"),
            load_one: latest("load.one"),
            temp_c: latest("temp.cpu"),
            report_age_secs: report_age,
        });
    }
    out
}

/// Cluster-wide aggregates for the summary banner.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterSummary {
    /// Nodes up / total.
    pub up: usize,
    /// Total nodes.
    pub total: usize,
    /// Mean CPU utilisation across reporting nodes, %.
    pub mean_cpu_pct: f64,
    /// Hottest CPU in the cluster, °C.
    pub max_temp_c: f64,
    /// Total power draw, watts (from the chassis probes).
    pub total_watts: f64,
}

/// Compute the cluster summary at `now`.
pub fn summary(world: &World, now: SimTime) -> ClusterSummary {
    let rows = rows(world, now);
    let up = rows.iter().filter(|r| r.status == "up").count();
    let cpus: Vec<f64> = rows
        .iter()
        .map(|r| r.cpu_pct)
        .filter(|x| x.is_finite())
        .collect();
    let temps: Vec<f64> = rows
        .iter()
        .map(|r| r.temp_c)
        .filter(|x| x.is_finite())
        .collect();
    let total_watts: f64 = world.nodes.iter().map(|n| n.hw.power_watts()).sum();
    ClusterSummary {
        up,
        total: rows.len(),
        mean_cpu_pct: if cpus.is_empty() {
            f64::NAN
        } else {
            cpus.iter().sum::<f64>() / cpus.len() as f64
        },
        max_temp_c: temps.iter().copied().fold(f64::NAN, f64::max),
        total_watts,
    }
}

/// Render the table as text.
pub fn render(world: &World, now: SimTime) -> String {
    use std::fmt::Write;
    let rows = rows(world, now);
    let mut s = String::new();
    let up = rows.iter().filter(|r| r.status == "up").count();
    let _ = writeln!(s, "cluster status @ {now}: {up}/{} nodes up", rows.len());
    let _ = writeln!(
        s,
        "{:<8} {:<12} {:>6} {:>6} {:>6} {:>7} {:>8}",
        "node", "status", "cpu%", "mem%", "load", "temp C", "age s"
    );
    for r in &rows {
        let _ = writeln!(
            s,
            "node{:03}  {:<12} {:>6.1} {:>6.1} {:>6.2} {:>7.1} {:>8.1}",
            r.node, r.status, r.cpu_pct, r.mem_pct, r.load_one, r.temp_c, r.report_age_secs
        );
    }
    s
}

/// Render one series as an ASCII chart over `[from, to]` — the text
/// stand-in for the GUI's historical graphing screen (paper §5.1).
/// Each column is one downsampled bucket; `*` marks the bucket mean and
/// `·` fills the min–max spread behind it.
pub fn chart(
    history: &HistoryStore,
    node: u32,
    key: &MonitorKey,
    from: SimTime,
    to: SimTime,
    width: usize,
    height: usize,
) -> String {
    use std::fmt::Write;
    let width = width.clamp(1, 200);
    let height = height.clamp(2, 50);
    let buckets = history.downsample(node, key, from, to, width);
    let mut s = String::new();
    let _ = writeln!(
        s,
        "node{node:03} {key} [{:.0}s..{:.0}s]",
        from.as_secs_f64(),
        to.as_secs_f64()
    );
    if buckets.is_empty() {
        s.push_str("(no data)\n");
        return s;
    }
    let lo = buckets.iter().map(|b| b.min).fold(f64::INFINITY, f64::min);
    let hi = buckets
        .iter()
        .map(|b| b.max)
        .fold(f64::NEG_INFINITY, f64::max);
    let span = if hi > lo { hi - lo } else { 1.0 };
    let row_of = |v: f64| {
        (((v - lo) / span) * (height - 1) as f64)
            .round()
            .clamp(0.0, (height - 1) as f64) as usize
    };
    let mut grid = vec![vec![' '; width]; height];
    for (col, b) in buckets.iter().enumerate() {
        let (rmin, rmax) = (row_of(b.min), row_of(b.max));
        for row in grid.iter_mut().take(rmax + 1).skip(rmin) {
            row[col] = '·';
        }
        grid[row_of(b.mean)][col] = '*';
    }
    for (i, row) in grid.iter().enumerate().rev() {
        let label = if i == height - 1 {
            format!("{hi:>9.2}")
        } else if i == 0 {
            format!("{lo:>9.2}")
        } else {
            " ".repeat(9)
        };
        let line: String = row.iter().collect();
        let _ = writeln!(s, "{label} |{}", line.trim_end());
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ClusterConfig;
    use crate::world::Cluster;
    use cwx_util::time::SimDuration;

    #[test]
    fn dashboard_reflects_running_cluster() {
        let mut sim = Cluster::build(ClusterConfig {
            n_nodes: 4,
            ..Default::default()
        });
        sim.run_for(SimDuration::from_secs(120));
        let now = sim.now();
        let table = rows(sim.world(), now);
        assert_eq!(table.len(), 4);
        assert!(table.iter().all(|r| r.status == "up"), "{table:?}");
        assert!(table.iter().all(|r| r.report_age_secs < 30.0));
        assert!(table.iter().all(|r| r.temp_c > 20.0));
        let text = render(sim.world(), now);
        assert!(text.contains("4/4 nodes up"));
        assert!(text.contains("node003"));
    }

    #[test]
    fn summary_aggregates_cluster_state() {
        let mut sim = Cluster::build(ClusterConfig {
            n_nodes: 6,
            workload: crate::config::WorkloadMix::Constant(0.8),
            ..Default::default()
        });
        sim.run_for(SimDuration::from_secs(300));
        let s = summary(sim.world(), sim.now());
        assert_eq!((s.up, s.total), (6, 6));
        assert!(s.mean_cpu_pct > 60.0, "{s:?}");
        assert!(s.max_temp_c > 40.0, "{s:?}");
        assert!(s.total_watts > 6.0 * 100.0, "{s:?}");
    }

    #[test]
    fn ascii_chart_renders_series() {
        let mut sim = Cluster::build(ClusterConfig {
            n_nodes: 2,
            ..Default::default()
        });
        sim.run_for(SimDuration::from_secs(300));
        let now = sim.now();
        let text = chart(
            sim.world().server.history(),
            0,
            &MonitorKey::new("temp.cpu"),
            SimTime::ZERO,
            now,
            40,
            8,
        );
        assert!(text.contains("node000 temp.cpu"), "{text}");
        assert!(text.contains('*'), "chart plots bucket means:\n{text}");
        assert_eq!(text.lines().count(), 9, "title + height rows:\n{text}");
        // an unknown series renders a placeholder, not a panic
        let empty = chart(
            sim.world().server.history(),
            0,
            &MonitorKey::new("nope"),
            SimTime::ZERO,
            now,
            40,
            8,
        );
        assert!(empty.contains("(no data)"));
    }

    #[test]
    fn powered_off_nodes_show_off() {
        let mut sim = Cluster::build(ClusterConfig {
            n_nodes: 2,
            ..Default::default()
        });
        sim.run_for(SimDuration::from_secs(60));
        crate::world::power_off_node(&mut sim, 1);
        let table = rows(sim.world(), sim.now());
        assert_eq!(table[1].status, "off");
        assert_eq!(table[0].status, "up");
    }
}
