//! The ClusterWorX management server.
//!
//! The middle tier of the paper's 3-tier design: agents push reports up,
//! clients (GUI sessions) query downward. The server decodes reports,
//! feeds the history store, evaluates events and queues the resulting
//! actions for the chassis layer to execute.

use std::collections::BTreeMap;

use cwx_events::engine::{default_rules, EventDef, EventEngine, Firing};
use cwx_events::notify::{Email, Notifier};
use cwx_monitor::history::HistoryStore;
use cwx_monitor::monitor::{MonitorKey, Value};
use cwx_monitor::transmit::{self, Report};
use cwx_util::time::{SimDuration, SimTime};

use cwx_events::Action;

use crate::lifecycle::LifecycleCounts;

/// Cap on the buffered alarm feed: non-federated deployments never call
/// [`Server::take_alarms`], so the buffer must stay bounded.
const ALARM_FEED_CAP: usize = 4096;

/// Liveness bookkeeping per node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeStatus {
    /// Last report arrival.
    pub last_report: SimTime,
    /// Reports received.
    pub reports: u64,
    /// Whether the server currently considers the node reachable.
    pub reachable: bool,
}

/// Server-side counters (experiment E11 reads these).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Reports received.
    pub reports_rx: u64,
    /// Wire bytes received.
    pub bytes_rx: u64,
    /// Individual values processed.
    pub values_rx: u64,
    /// Reports that failed to decode.
    pub decode_errors: u64,
    /// Actions queued for execution.
    pub actions: u64,
}

/// An action the event engine wants executed on a node.
#[derive(Debug, Clone, PartialEq)]
pub struct PendingAction {
    /// Target node.
    pub node: u32,
    /// What to do.
    pub action: Action,
    /// The firing that caused it.
    pub cause: Firing,
}

/// A point-in-time rollup of one cluster, shaped for export to a
/// federation head: lifecycle census, liveness, traffic counters and
/// the alarms raised since the previous snapshot.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ClusterSnapshot {
    /// Nodes in the cluster.
    pub n_nodes: u32,
    /// Census of nodes by lifecycle state.
    pub counts: LifecycleCounts,
    /// Nodes the server currently considers reachable.
    pub reachable: u32,
    /// Server-side traffic counters.
    pub stats: ServerStats,
    /// Alarms (event firings) drained since the last snapshot.
    pub alarms: Vec<Firing>,
    /// Alarms dropped because the feed buffer overflowed.
    pub alarms_dropped: u64,
}

/// The management server.
#[derive(Debug)]
pub struct Server {
    history: HistoryStore,
    engine: EventEngine,
    notifier: Notifier,
    status: BTreeMap<u32, NodeStatus>,
    pending: Vec<PendingAction>,
    stats: ServerStats,
    stale_after: SimDuration,
    /// Per-node binary wire state (dictionaries, XOR chains) for agents
    /// that send the CWB1 format.
    decoder: transmit::WireDecoder,
    /// Firings buffered for federation fan-in (bounded).
    alarm_feed: Vec<Firing>,
    alarms_dropped: u64,
}

impl Server {
    /// A server with the paper's default rule set installed.
    pub fn new(
        cluster_name: &str,
        notify_window: SimDuration,
        history_capacity: usize,
        stale_after: SimDuration,
    ) -> Self {
        Server::with_history(
            cluster_name,
            notify_window,
            HistoryStore::new(history_capacity),
            stale_after,
        )
    }

    /// A server over a caller-supplied history store — pass one backed
    /// by `cwx_store::disk::DiskStore` and monitoring history (charts,
    /// range queries) survives a server restart.
    pub fn with_history(
        cluster_name: &str,
        notify_window: SimDuration,
        history: HistoryStore,
        stale_after: SimDuration,
    ) -> Self {
        let mut engine = EventEngine::new();
        for rule in default_rules() {
            engine.add(rule);
        }
        Server {
            history,
            engine,
            notifier: Notifier::new(cluster_name, notify_window),
            status: BTreeMap::new(),
            pending: Vec::new(),
            stats: ServerStats::default(),
            stale_after,
            decoder: transmit::WireDecoder::new(),
            alarm_feed: Vec::new(),
            alarms_dropped: 0,
        }
    }

    /// The event engine (to add administrator rules).
    pub fn engine_mut(&mut self) -> &mut EventEngine {
        &mut self.engine
    }

    /// The history store (charting queries).
    pub fn history(&self) -> &HistoryStore {
        &self.history
    }

    /// Counters.
    pub fn stats(&self) -> ServerStats {
        self.stats
    }

    /// Per-node liveness.
    pub fn node_status(&self, node: u32) -> Option<NodeStatus> {
        self.status.get(&node).copied()
    }

    /// All emails sent so far.
    pub fn outbox(&self) -> &[Email] {
        self.notifier.outbox()
    }

    /// Emails suppressed by episode dedup.
    pub fn mails_suppressed(&self) -> u64 {
        self.notifier.suppressed()
    }

    /// Configure the notifier's event-storm rate limiter.
    pub fn set_storm_policy(&mut self, policy: cwx_events::StormPolicy) {
        self.notifier.set_storm_policy(policy);
    }

    /// Episodes the storm limiter has flagged so far.
    pub fn storms(&self) -> u64 {
        self.notifier.storms()
    }

    /// Take the queued actions (the chassis layer executes them).
    pub fn take_actions(&mut self) -> Vec<PendingAction> {
        std::mem::take(&mut self.pending)
    }

    /// Drain the buffered alarm feed (federation fan-in). Returns the
    /// firings since the last drain and the count dropped to the
    /// buffer cap in that window.
    pub fn take_alarms(&mut self) -> (Vec<Firing>, u64) {
        let dropped = std::mem::take(&mut self.alarms_dropped);
        (std::mem::take(&mut self.alarm_feed), dropped)
    }

    /// Nodes the server currently considers reachable.
    pub fn reachable_count(&self) -> u32 {
        self.status.values().filter(|st| st.reachable).count() as u32
    }

    /// Queue an administrator-requested action, exactly as if a rule had
    /// fired it. This is the scriptable entry point the control-plane
    /// equivalence tests drive through both deployments.
    pub fn request_action(&mut self, now: SimTime, node: u32, action: Action) {
        if action == Action::None {
            return;
        }
        self.stats.actions += 1;
        self.pending.push(PendingAction {
            node,
            action: action.clone(),
            cause: Firing {
                event: cwx_events::engine::EventId(0),
                node,
                time: now,
                value: 0.0,
                action,
            },
        });
    }

    /// Handle a report datagram arriving from a node agent.
    pub fn ingest(&mut self, now: SimTime, payload: &[u8]) {
        self.stats.bytes_rx += payload.len() as u64;
        let report = match self.decoder.decode_auto(payload) {
            Ok(r) => r,
            Err(_) => {
                self.stats.decode_errors += 1;
                return;
            }
        };
        self.ingest_report(now, &report);
    }

    /// Handle an already-decoded report (used by the simulation driver
    /// to skip redundant re-encoding when it already accounted bytes).
    pub fn ingest_report(&mut self, now: SimTime, report: &Report) {
        self.stats.reports_rx += 1;
        let entry = self.status.entry(report.node).or_insert(NodeStatus {
            last_report: now,
            reports: 0,
            reachable: true,
        });
        entry.last_report = now;
        entry.reports += 1;
        entry.reachable = true;
        for (key, value) in &report.values {
            self.stats.values_rx += 1;
            if let Value::Num(x) = value {
                self.history.record(report.node, key, now, *x);
                self.observe(now, report.node, key, *x);
            }
        }
    }

    /// Handle a report whose samples a sharded ingest worker already
    /// wrote straight into the shared history backend: account stats
    /// and liveness and run event evaluation, but skip the (already
    /// done) history writes. This keeps the expensive storage write
    /// outside the server lock.
    pub fn ingest_report_events_only(&mut self, now: SimTime, report: &Report, wire_bytes: usize) {
        self.stats.bytes_rx += wire_bytes as u64;
        self.stats.reports_rx += 1;
        let entry = self.status.entry(report.node).or_insert(NodeStatus {
            last_report: now,
            reports: 0,
            reachable: true,
        });
        entry.last_report = now;
        entry.reports += 1;
        entry.reachable = true;
        for (key, value) in &report.values {
            self.stats.values_rx += 1;
            if let Value::Num(x) = value {
                self.observe(now, report.node, key, *x);
            }
        }
    }

    /// Handle an already-decoded report from a connection-oriented
    /// ingest front end that also wants wire-byte accounting: full
    /// ingest (history + events + liveness) plus `bytes_rx`.
    pub fn ingest_report_wire(&mut self, now: SimTime, report: &Report, wire_bytes: usize) {
        self.stats.bytes_rx += wire_bytes as u64;
        self.ingest_report(now, report);
    }

    /// Account a datagram that failed to decode in a sharded ingest
    /// worker (the worker decodes outside the server lock).
    pub fn note_decode_error(&mut self, wire_bytes: usize) {
        self.stats.bytes_rx += wire_bytes as u64;
        self.stats.decode_errors += 1;
    }

    /// Feed one out-of-band observation (ICE Box probe path — works even
    /// when the node OS is hung).
    pub fn observe(&mut self, now: SimTime, node: u32, key: &MonitorKey, value: f64) {
        let (fired, cleared) = self.engine.observe(now, node, key, value);
        for f in &fired {
            if self.alarm_feed.len() < ALARM_FEED_CAP {
                self.alarm_feed.push(f.clone());
            } else {
                self.alarms_dropped += 1;
            }
            if let Some(def) = self.engine.defs().iter().find(|d| d.id == f.event) {
                let def: EventDef = def.clone();
                self.notifier.on_fire(now, &def, f);
            }
            if f.action != Action::None {
                self.stats.actions += 1;
                self.pending.push(PendingAction {
                    node,
                    action: f.action.clone(),
                    cause: f.clone(),
                });
            }
        }
        for c in &cleared {
            self.notifier.on_clear(c);
        }
    }

    /// Record a probe reading into history under the sensor keys.
    pub fn record_probe(&mut self, now: SimTime, node: u32, temp_c: f64, watts: f64, fan_rpm: f64) {
        for (key, v) in [
            ("temp.cpu", temp_c),
            ("power.watts", watts),
            ("fan.cpu_rpm", fan_rpm),
        ] {
            let k = MonitorKey::new(key);
            self.history.record(node, &k, now, v);
            self.observe(now, node, &k, v);
        }
    }

    /// Housekeeping: flush due mail, mark silent nodes unreachable.
    /// Returns the emails sent this round.
    pub fn housekeeping(&mut self, now: SimTime) -> Vec<Email> {
        for st in self.status.values_mut() {
            if now.since(st.last_report) > self.stale_after {
                st.reachable = false;
            }
        }
        let defs: Vec<EventDef> = self.engine.defs().to_vec();
        self.notifier.flush(now, &defs)
    }

    /// The engine lost track of a node (powered down): clear its trigger
    /// state so the event can re-fire after repair.
    pub fn forget_node(&mut self, node: u32) {
        for c in self.engine.forget_node(node) {
            self.notifier.on_clear(&c);
        }
        if let Some(st) = self.status.get_mut(&node) {
            st.reachable = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cwx_monitor::transmit::encode_compressed;

    fn server() -> Server {
        Server::new(
            "test",
            SimDuration::from_secs(5),
            100,
            SimDuration::from_secs(30),
        )
    }

    fn t(s: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(s)
    }

    fn report(node: u32, temp: f64) -> Report {
        Report {
            node,
            seq: 0,
            time_secs: 0.0,
            values: vec![
                (MonitorKey::new("temp.cpu"), Value::Num(temp)),
                (MonitorKey::new("load.one"), Value::Num(0.5)),
            ],
        }
    }

    #[test]
    fn ingest_decodes_and_stores_history() {
        let mut s = server();
        let payload = encode_compressed(&report(7, 55.0));
        s.ingest(t(1), &payload);
        let st = s.stats();
        assert_eq!(st.reports_rx, 1);
        assert_eq!(st.values_rx, 2);
        assert_eq!(st.bytes_rx, payload.len() as u64);
        let latest = s.history().latest(7, &MonitorKey::new("temp.cpu")).unwrap();
        assert_eq!(latest.value, 55.0);
        assert!(s.node_status(7).unwrap().reachable);
    }

    #[test]
    fn garbage_counts_as_decode_error() {
        let mut s = server();
        s.ingest(t(1), b"definitely not a report");
        assert_eq!(s.stats().decode_errors, 1);
        assert_eq!(s.stats().reports_rx, 0);
    }

    #[test]
    fn overtemp_report_queues_power_down() {
        let mut s = server();
        s.ingest_report(t(1), &report(3, 80.0));
        let actions = s.take_actions();
        assert_eq!(actions.len(), 1);
        assert_eq!(actions[0].node, 3);
        assert_eq!(actions[0].action, Action::PowerDown);
        // drained
        assert!(s.take_actions().is_empty());
    }

    #[test]
    fn probe_path_catches_hung_nodes() {
        let mut s = server();
        // no agent reports at all; the ICE Box probe sees a dead fan
        s.record_probe(t(1), 5, 60.0, 150.0, 0.0);
        let actions = s.take_actions();
        assert!(actions.iter().any(|a| a.action == Action::PowerDown));
    }

    #[test]
    fn housekeeping_flushes_mail_and_marks_stale() {
        let mut s = server();
        s.ingest_report(t(1), &report(1, 80.0));
        assert!(s.housekeeping(t(2)).is_empty(), "window not expired");
        let mails = s.housekeeping(t(10));
        assert_eq!(mails.len(), 1);
        assert!(mails[0].subject.contains("cpu-overtemp"));
        // silence makes the node unreachable
        assert!(s.node_status(1).unwrap().reachable);
        s.housekeeping(t(60));
        assert!(!s.node_status(1).unwrap().reachable);
    }

    #[test]
    fn forget_node_allows_refire() {
        let mut s = server();
        s.ingest_report(t(1), &report(2, 80.0));
        assert_eq!(s.take_actions().len(), 1);
        s.forget_node(2);
        // node repaired and reports hot again: must re-fire
        s.ingest_report(t(100), &report(2, 81.0));
        assert_eq!(s.take_actions().len(), 1);
    }

    #[test]
    fn text_values_do_not_hit_the_engine() {
        let mut s = server();
        let r = Report {
            node: 1,
            seq: 0,
            time_secs: 0.0,
            values: vec![(MonitorKey::new("cpu.type"), Value::Text("PIII".into()))],
        };
        s.ingest_report(t(1), &r);
        assert!(s.take_actions().is_empty());
        assert_eq!(s.stats().values_rx, 1);
    }
}
