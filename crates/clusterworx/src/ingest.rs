//! Connection-oriented realtime ingest: the TCP front door agents ship
//! `CWB1` reports through.
//!
//! Two implementations sit behind one listener API:
//!
//! * [`IngestMode::Reactor`] (the default) — a single readiness-driven
//!   reactor thread (`cwx_net::reactor`, epoll) owns every agent
//!   connection: nonblocking accept, per-connection [`FrameConn`]
//!   state machines that survive partial frames across readiness
//!   events, and per-connection `CWB1` decoders that decode straight
//!   out of the reused read buffer. Decoded reports land in per-lane
//!   batch buffers (one lane per store shard) that flush on size/delay
//!   bounds to a small pool of flush workers, which batch-append to
//!   the store ([`Store::append_batch`] → one WAL write per shard per
//!   batch) and take the server lock once per batch. One thread
//!   sustains tens of thousands of connections with bounded memory.
//! * [`IngestMode::ThreadPerConn`] — the classic shape this replaces,
//!   kept as a differential baseline: one OS thread per accepted
//!   connection doing blocking reads into the same decode/batch/flush
//!   path. Same frames in, same store contents out (a test pins this),
//!   but memory and scheduler load grow with every agent.
//!
//! Backpressure is explicit, never an unbounded buffer or a stalled
//! reactor: when a lane's flush queue fills, the connections feeding
//! that lane are paused (their read interest is dropped; the kernel's
//! TCP window then pushes back on the agent), an
//! [`AuditEntry::IngestBackpressure`](crate::actions::AuditEntry::IngestBackpressure) row is written, and a connection
//! that stays paused past `evict_pause` — a slow consumer holding the
//! lane hostage — is evicted with [`AuditEntry::ConnectionEvicted`](crate::actions::AuditEntry::ConnectionEvicted)
//! while every other lane keeps flowing. Oversized frames,
//! receive-buffer overflow and garbage floods evict the same way.
//!
//! Samples are stamped with the *report's* gather time (`time_secs`),
//! so identical agent traffic produces identical store contents
//! regardless of ingest mode, arrival jitter, or batching boundaries —
//! that property is what the reactor-vs-baseline differential test
//! asserts. Receive time still drives liveness and event evaluation.

use std::io::{self, Read};
use std::mem;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use cwx_monitor::monitor::Value;
use cwx_monitor::transmit::{Report, WireDecoder};
use cwx_net::frame::{ConnError, ConnLimits, FrameConn, ReadState};
use cwx_net::reactor::{Event, Interest, Poller, Token, Waker};
use cwx_store::disk::DiskStore;
use cwx_store::query::ExecutorStats;
use cwx_store::{
    AggFunc, BatchSample, QueryError, QueryExecutor, QueryGroup, QueryLimits, QueryResult,
    QuerySpec, Resolution, Store,
};
use cwx_util::time::{SimDuration, SimTime};
use parking_lot::{Mutex, RwLock};

use crate::actions::ControlPlane;
use crate::server::Server;

/// Which server architecture accepts agent connections.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IngestMode {
    /// Readiness-driven reactor: one thread, any number of sockets.
    Reactor,
    /// One blocking OS thread per connection (differential baseline).
    ThreadPerConn,
}

/// Tuning knobs for the ingest plane.
#[derive(Debug, Clone)]
pub struct IngestConfig {
    /// Listen address; port 0 picks a free port.
    pub listen: String,
    /// Server architecture.
    pub mode: IngestMode,
    /// Ingest lanes (one flush worker each); match the store's shard
    /// count so each lane's batches hit one WAL.
    pub n_lanes: usize,
    /// Node-group width used to route a report's node to a lane
    /// (matches the store's shard routing).
    pub nodes_per_group: u32,
    /// Decoded samples a lane buffers before its batch flushes.
    pub batch_samples: usize,
    /// Longest a buffered report waits before the batch flushes anyway.
    pub batch_delay: Duration,
    /// Largest accepted wire frame.
    pub max_frame: usize,
    /// Per-connection unparsed-byte bound across readiness events.
    pub conn_read_buffer: usize,
    /// Bound of each lane's flush queue, in batches; a full queue is a
    /// backpressure trip, not a bigger buffer.
    pub lane_queue_batches: usize,
    /// How long a connection may stay paused under lane backpressure
    /// before it is evicted as a slow consumer.
    pub evict_pause: Duration,
    /// Decode failures tolerated per connection before it is evicted
    /// as a garbage flood.
    pub max_decode_errors: u64,
    /// Baseline mode: how long a connection thread parks on a full
    /// lane queue before dropping the batch (park-then-drop, audited).
    pub handoff_timeout: Duration,
    /// Test hook: per-report flush-worker delay, to force backpressure.
    pub flush_stall: Option<Duration>,
    /// Test hook: confine `flush_stall` to one lane (`None` = all).
    pub stall_lane: Option<usize>,
    /// Worker threads of the query executor behind the `CWQ1` endpoint
    /// (reactor mode with a disk store only).
    pub query_workers: usize,
    /// Queries allowed to wait in the executor queue; one more is shed
    /// with an audit row.
    pub query_queue: usize,
    /// Default per-query scanned-entries budget.
    pub query_max_scan: u64,
    /// Most connections (agents + query clients) the reactor holds at
    /// once; `None` derives it from the process fd limit. A client
    /// accepted past the budget is shed with an audit row — reported,
    /// never silently clamped.
    pub conn_budget: Option<usize>,
}

impl Default for IngestConfig {
    fn default() -> Self {
        IngestConfig {
            listen: "127.0.0.1:0".to_string(),
            mode: IngestMode::Reactor,
            n_lanes: 1,
            nodes_per_group: u32::MAX,
            batch_samples: 512,
            batch_delay: Duration::from_millis(25),
            max_frame: 1 << 20,
            conn_read_buffer: 1 << 20,
            lane_queue_batches: 64,
            evict_pause: Duration::from_secs(30),
            max_decode_errors: 64,
            handoff_timeout: Duration::from_secs(30),
            flush_stall: None,
            stall_lane: None,
            query_workers: 2,
            query_queue: 32,
            query_max_scan: 8_000_000,
            conn_budget: None,
        }
    }
}

/// Point-in-time counters of a running (or finished) ingest server.
#[derive(Debug, Clone, Copy, Default)]
pub struct IngestStats {
    /// Connections accepted over the server's lifetime.
    pub accepted: u64,
    /// Connections currently open.
    pub active: u64,
    /// Connections closed by policy (slow consumer, oversize, garbage).
    pub evicted: u64,
    /// Wire frames received.
    pub frames: u64,
    /// Reports decoded and handed to flush workers.
    pub reports: u64,
    /// Numeric samples appended to the store.
    pub samples: u64,
    /// Frames that failed to decode.
    pub decode_errors: u64,
    /// Times a lane's flush queue filled and its connections were
    /// paused.
    pub backpressure_trips: u64,
    /// Baseline mode: reports dropped after a handoff park timed out.
    pub handoff_drops: u64,
    /// Wire payload bytes received.
    pub bytes: u64,
    /// `CWQ1` query requests received on the ingest plane.
    pub queries: u64,
    /// Query requests or query clients shed (executor admission control
    /// or fd budget) — each one also leaves an audit row.
    pub queries_shed: u64,
}

/// Latency summary over ingest flushes (readiness read → store
/// visible), microseconds.
#[derive(Debug, Clone, Copy, Default)]
pub struct IngestLatency {
    /// Flushed reports measured.
    pub count: usize,
    /// Median.
    pub p50_us: f64,
    /// 99th percentile.
    pub p99_us: f64,
    /// Worst observed.
    pub max_us: f64,
}

const LATENCY_RESERVOIR: usize = 200_000;

#[derive(Default)]
struct Shared {
    drain: AtomicBool,
    accepted: AtomicU64,
    active: AtomicU64,
    evicted: AtomicU64,
    frames: AtomicU64,
    reports: AtomicU64,
    samples: AtomicU64,
    decode_errors: AtomicU64,
    backpressure_trips: AtomicU64,
    handoff_drops: AtomicU64,
    bytes: AtomicU64,
    queries: AtomicU64,
    queries_shed: AtomicU64,
    latencies_us: Mutex<Vec<u64>>,
}

impl Shared {
    fn snapshot(&self) -> IngestStats {
        IngestStats {
            accepted: self.accepted.load(Ordering::Relaxed),
            active: self.active.load(Ordering::Relaxed),
            evicted: self.evicted.load(Ordering::Relaxed),
            frames: self.frames.load(Ordering::Relaxed),
            reports: self.reports.load(Ordering::Relaxed),
            samples: self.samples.load(Ordering::Relaxed),
            decode_errors: self.decode_errors.load(Ordering::Relaxed),
            backpressure_trips: self.backpressure_trips.load(Ordering::Relaxed),
            handoff_drops: self.handoff_drops.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
            queries: self.queries.load(Ordering::Relaxed),
            queries_shed: self.queries_shed.load(Ordering::Relaxed),
        }
    }
}

/// One decoded report travelling from a connection to a flush worker.
struct Decoded {
    /// Receive time (liveness / event evaluation).
    recv: SimTime,
    /// Wall-clock arrival, for the flush-latency histogram.
    rx_at: Instant,
    /// Wire bytes of the frame it came from.
    wire: usize,
    report: Report,
}

/// One lane's flush unit.
struct Batch {
    reports: Vec<Decoded>,
    /// Wire sizes of frames that failed to decode (server stats).
    error_bytes: Vec<usize>,
}

fn numeric_samples(report: &Report) -> usize {
    report
        .values
        .iter()
        .filter(|(_, v)| matches!(v, Value::Num(_)))
        .count()
}

/// The sample timestamp written to history: the report's own gather
/// time when it is sane, else the receive time. Using gather time makes
/// store contents a pure function of the agent traffic — the property
/// the reactor-vs-baseline differential test pins.
fn sample_time(d: &Decoded) -> SimTime {
    let t = d.report.time_secs;
    if t.is_finite() && t >= 0.0 {
        SimTime::ZERO + SimDuration::from_secs_f64(t)
    } else {
        d.recv
    }
}

#[allow(clippy::too_many_arguments)]
fn flusher_loop(
    lane: usize,
    rx: Receiver<Batch>,
    server: Arc<RwLock<Server>>,
    store: Option<Arc<DiskStore>>,
    shared: Arc<Shared>,
    waker: Waker,
    epoch: Instant,
    stall: Option<Duration>,
) -> u64 {
    let _ = lane;
    let mut total = 0u64;
    while let Ok(batch) = rx.recv() {
        if let Some(d) = stall {
            // test hook: a deliberately slow consumer
            std::thread::sleep(d * batch.reports.len().max(1) as u32);
        }
        let now = SimTime::ZERO + SimDuration::from_secs_f64(epoch.elapsed().as_secs_f64());
        let mut samples = 0u64;
        if let Some(store) = &store {
            let mut out: Vec<BatchSample> = Vec::new();
            for d in &batch.reports {
                let at = sample_time(d);
                for (key, value) in &d.report.values {
                    if let Value::Num(x) = value {
                        out.push(BatchSample {
                            node: d.report.node,
                            monitor: key.as_str(),
                            time: at,
                            value: *x,
                        });
                    }
                }
            }
            samples = out.len() as u64;
            // storage writes on the shard lock only; the server lock
            // below covers just events + liveness
            store.append_batch(&out);
            let mut srv = server.write();
            for d in &batch.reports {
                srv.ingest_report_events_only(d.recv, &d.report, d.wire);
            }
            for &b in &batch.error_bytes {
                srv.note_decode_error(b);
            }
            srv.housekeeping(now);
        } else {
            let mut srv = server.write();
            for d in &batch.reports {
                samples += numeric_samples(&d.report) as u64;
                srv.ingest_report_wire(d.recv, &d.report, d.wire);
            }
            for &b in &batch.error_bytes {
                srv.note_decode_error(b);
            }
            srv.housekeeping(now);
        }
        let done = Instant::now();
        {
            let mut lat = shared.latencies_us.lock();
            for d in &batch.reports {
                if lat.len() >= LATENCY_RESERVOIR {
                    break;
                }
                lat.push(done.duration_since(d.rx_at).as_micros() as u64);
            }
        }
        total += batch.reports.len() as u64;
        shared
            .reports
            .fetch_add(batch.reports.len() as u64, Ordering::Relaxed);
        shared.samples.fetch_add(samples, Ordering::Relaxed);
        // a blocked lane may be waiting on this queue slot
        waker.wake();
    }
    total
}

/// A running ingest listener (either mode) plus its flush workers.
pub struct IngestServer {
    addr: SocketAddr,
    shared: Arc<Shared>,
    waker: Waker,
    query: Option<Arc<QueryExecutor>>,
    front: Option<std::thread::JoinHandle<()>>,
    flushers: Vec<std::thread::JoinHandle<u64>>,
}

impl IngestServer {
    /// Bind the listener and start the front end and flush workers.
    pub fn start(
        cfg: IngestConfig,
        server: Arc<RwLock<Server>>,
        store: Option<Arc<DiskStore>>,
        control: Arc<Mutex<ControlPlane>>,
        epoch: Instant,
    ) -> io::Result<IngestServer> {
        let listener = TcpListener::bind(&cfg.listen)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        // survive cluster-wide reconnect storms without SYN drops
        let _ = cwx_net::reactor::widen_listen_backlog(&listener, 4096);
        let shared = Arc::new(Shared::default());
        let waker = Waker::new()?;

        let n_lanes = cfg.n_lanes.max(1);
        let mut txs = Vec::with_capacity(n_lanes);
        let mut flushers = Vec::with_capacity(n_lanes);
        for lane in 0..n_lanes {
            let (tx, rx) = bounded::<Batch>(cfg.lane_queue_batches.max(1));
            txs.push(tx);
            let server = Arc::clone(&server);
            let store = store.clone();
            let shared = Arc::clone(&shared);
            let waker = waker.clone();
            let stall = match (cfg.flush_stall, cfg.stall_lane) {
                (Some(d), Some(l)) if l == lane => Some(d),
                (Some(d), None) => Some(d),
                _ => None,
            };
            flushers.push(std::thread::spawn(move || {
                flusher_loop(lane, rx, server, store, shared, waker, epoch, stall)
            }));
        }

        // query endpoint: reactor front door over a durable store only
        let query = match (cfg.mode, &store) {
            (IngestMode::Reactor, Some(store)) => Some(Arc::new(QueryExecutor::new(
                Arc::clone(store) as Arc<dyn Store>,
                QueryLimits {
                    workers: cfg.query_workers.max(1),
                    max_queue: cfg.query_queue.max(1),
                    max_scanned_samples: cfg.query_max_scan,
                },
            ))),
            _ => None,
        };

        let front = {
            let cfg = cfg.clone();
            let shared = Arc::clone(&shared);
            let waker = waker.clone();
            let query = query.clone();
            match cfg.mode {
                IngestMode::Reactor => {
                    let mut reactor =
                        Reactor::new(cfg, listener, txs, control, shared, waker, epoch, query)?;
                    std::thread::spawn(move || reactor.run())
                }
                IngestMode::ThreadPerConn => std::thread::spawn(move || {
                    baseline_accept_loop(cfg, listener, txs, control, shared, waker, epoch)
                }),
            }
        };

        Ok(IngestServer {
            addr,
            shared,
            waker,
            query,
            front: Some(front),
            flushers,
        })
    }

    /// Query-executor counters, when the `CWQ1` endpoint is enabled.
    pub fn query_stats(&self) -> Option<ExecutorStats> {
        self.query.as_ref().map(|q| q.stats())
    }

    /// The bound address agents connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Current counters.
    pub fn stats(&self) -> IngestStats {
        self.shared.snapshot()
    }

    /// Flush-latency percentiles observed so far.
    pub fn latency(&self) -> IngestLatency {
        let lat = self.shared.latencies_us.lock();
        if lat.is_empty() {
            return IngestLatency::default();
        }
        let mut sorted: Vec<f64> = lat.iter().map(|&v| v as f64).collect();
        sorted.sort_by(|a, b| a.total_cmp(b));
        IngestLatency {
            count: sorted.len(),
            p50_us: cwx_util::stats::percentile_sorted(&sorted, 0.50),
            p99_us: cwx_util::stats::percentile_sorted(&sorted, 0.99),
            max_us: *sorted.last().unwrap(),
        }
    }

    /// Drain and stop: existing connections are read to EOF (with a
    /// deadline), buffered batches flush, workers join. Returns the
    /// total reports ingested.
    pub fn shutdown(mut self) -> u64 {
        self.shared.drain.store(true, Ordering::SeqCst);
        self.waker.wake();
        if let Some(f) = self.front.take() {
            let _ = f.join();
        }
        let mut total = 0;
        for f in self.flushers.drain(..) {
            if let Ok(n) = f.join() {
                total += n;
            }
        }
        total
    }
}

// ---------------------------------------------------------------------
// CWQ1 query wire protocol
//
// Dashboard clients share the ingest front door: any frame whose body
// starts with `CWQ1 ` is a query request, everything else is a `CWB1`
// report. Requests and replies are plain UTF-8 so any client (and the
// E17 bench driver) can speak it without the report codec:
//
//   CWQ1 <monitor> <agg> <from_ns> <to_ns> <window_ns> <groups> [max_scan]
//     groups := key:n1,n2,...[;key:...]
//   CWQR OK tier=<raw|10s|5m|1h> raw=<scanned> buckets=<scanned>
//   <group>,<window_start_ns>,<value>,<count>     (one line per point)
//   CWQR ERR <reason>

/// Human name of a resolution tier on the wire.
fn tier_name(r: Resolution) -> &'static str {
    match r {
        Resolution::Raw => "raw",
        Resolution::TenSeconds => "10s",
        Resolution::FiveMinutes => "5m",
        Resolution::OneHour => "1h",
    }
}

/// Encode a query spec as one `CWQ1` frame body.
pub fn encode_query(spec: &QuerySpec) -> Vec<u8> {
    let groups = spec
        .groups
        .iter()
        .map(|g| {
            let nodes = g
                .nodes
                .iter()
                .map(|n| n.to_string())
                .collect::<Vec<_>>()
                .join(",");
            format!("{}:{}", g.key, nodes)
        })
        .collect::<Vec<_>>()
        .join(";");
    format!(
        "CWQ1 {} {} {} {} {} {} {}",
        spec.monitor,
        spec.agg.name(),
        spec.from.as_nanos(),
        spec.to.as_nanos(),
        spec.window_nanos,
        groups,
        spec.max_scan,
    )
    .into_bytes()
}

/// Parse one `CWQ1` frame body into a query spec.
pub fn parse_query(frame: &[u8]) -> Result<QuerySpec, String> {
    let text = std::str::from_utf8(frame).map_err(|_| "request is not UTF-8".to_string())?;
    let mut it = text.split_ascii_whitespace();
    if it.next() != Some("CWQ1") {
        return Err("missing CWQ1 tag".into());
    }
    let monitor = it.next().ok_or("missing monitor")?.to_string();
    let agg_s = it.next().ok_or("missing aggregation")?;
    let agg = AggFunc::parse(agg_s).ok_or_else(|| format!("unknown aggregation {agg_s:?}"))?;
    let num = |field: &'static str, v: Option<&str>| -> Result<u64, String> {
        v.ok_or_else(|| format!("missing {field}"))?
            .parse::<u64>()
            .map_err(|_| format!("bad {field}"))
    };
    let from = num("from", it.next())?;
    let to = num("to", it.next())?;
    let window = num("window", it.next())?;
    let mut groups = Vec::new();
    for part in it.next().ok_or("missing groups")?.split(';') {
        let (key, nodes_s) = part.split_once(':').ok_or("group missing ':'")?;
        let mut nodes = Vec::new();
        for n in nodes_s.split(',').filter(|s| !s.is_empty()) {
            nodes.push(n.parse::<u32>().map_err(|_| format!("bad node {n:?}"))?);
        }
        groups.push(QueryGroup {
            key: key.to_string(),
            nodes,
        });
    }
    let max_scan = match it.next() {
        Some(v) => v.parse::<u64>().map_err(|_| "bad max_scan".to_string())?,
        None => 0,
    };
    Ok(QuerySpec {
        monitor,
        from: SimTime::from_nanos(from),
        to: SimTime::from_nanos(to),
        window_nanos: window,
        agg,
        groups,
        max_scan,
    })
}

/// Encode the executor's answer as one `CWQR` frame body.
fn encode_reply(res: &Result<QueryResult, QueryError>) -> Vec<u8> {
    match res {
        Ok(r) => {
            let mut out = format!(
                "CWQR OK tier={} raw={} buckets={}",
                tier_name(r.stats.tier),
                r.stats.scanned_raw,
                r.stats.scanned_buckets
            );
            for g in &r.groups {
                for p in &g.points {
                    out.push('\n');
                    out.push_str(&format!(
                        "{},{},{},{}",
                        g.key,
                        p.start.as_nanos(),
                        p.value,
                        p.count
                    ));
                }
            }
            out.into_bytes()
        }
        Err(e) => format!("CWQR ERR {e}").into_bytes(),
    }
}

/// A decoded `CWQR` reply (dashboard clients and the E17 bench).
#[derive(Debug, Clone, Default)]
pub struct QueryReply {
    /// Tier the answer was served from (`raw`, `10s`, `5m`, `1h`).
    pub tier: String,
    /// Raw samples scanned.
    pub scanned_raw: u64,
    /// Pre-aggregated buckets scanned.
    pub scanned_buckets: u64,
    /// `(group, window_start_ns, value, count)` rows.
    pub points: Vec<(String, u64, f64, u64)>,
}

/// Parse one `CWQR` frame body; a server-side error comes back as `Err`.
pub fn parse_reply(frame: &[u8]) -> Result<QueryReply, String> {
    let text = std::str::from_utf8(frame).map_err(|_| "reply is not UTF-8".to_string())?;
    let mut lines = text.lines();
    let head = lines.next().ok_or("empty reply")?;
    if let Some(err) = head.strip_prefix("CWQR ERR ") {
        return Err(err.to_string());
    }
    let rest = head.strip_prefix("CWQR OK ").ok_or("missing CWQR tag")?;
    let mut reply = QueryReply::default();
    for kv in rest.split_ascii_whitespace() {
        match kv.split_once('=') {
            Some(("tier", v)) => reply.tier = v.to_string(),
            Some(("raw", v)) => reply.scanned_raw = v.parse().map_err(|_| "bad raw=")?,
            Some(("buckets", v)) => {
                reply.scanned_buckets = v.parse().map_err(|_| "bad buckets=")?
            }
            _ => {}
        }
    }
    for line in lines {
        let mut f = line.splitn(4, ',');
        let key = f.next().ok_or("short row")?.to_string();
        let start = f
            .next()
            .ok_or("short row")?
            .parse()
            .map_err(|_| "bad start")?;
        let value = f
            .next()
            .ok_or("short row")?
            .parse()
            .map_err(|_| "bad value")?;
        let count = f
            .next()
            .ok_or("short row")?
            .parse()
            .map_err(|_| "bad count")?;
        reply.points.push((key, start, value, count));
    }
    Ok(reply)
}

// ---------------------------------------------------------------------
// Reactor front end

const TOK_LISTENER: Token = Token(0);
const TOK_WAKER: Token = Token(1);
const TOK_BASE: usize = 2;

/// How long after drain begins that still-open connections are closed
/// forcibly.
const DRAIN_DEADLINE: Duration = Duration::from_secs(10);

struct Conn {
    fc: FrameConn,
    decoder: WireDecoder,
    /// The agent node, learned from its first decoded report.
    node: Option<u32>,
    /// The lane that node routes to (pause/resume granularity).
    lane: Option<usize>,
    /// Set while paused under lane backpressure.
    paused_at: Option<Instant>,
    decode_errors: u64,
    /// Generation stamp: an async query reply addressed to a recycled
    /// slot must not reach whoever owns the slot now.
    gen: u64,
    /// Whether write interest is currently registered.
    write_interest: bool,
}

/// A finished query answer on its way back to a connection.
struct Reply {
    idx: usize,
    gen: u64,
    body: Vec<u8>,
}

struct Lane {
    tx: Sender<Batch>,
    pending: Vec<Decoded>,
    pending_samples: usize,
    error_bytes: Vec<usize>,
    oldest: Option<Instant>,
    blocked: bool,
}

struct Reactor {
    cfg: IngestConfig,
    listener: TcpListener,
    poller: Poller,
    waker: Waker,
    conns: Vec<Option<Conn>>,
    free: Vec<usize>,
    lanes: Vec<Lane>,
    control: Arc<Mutex<ControlPlane>>,
    shared: Arc<Shared>,
    epoch: Instant,
    drain_seen: Option<Instant>,
    accepting: bool,
    /// `CWQ1` query endpoint (present when backed by a disk store).
    query: Option<Arc<QueryExecutor>>,
    /// Answers pushed by executor workers, delivered on the next wake.
    replies: Arc<Mutex<Vec<Reply>>>,
    /// Most connections held at once (fd budget).
    conn_budget: usize,
    next_gen: u64,
}

impl Reactor {
    #[allow(clippy::too_many_arguments)]
    fn new(
        cfg: IngestConfig,
        listener: TcpListener,
        txs: Vec<Sender<Batch>>,
        control: Arc<Mutex<ControlPlane>>,
        shared: Arc<Shared>,
        waker: Waker,
        epoch: Instant,
        query: Option<Arc<QueryExecutor>>,
    ) -> io::Result<Reactor> {
        let mut poller = Poller::new()?;
        poller.register(listener.as_raw_fd(), TOK_LISTENER, Interest::READABLE)?;
        poller.register(waker.as_raw_fd(), TOK_WAKER, Interest::READABLE)?;
        let lanes = txs
            .into_iter()
            .map(|tx| Lane {
                tx,
                pending: Vec::new(),
                pending_samples: 0,
                error_bytes: Vec::new(),
                oldest: None,
                blocked: false,
            })
            .collect();
        // fd budget: the soft RLIMIT_NOFILE minus headroom for the
        // listener, waker, epoll, WAL/segment files and stdio
        let conn_budget = cfg.conn_budget.unwrap_or_else(|| {
            cwx_net::reactor::raise_nofile_limit()
                .map(|(soft, _)| (soft as usize).saturating_sub(256).max(64))
                .unwrap_or(usize::MAX)
        });
        Ok(Reactor {
            cfg,
            listener,
            poller,
            waker,
            conns: Vec::new(),
            free: Vec::new(),
            lanes,
            control,
            shared,
            epoch,
            drain_seen: None,
            accepting: true,
            query,
            replies: Arc::new(Mutex::new(Vec::new())),
            conn_budget,
            next_gen: 0,
        })
    }

    fn now(&self) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs_f64(self.epoch.elapsed().as_secs_f64())
    }

    fn run(&mut self) {
        let mut events: Vec<Event> = Vec::new();
        loop {
            let busy = self.lanes.iter().any(|l| l.oldest.is_some() || l.blocked)
                || self.drain_seen.is_some()
                || self
                    .conns
                    .iter()
                    .any(|c| c.as_ref().is_some_and(|c| c.paused_at.is_some()));
            let timeout = if busy {
                self.cfg.batch_delay.min(Duration::from_millis(20))
            } else {
                Duration::from_millis(100)
            };
            events.clear();
            if self.poller.poll(&mut events, Some(timeout)).is_err() {
                break;
            }
            for ev in events.iter().copied() {
                match ev.token {
                    TOK_LISTENER => self.accept_ready(),
                    TOK_WAKER => {
                        self.waker.drain();
                        self.deliver_replies();
                        self.retry_blocked_lanes();
                    }
                    Token(t) => self.conn_ready(t - TOK_BASE, ev),
                }
            }
            // time-based batch flushes
            for l in 0..self.lanes.len() {
                let due = self.lanes[l]
                    .oldest
                    .is_some_and(|t| t.elapsed() >= self.cfg.batch_delay);
                if due {
                    self.flush_lane(l);
                }
            }
            self.deliver_replies();
            self.retry_blocked_lanes();
            self.evict_overdue();
            if self.drain_tick() {
                break;
            }
        }
        self.finish();
    }

    /// Drain bookkeeping; true when the reactor should exit.
    fn drain_tick(&mut self) -> bool {
        if !self.shared.drain.load(Ordering::SeqCst) {
            return false;
        }
        let seen = *self.drain_seen.get_or_insert_with(|| {
            // stop accepting; existing conns get read to EOF
            self.accepting = false;
            let _ = self.poller.deregister(self.listener.as_raw_fd());
            Instant::now()
        });
        let live = self.shared.active.load(Ordering::Relaxed);
        if live == 0 {
            return true;
        }
        if seen.elapsed() >= DRAIN_DEADLINE {
            // clients that never hung up: close them now
            for idx in 0..self.conns.len() {
                if self.conns[idx].is_some() {
                    self.close_conn(idx);
                }
            }
            return true;
        }
        false
    }

    /// Final flush on the way out: everything still pending goes to the
    /// flush workers with a blocking send (the queues drain as workers
    /// run), then the lane senders drop so workers exit.
    fn finish(&mut self) {
        for lane in &mut self.lanes {
            if lane.pending.is_empty() && lane.error_bytes.is_empty() {
                continue;
            }
            let batch = Batch {
                reports: mem::take(&mut lane.pending),
                error_bytes: mem::take(&mut lane.error_bytes),
            };
            let _ = lane.tx.send(batch);
        }
    }

    fn accept_ready(&mut self) {
        while self.accepting {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    let active = self.shared.active.load(Ordering::Relaxed) as usize;
                    if active >= self.conn_budget {
                        // fd budget exhausted: shed the new client with
                        // an audit row — never a silent clamp
                        self.shared.queries_shed.fetch_add(1, Ordering::Relaxed);
                        self.shared.evicted.fetch_add(1, Ordering::Relaxed);
                        let budget = self.conn_budget;
                        self.control.lock().audit_query_shed(
                            self.now(),
                            format!(
                                "fd budget exhausted: {active} active connections at \
                                 budget {budget}; shedding new client"
                            ),
                        );
                        drop(stream);
                        continue;
                    }
                    let limits = ConnLimits {
                        max_frame: self.cfg.max_frame,
                        max_read_buffer: self.cfg.conn_read_buffer,
                        max_write_buffer: 1 << 20,
                    };
                    let fc = match FrameConn::new(stream, limits) {
                        Ok(fc) => fc,
                        Err(_) => continue,
                    };
                    let idx = match self.free.pop() {
                        Some(i) => i,
                        None => {
                            self.conns.push(None);
                            self.conns.len() - 1
                        }
                    };
                    if self
                        .poller
                        .register(
                            fc.stream().as_raw_fd(),
                            Token(idx + TOK_BASE),
                            Interest::READABLE,
                        )
                        .is_err()
                    {
                        self.free.push(idx);
                        continue;
                    }
                    self.next_gen += 1;
                    self.conns[idx] = Some(Conn {
                        fc,
                        decoder: WireDecoder::new(),
                        node: None,
                        lane: None,
                        paused_at: None,
                        decode_errors: 0,
                        gen: self.next_gen,
                        write_interest: false,
                    });
                    self.shared.accepted.fetch_add(1, Ordering::Relaxed);
                    self.shared.active.fetch_add(1, Ordering::Relaxed);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(_) => break,
            }
        }
    }

    fn conn_ready(&mut self, idx: usize, ev: Event) {
        let Some(mut conn) = self.conns.get_mut(idx).and_then(Option::take) else {
            return;
        };
        if conn.paused_at.is_some() {
            // stale event raced a pause; ignore until resumed
            self.conns[idx] = Some(conn);
            return;
        }
        if ev.writable {
            // a queued query reply the socket previously refused
            if let Err(e) = conn.fc.flush() {
                self.evict(idx, conn, &format!("{e}"));
                return;
            }
        }
        let mut queries: Vec<Vec<u8>> = Vec::new();
        let outcome = if ev.readable || ev.closed {
            self.read_conn(&mut conn, &mut queries)
        } else {
            Ok(ReadState::Drained)
        };
        for frame in &queries {
            if let Err(e) = self.handle_query(idx, &mut conn, frame) {
                self.evict(idx, conn, &format!("{e}"));
                self.flush_due_lanes();
                return;
            }
        }
        match outcome {
            Ok(ReadState::Drained) | Ok(ReadState::HasMore) => {
                // level-triggered poller re-fires on leftover data
                self.conns[idx] = Some(conn);
                self.update_interest(idx);
                self.flush_due_lanes();
            }
            Ok(ReadState::Eof) => {
                self.drop_conn(idx, conn);
                self.flush_due_lanes();
            }
            Err(e) => {
                self.evict(idx, conn, &format!("{e}"));
                self.flush_due_lanes();
            }
        }
    }

    /// Pull frames off one connection into the lane buffers. `CWQ1`
    /// query frames are set aside for [`Reactor::handle_query`] (the
    /// closure below cannot reach the executor while it borrows the
    /// lanes).
    fn read_conn(
        &mut self,
        conn: &mut Conn,
        queries: &mut Vec<Vec<u8>>,
    ) -> Result<ReadState, ConnError> {
        let now = self.now();
        let Conn {
            fc,
            decoder,
            node,
            lane,
            decode_errors,
            ..
        } = conn;
        let lanes = &mut self.lanes;
        let shared = &self.shared;
        let nodes_per_group = self.cfg.nodes_per_group.max(1);
        let n_lanes = lanes.len();
        let state = fc.read_frames(|frame| {
            shared.frames.fetch_add(1, Ordering::Relaxed);
            shared
                .bytes
                .fetch_add(frame.len() as u64, Ordering::Relaxed);
            if frame.starts_with(b"CWQ1 ") {
                queries.push(frame.to_vec());
                return;
            }
            match decoder.decode_auto(frame) {
                Ok(report) => {
                    let l = (report.node / nodes_per_group) as usize % n_lanes;
                    *node = Some(report.node);
                    *lane = Some(l);
                    let entry = &mut lanes[l];
                    entry.pending_samples += numeric_samples(&report);
                    entry.pending.push(Decoded {
                        recv: now,
                        rx_at: Instant::now(),
                        wire: frame.len(),
                        report,
                    });
                    entry.oldest.get_or_insert_with(Instant::now);
                }
                Err(_) => {
                    shared.decode_errors.fetch_add(1, Ordering::Relaxed);
                    *decode_errors += 1;
                    let l = lane.unwrap_or(0);
                    lanes[l].error_bytes.push(frame.len());
                    lanes[l].oldest.get_or_insert_with(Instant::now);
                }
            }
        })?;
        if conn.decode_errors > self.cfg.max_decode_errors {
            return Err(ConnError::Io(io::Error::new(
                io::ErrorKind::InvalidData,
                "garbage flood: too many undecodable frames",
            )));
        }
        Ok(state)
    }

    /// Admit one `CWQ1` request: parse, submit to the executor, and
    /// answer refusals immediately on the connection. A shed request is
    /// counted and audited — the client and the operator both see it.
    fn handle_query(&mut self, idx: usize, conn: &mut Conn, frame: &[u8]) -> Result<(), ConnError> {
        self.shared.queries.fetch_add(1, Ordering::Relaxed);
        let Some(exec) = self.query.clone() else {
            return conn
                .fc
                .queue_frame(b"CWQR ERR query endpoint disabled (no durable store)");
        };
        let spec = match parse_query(frame) {
            Ok(spec) => spec,
            Err(msg) => {
                return conn
                    .fc
                    .queue_frame(format!("CWQR ERR bad request: {msg}").as_bytes());
            }
        };
        let replies = Arc::clone(&self.replies);
        let waker = self.waker.clone();
        let gen = conn.gen;
        let submitted = exec.try_submit(spec, move |res| {
            replies.lock().push(Reply {
                idx,
                gen,
                body: encode_reply(&res),
            });
            waker.wake();
        });
        match submitted {
            Ok(()) => Ok(()),
            Err(e @ QueryError::Overloaded { .. }) => {
                self.shared.queries_shed.fetch_add(1, Ordering::Relaxed);
                self.control
                    .lock()
                    .audit_query_shed(self.now(), format!("query executor overloaded: {e}"));
                conn.fc
                    .queue_frame(format!("CWQR ERR shed: {e}").as_bytes())
            }
            Err(e) => conn.fc.queue_frame(format!("CWQR ERR {e}").as_bytes()),
        }
    }

    /// Deliver answers the executor workers finished since the last
    /// wake. A reply for a recycled slot (generation mismatch) is
    /// dropped; a reply that overflows the send queue evicts the slow
    /// dashboard client.
    fn deliver_replies(&mut self) {
        let pending: Vec<Reply> = mem::take(&mut *self.replies.lock());
        for r in pending {
            let outcome = match self.conns.get_mut(r.idx).and_then(Option::as_mut) {
                Some(conn) if conn.gen == r.gen => conn.fc.queue_frame(&r.body),
                _ => Ok(()), // connection gone; the answer has no home
            };
            match outcome {
                Ok(()) => self.update_interest(r.idx),
                Err(e) => {
                    if let Some(conn) = self.conns[r.idx].take() {
                        self.evict(r.idx, conn, &format!("query reply undeliverable: {e}"));
                    }
                }
            }
        }
    }

    /// Re-register write interest to match the connection's outbound
    /// queue (no-op unless it changed; paused connections keep their
    /// interest dropped).
    fn update_interest(&mut self, idx: usize) {
        let Some(conn) = self.conns.get_mut(idx).and_then(Option::as_mut) else {
            return;
        };
        if conn.paused_at.is_some() {
            return;
        }
        let want = conn.fc.wants_write();
        if want != conn.write_interest {
            conn.write_interest = want;
            let interest = if want {
                Interest::BOTH
            } else {
                Interest::READABLE
            };
            let _ = self.poller.reregister(
                conn.fc.stream().as_raw_fd(),
                Token(idx + TOK_BASE),
                interest,
            );
        }
    }

    /// Flush every lane whose size bound tripped.
    fn flush_due_lanes(&mut self) {
        for l in 0..self.lanes.len() {
            if self.lanes[l].pending_samples >= self.cfg.batch_samples {
                self.flush_lane(l);
            }
        }
    }

    /// Hand one lane's buffered batch to its flush worker; on a full
    /// queue, trip backpressure and pause the lane's connections.
    fn flush_lane(&mut self, l: usize) {
        let lane = &mut self.lanes[l];
        if lane.pending.is_empty() && lane.error_bytes.is_empty() {
            lane.oldest = None;
            return;
        }
        let batch = Batch {
            reports: mem::take(&mut lane.pending),
            error_bytes: mem::take(&mut lane.error_bytes),
        };
        match lane.tx.try_send(batch) {
            Ok(()) => {
                lane.pending_samples = 0;
                lane.oldest = None;
                if lane.blocked {
                    lane.blocked = false;
                    self.resume_lane(l);
                }
            }
            Err(TrySendError::Full(batch)) => {
                // put the batch back; the waker retries when the worker
                // frees a slot
                lane.pending = batch.reports;
                lane.error_bytes = batch.error_bytes;
                if !lane.blocked {
                    lane.blocked = true;
                    let queued = self.cfg.lane_queue_batches.max(1);
                    self.shared
                        .backpressure_trips
                        .fetch_add(1, Ordering::Relaxed);
                    self.control
                        .lock()
                        .audit_ingest_backpressure(self.now(), l, queued);
                    self.pause_lane(l);
                }
            }
            Err(TrySendError::Disconnected(_)) => {
                // shutdown race: workers are gone
                lane.pending_samples = 0;
                lane.oldest = None;
            }
        }
    }

    fn retry_blocked_lanes(&mut self) {
        for l in 0..self.lanes.len() {
            if self.lanes[l].blocked {
                self.flush_lane(l);
            }
        }
    }

    /// Drop read interest for every connection feeding lane `l`.
    fn pause_lane(&mut self, l: usize) {
        for idx in 0..self.conns.len() {
            if let Some(conn) = &mut self.conns[idx] {
                if conn.lane == Some(l) && conn.paused_at.is_none() {
                    conn.paused_at = Some(Instant::now());
                    let _ = self.poller.reregister(
                        conn.fc.stream().as_raw_fd(),
                        Token(idx + TOK_BASE),
                        Interest::NONE,
                    );
                }
            }
        }
    }

    /// Restore read interest after lane `l` unblocked.
    fn resume_lane(&mut self, l: usize) {
        for idx in 0..self.conns.len() {
            if let Some(conn) = &mut self.conns[idx] {
                if conn.lane == Some(l) && conn.paused_at.is_some() {
                    conn.paused_at = None;
                    let want = conn.fc.wants_write();
                    conn.write_interest = want;
                    let interest = if want {
                        Interest::BOTH
                    } else {
                        Interest::READABLE
                    };
                    let _ = self.poller.reregister(
                        conn.fc.stream().as_raw_fd(),
                        Token(idx + TOK_BASE),
                        interest,
                    );
                }
            }
        }
    }

    /// Evict connections that sat paused past the bound: a slow
    /// consumer chain (stalled store / full lane) must shed its
    /// sources, not stall the fleet.
    fn evict_overdue(&mut self) {
        for idx in 0..self.conns.len() {
            let overdue = self.conns[idx].as_ref().is_some_and(|c| {
                c.paused_at
                    .is_some_and(|t| t.elapsed() >= self.cfg.evict_pause)
            });
            if overdue {
                if let Some(conn) = self.conns[idx].take() {
                    let lane = conn.lane.unwrap_or(0);
                    self.evict(
                        idx,
                        conn,
                        &format!("slow consumer: lane {lane} backpressured past bound"),
                    );
                }
            }
        }
    }

    fn evict(&mut self, idx: usize, conn: Conn, reason: &str) {
        self.shared.evicted.fetch_add(1, Ordering::Relaxed);
        self.control
            .lock()
            .audit_connection_evicted(self.now(), conn.node, reason);
        self.drop_conn(idx, conn);
    }

    fn drop_conn(&mut self, idx: usize, conn: Conn) {
        let _ = self.poller.deregister(conn.fc.stream().as_raw_fd());
        self.shared.active.fetch_sub(1, Ordering::Relaxed);
        self.free.push(idx);
        drop(conn);
    }

    fn close_conn(&mut self, idx: usize) {
        if let Some(conn) = self.conns[idx].take() {
            self.drop_conn(idx, conn);
        }
    }
}

// ---------------------------------------------------------------------
// Thread-per-connection baseline

/// How many worker threads the baseline may hold at once. Every thread
/// costs the kernel ~4 memory mappings (stack, guard, sigaltstack and
/// its guard; measured, not guessed); blowing past `vm.max_map_count`
/// aborts the process from inside a half-started thread, where no
/// error path can run. Budget ahead of time — a fifth of the map
/// limit, leaving headroom for the heap and mapped segments — and shed
/// connections instead.
fn baseline_thread_budget() -> usize {
    let max_maps: usize = std::fs::read_to_string("/proc/sys/vm/max_map_count")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(65530);
    (max_maps / 5).max(256)
}

fn baseline_accept_loop(
    cfg: IngestConfig,
    listener: TcpListener,
    txs: Vec<Sender<Batch>>,
    control: Arc<Mutex<ControlPlane>>,
    shared: Arc<Shared>,
    waker: Waker,
    epoch: Instant,
) {
    let budget = baseline_thread_budget();
    let mut workers: Vec<std::thread::JoinHandle<()>> = Vec::new();
    while !shared.drain.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                shared.accepted.fetch_add(1, Ordering::Relaxed);
                shared.active.fetch_add(1, Ordering::Relaxed);
                if workers.len() >= budget {
                    shared.active.fetch_sub(1, Ordering::Relaxed);
                    shared.evicted.fetch_add(1, Ordering::Relaxed);
                    let now =
                        SimTime::ZERO + SimDuration::from_secs_f64(epoch.elapsed().as_secs_f64());
                    control.lock().audit_connection_evicted(
                        now,
                        None,
                        "thread-per-conn exhausted: worker thread budget reached",
                    );
                    drop(stream);
                    continue;
                }
                let cfg = cfg.clone();
                let txs = txs.clone();
                let control = Arc::clone(&control);
                let conn_control = Arc::clone(&control);
                let conn_shared = Arc::clone(&shared);
                let waker = waker.clone();
                // a modest stack: the conn loop keeps its buffers on
                // the heap, and default 8 MiB stacks exhaust the
                // kernel's mmap budget thousands of threads before the
                // fd limit
                let spawned = std::thread::Builder::new()
                    .stack_size(256 * 1024)
                    .spawn(move || {
                        baseline_conn_loop(
                            cfg,
                            stream,
                            txs,
                            conn_control,
                            &conn_shared,
                            waker,
                            epoch,
                        );
                        conn_shared.active.fetch_sub(1, Ordering::Relaxed);
                    });
                match spawned {
                    Ok(h) => workers.push(h),
                    // out of threads IS the baseline's failure mode at
                    // scale; shed the connection instead of panicking
                    Err(_) => {
                        shared.active.fetch_sub(1, Ordering::Relaxed);
                        shared.evicted.fetch_add(1, Ordering::Relaxed);
                        let now = SimTime::ZERO
                            + SimDuration::from_secs_f64(epoch.elapsed().as_secs_f64());
                        control.lock().audit_connection_evicted(
                            now,
                            None,
                            "thread-per-conn exhausted: cannot spawn worker thread",
                        );
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => break,
        }
    }
    for w in workers {
        let _ = w.join();
    }
}

/// Outcome of one blocking framed read.
enum BlockingRead {
    Frame(usize),
    Eof,
    /// Read timeout at a frame boundary (safe point for a delay flush).
    Idle,
}

/// Blocking length-prefixed read that survives read timeouts without
/// losing framing: a timeout mid-frame keeps waiting, a timeout at a
/// frame boundary returns [`BlockingRead::Idle`].
fn read_frame_blocking(
    stream: &mut TcpStream,
    max_frame: usize,
    buf: &mut Vec<u8>,
) -> io::Result<BlockingRead> {
    let mut header = [0u8; 4];
    let mut got = 0usize;
    while got < 4 {
        match stream.read(&mut header[got..]) {
            Ok(0) => {
                return if got == 0 {
                    Ok(BlockingRead::Eof)
                } else {
                    Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "eof inside frame header",
                    ))
                }
            }
            Ok(n) => got += n,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if got == 0 {
                    return Ok(BlockingRead::Idle);
                }
                // mid-header: keep waiting, framing depends on it
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_le_bytes(header) as usize;
    if len > max_frame {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("oversized frame ({len} bytes)"),
        ));
    }
    buf.resize(len, 0);
    let mut read = 0usize;
    while read < len {
        match stream.read(&mut buf[read..]) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "eof inside frame body",
                ))
            }
            Ok(n) => read += n,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut
                    || e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(BlockingRead::Frame(len))
}

#[allow(clippy::too_many_arguments)]
fn baseline_conn_loop(
    cfg: IngestConfig,
    mut stream: TcpStream,
    txs: Vec<Sender<Batch>>,
    control: Arc<Mutex<ControlPlane>>,
    shared: &Shared,
    waker: Waker,
    epoch: Instant,
) {
    let _ = stream.set_nodelay(true);
    // short timeout only while a partial batch waits on the delay
    // flush; with nothing pending the thread can block much longer —
    // at tens of thousands of threads the idle wake rate is what
    // decides whether this architecture lives or dies
    let batch_to = cfg.batch_delay.max(Duration::from_millis(1));
    let idle_to = batch_to.max(Duration::from_millis(500));
    let _ = stream.set_read_timeout(Some(idle_to));
    let mut timeout_is_batch = false;
    let mut decoder = WireDecoder::new();
    let mut buf: Vec<u8> = Vec::new();
    let mut pending: Vec<Decoded> = Vec::new();
    let mut pending_samples = 0usize;
    let mut error_bytes: Vec<usize> = Vec::new();
    let mut oldest: Option<Instant> = None;
    let mut lane = 0usize;
    let mut decode_errors = 0u64;
    let mut drop_audited = false;
    let nodes_per_group = cfg.nodes_per_group.max(1);

    let handoff = |pending: &mut Vec<Decoded>,
                   pending_samples: &mut usize,
                   error_bytes: &mut Vec<usize>,
                   oldest: &mut Option<Instant>,
                   lane: usize,
                   drop_audited: &mut bool| {
        if pending.is_empty() && error_bytes.is_empty() {
            return;
        }
        let n = pending.len() as u64;
        let batch = Batch {
            reports: mem::take(pending),
            error_bytes: mem::take(error_bytes),
        };
        *pending_samples = 0;
        *oldest = None;
        // bounded handoff: park up to the timeout, then drop — audited,
        // never an unbounded wait or an unbounded buffer
        if txs[lane].send_timeout(batch, cfg.handoff_timeout).is_err() {
            shared.handoff_drops.fetch_add(n, Ordering::Relaxed);
            if !*drop_audited {
                *drop_audited = true;
                let now = SimTime::ZERO + SimDuration::from_secs_f64(epoch.elapsed().as_secs_f64());
                control.lock().audit_io_error(
                    now,
                    None,
                    format!("ingest handoff parked past bound; dropping (lane {lane})"),
                );
            }
        } else {
            waker.wake();
        }
    };

    // on drain, keep reading until the stream goes quiet (frame
    // boundary with nothing buffered) or EOF, bounded by the same
    // deadline as the reactor — breaking immediately would strand
    // frames the kernel has already accepted from the agent
    let mut drain_since: Option<Instant> = None;
    loop {
        if drain_since.is_none() && shared.drain.load(Ordering::SeqCst) {
            drain_since = Some(Instant::now());
            let _ = stream.set_read_timeout(Some(Duration::from_millis(20)));
        }
        if drain_since.is_some_and(|t| t.elapsed() >= DRAIN_DEADLINE) {
            break;
        }
        let want_batch = !(pending.is_empty() && error_bytes.is_empty());
        if drain_since.is_none() && want_batch != timeout_is_batch {
            timeout_is_batch = want_batch;
            let _ = stream.set_read_timeout(Some(if want_batch { batch_to } else { idle_to }));
        }
        match read_frame_blocking(&mut stream, cfg.max_frame, &mut buf) {
            Ok(BlockingRead::Frame(len)) => {
                shared.frames.fetch_add(1, Ordering::Relaxed);
                shared.bytes.fetch_add(len as u64, Ordering::Relaxed);
                let now = SimTime::ZERO + SimDuration::from_secs_f64(epoch.elapsed().as_secs_f64());
                match decoder.decode_auto(&buf[..len]) {
                    Ok(report) => {
                        lane = (report.node / nodes_per_group) as usize % txs.len();
                        pending_samples += numeric_samples(&report);
                        pending.push(Decoded {
                            recv: now,
                            rx_at: Instant::now(),
                            wire: len,
                            report,
                        });
                        oldest.get_or_insert_with(Instant::now);
                    }
                    Err(_) => {
                        shared.decode_errors.fetch_add(1, Ordering::Relaxed);
                        decode_errors += 1;
                        error_bytes.push(len);
                        oldest.get_or_insert_with(Instant::now);
                        if decode_errors > cfg.max_decode_errors {
                            shared.evicted.fetch_add(1, Ordering::Relaxed);
                            control.lock().audit_connection_evicted(
                                now,
                                None,
                                "garbage flood: too many undecodable frames",
                            );
                            break;
                        }
                    }
                }
                if pending_samples >= cfg.batch_samples {
                    handoff(
                        &mut pending,
                        &mut pending_samples,
                        &mut error_bytes,
                        &mut oldest,
                        lane,
                        &mut drop_audited,
                    );
                }
            }
            Ok(BlockingRead::Idle) => {
                if drain_since.is_some() {
                    break; // quiet at a frame boundary: drained
                }
                if oldest.is_some_and(|t| t.elapsed() >= cfg.batch_delay) {
                    handoff(
                        &mut pending,
                        &mut pending_samples,
                        &mut error_bytes,
                        &mut oldest,
                        lane,
                        &mut drop_audited,
                    );
                }
            }
            Ok(BlockingRead::Eof) => break,
            Err(_) => break,
        }
    }
    handoff(
        &mut pending,
        &mut pending_samples,
        &mut error_bytes,
        &mut oldest,
        lane,
        &mut drop_audited,
    );
}

// ---------------------------------------------------------------------
// Load driver (benchmarks, smoke tests, `cwx ingest drive`)

/// Traffic shape for [`drive`]: `conns` concurrent agent connections
/// multiplexed over a few writer threads, each sending `frames_per_conn`
/// scripted `CWB1` reports at `interval` pacing.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Ingest server address.
    pub addr: String,
    /// Concurrent connections to hold open.
    pub conns: usize,
    /// Node id of the first connection (connection `i` reports as
    /// `start_node + i`).
    pub start_node: u32,
    /// Frames each connection sends.
    pub frames_per_conn: u64,
    /// Pacing between a connection's frames.
    pub interval: Duration,
    /// OS threads multiplexing the connections.
    pub writer_threads: usize,
    /// Numeric monitor keys per report.
    pub keys: usize,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            addr: String::new(),
            conns: 100,
            start_node: 0,
            frames_per_conn: 10,
            interval: Duration::from_millis(100),
            writer_threads: 4,
            keys: 8,
        }
    }
}

/// What [`drive`] accomplished.
#[derive(Debug, Clone, Copy, Default)]
pub struct LoadStats {
    /// Connections successfully established.
    pub connected: u64,
    /// Frames fully written.
    pub frames_sent: u64,
    /// Expected numeric samples those frames carried.
    pub samples_sent: u64,
    /// Wire payload bytes written (excluding length prefixes).
    pub bytes_sent: u64,
    /// Connections lost to write errors (e.g. server eviction).
    pub write_errors: u64,
}

/// The deterministic report connection `node` sends as its `seq`-th
/// frame. Times and values are scripted, so two servers fed the same
/// `LoadConfig` hold identical store contents — the differential
/// test's ground truth.
pub fn scripted_report(node: u32, seq: u64, interval: Duration, keys: usize) -> Report {
    use cwx_monitor::monitor::MonitorKey;
    let values = (0..keys)
        .map(|k| {
            (
                MonitorKey::new(format!("bench.m{k}")),
                Value::Num(node as f64 * 0.001 + seq as f64 + k as f64 * 0.5),
            )
        })
        .collect();
    Report {
        node,
        seq,
        time_secs: (seq + 1) as f64 * interval.as_secs_f64(),
        values,
    }
}

/// Open `cfg.conns` connections and pump scripted traffic through
/// them. Blocking writes: a backpressured server slows the driver via
/// the TCP window rather than ballooning driver memory.
pub fn drive(cfg: LoadConfig) -> io::Result<LoadStats> {
    use cwx_monitor::transmit::WireEncoder;
    let n_threads = cfg.writer_threads.clamp(1, cfg.conns.max(1));
    let per = cfg.conns.div_ceil(n_threads);
    let totals = Arc::new(Mutex::new(LoadStats::default()));
    let mut handles = Vec::new();
    for t in 0..n_threads {
        let lo = t * per;
        let hi = ((t + 1) * per).min(cfg.conns);
        if lo >= hi {
            break;
        }
        let cfg = cfg.clone();
        let totals = Arc::clone(&totals);
        handles.push(std::thread::spawn(move || {
            let mut stats = LoadStats::default();
            struct Lane {
                stream: TcpStream,
                encoder: WireEncoder,
                node: u32,
                dead: bool,
            }
            let mut conns: Vec<Lane> = Vec::with_capacity(hi - lo);
            for i in lo..hi {
                // a listener backlog can reject a burst of 10k SYNs;
                // retry with a small pause before giving up
                let mut attempt = 0;
                let stream = loop {
                    match TcpStream::connect(&cfg.addr) {
                        Ok(s) => break Some(s),
                        Err(_) if attempt < 50 => {
                            attempt += 1;
                            std::thread::sleep(Duration::from_millis(20));
                        }
                        Err(_) => break None,
                    }
                };
                let Some(stream) = stream else {
                    stats.write_errors += 1;
                    continue;
                };
                let _ = stream.set_nodelay(true);
                stats.connected += 1;
                conns.push(Lane {
                    stream,
                    encoder: WireEncoder::new(),
                    node: cfg.start_node + i as u32,
                    dead: false,
                });
            }
            let mut payload = Vec::new();
            let mut frame = Vec::new();
            let started = Instant::now();
            for seq in 0..cfg.frames_per_conn {
                for lane in conns.iter_mut().filter(|c| !c.dead) {
                    let report = scripted_report(lane.node, seq, cfg.interval, cfg.keys);
                    lane.encoder.encode_into(&report, &mut payload);
                    frame.clear();
                    cwx_net::frame::put_frame(&mut frame, &payload);
                    match io::Write::write_all(&mut lane.stream, &frame) {
                        Ok(()) => {
                            stats.frames_sent += 1;
                            stats.samples_sent += cfg.keys as u64;
                            stats.bytes_sent += payload.len() as u64;
                        }
                        Err(_) => {
                            lane.dead = true;
                            stats.write_errors += 1;
                        }
                    }
                }
                // round pacing: each connection averages one frame per
                // interval
                let due = cfg.interval * (seq + 1) as u32;
                let elapsed = started.elapsed();
                if elapsed < due {
                    std::thread::sleep(due - elapsed);
                }
            }
            let mut t = totals.lock();
            t.connected += stats.connected;
            t.frames_sent += stats.frames_sent;
            t.samples_sent += stats.samples_sent;
            t.bytes_sent += stats.bytes_sent;
            t.write_errors += stats.write_errors;
        }));
    }
    for h in handles {
        let _ = h.join();
    }
    let stats = *totals.lock();
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cwx_util::time::SimDuration;

    fn harness(mode: IngestMode, cfg_tweak: impl FnOnce(&mut IngestConfig)) -> TestRig {
        let control = Arc::new(Mutex::new(ControlPlane::new(64)));
        let server = Arc::new(RwLock::new(Server::new(
            "ingest-test",
            SimDuration::from_secs(5),
            4096,
            SimDuration::from_secs(30),
        )));
        let mut cfg = IngestConfig {
            mode,
            batch_delay: Duration::from_millis(10),
            ..IngestConfig::default()
        };
        cfg_tweak(&mut cfg);
        let ingest = IngestServer::start(
            cfg,
            Arc::clone(&server),
            None,
            Arc::clone(&control),
            Instant::now(),
        )
        .unwrap();
        TestRig {
            server,
            control,
            ingest,
        }
    }

    struct TestRig {
        server: Arc<RwLock<Server>>,
        control: Arc<Mutex<ControlPlane>>,
        ingest: IngestServer,
    }

    #[test]
    fn reactor_ingests_multiplexed_connections() {
        let rig = harness(IngestMode::Reactor, |_| {});
        let stats = drive(LoadConfig {
            addr: rig.ingest.addr().to_string(),
            conns: 50,
            frames_per_conn: 5,
            interval: Duration::from_millis(10),
            ..LoadConfig::default()
        })
        .unwrap();
        assert_eq!(stats.connected, 50);
        assert_eq!(stats.frames_sent, 250);
        assert_eq!(stats.write_errors, 0);
        // drain: drive() closed its sockets; shutdown reads them to EOF
        let ingested = rig.ingest.shutdown();
        assert_eq!(ingested, 250);
        let srv = rig.server.read();
        assert_eq!(srv.stats().reports_rx, 250);
        assert_eq!(srv.stats().decode_errors, 0);
        assert!(rig.control.lock().audit().is_empty(), "no evictions");
    }

    #[test]
    fn baseline_ingests_the_same_traffic() {
        let rig = harness(IngestMode::ThreadPerConn, |_| {});
        let stats = drive(LoadConfig {
            addr: rig.ingest.addr().to_string(),
            conns: 10,
            frames_per_conn: 4,
            interval: Duration::from_millis(5),
            ..LoadConfig::default()
        })
        .unwrap();
        assert_eq!(stats.frames_sent, 40);
        let ingested = rig.ingest.shutdown();
        assert_eq!(ingested, 40);
        assert_eq!(rig.server.read().stats().reports_rx, 40);
    }

    #[test]
    fn garbage_flood_is_evicted_with_audit() {
        let rig = harness(IngestMode::Reactor, |c| c.max_decode_errors = 5);
        let mut s = TcpStream::connect(rig.ingest.addr()).unwrap();
        let mut wire = Vec::new();
        for _ in 0..50 {
            cwx_net::frame::put_frame(&mut wire, b"CWB1 this is not a valid frame");
        }
        let _ = io::Write::write_all(&mut s, &wire);
        // server closes us; wait for the eviction to land
        let deadline = Instant::now() + Duration::from_secs(5);
        while rig.ingest.stats().evicted == 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(rig.ingest.stats().evicted, 1);
        drop(s);
        rig.ingest.shutdown();
        let control = rig.control.lock();
        assert!(control.audit().iter().any(|r| matches!(
            &r.entry,
            crate::actions::AuditEntry::ConnectionEvicted { reason } if reason.contains("garbage")
        )));
    }

    fn send_frame(s: &mut TcpStream, body: &[u8]) {
        let mut wire = Vec::new();
        cwx_net::frame::put_frame(&mut wire, body);
        io::Write::write_all(s, &wire).unwrap();
    }

    fn read_frame(s: &mut TcpStream) -> Vec<u8> {
        let mut header = [0u8; 4];
        s.read_exact(&mut header).unwrap();
        let len = u32::from_le_bytes(header) as usize;
        let mut body = vec![0u8; len];
        s.read_exact(&mut body).unwrap();
        body
    }

    #[test]
    fn query_endpoint_answers_over_the_wire() {
        let dir = std::env::temp_dir().join(format!("cwx-ingest-query-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store =
            Arc::new(DiskStore::open(&dir, cwx_store::disk::StoreConfig::default()).unwrap());
        for i in 0..100u64 {
            store.append(
                0,
                "cpu.load",
                SimTime::ZERO + SimDuration::from_secs(i),
                i as f64,
            );
        }
        let control = Arc::new(Mutex::new(ControlPlane::new(64)));
        let server = Arc::new(RwLock::new(Server::new(
            "ingest-query-test",
            SimDuration::from_secs(5),
            4096,
            SimDuration::from_secs(30),
        )));
        let ingest = IngestServer::start(
            IngestConfig::default(),
            server,
            Some(Arc::clone(&store)),
            Arc::clone(&control),
            Instant::now(),
        )
        .unwrap();

        let mut s = TcpStream::connect(ingest.addr()).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let spec = QuerySpec {
            monitor: "cpu.load".into(),
            from: SimTime::ZERO,
            to: SimTime::ZERO + SimDuration::from_secs(99),
            window_nanos: 10 * 1_000_000_000,
            agg: AggFunc::Avg,
            groups: vec![QueryGroup {
                key: "all".into(),
                nodes: vec![0],
            }],
            max_scan: 0,
        };
        send_frame(&mut s, &encode_query(&spec));
        let reply = parse_reply(&read_frame(&mut s)).unwrap();
        assert_eq!(reply.points.len(), 10);
        assert_eq!(reply.points[0].0, "all");
        assert_eq!(reply.points[0].3, 10);
        assert!((reply.points[0].2 - 4.5).abs() < 1e-9);

        // a bad request is answered, not dropped
        send_frame(&mut s, b"CWQ1 cpu.load frobnicate 0 1 1 all:0");
        let err = parse_reply(&read_frame(&mut s)).unwrap_err();
        assert!(err.contains("unknown aggregation"), "{err}");

        assert_eq!(ingest.stats().queries, 2);
        assert_eq!(ingest.query_stats().unwrap().completed, 1);
        drop(s);
        ingest.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fd_budget_sheds_new_clients_with_audit_row() {
        let rig = harness(IngestMode::Reactor, |c| c.conn_budget = Some(2));
        let _s1 = TcpStream::connect(rig.ingest.addr()).unwrap();
        let _s2 = TcpStream::connect(rig.ingest.addr()).unwrap();
        let deadline = Instant::now() + Duration::from_secs(5);
        while rig.ingest.stats().active < 2 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(rig.ingest.stats().active, 2);
        let _s3 = TcpStream::connect(rig.ingest.addr()).unwrap();
        while rig.ingest.stats().queries_shed == 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(rig.ingest.stats().queries_shed, 1, "third client shed");
        assert_eq!(rig.ingest.stats().active, 2, "budget holds");
        rig.ingest.shutdown();
        let control = rig.control.lock();
        assert!(
            control.audit().iter().any(|r| matches!(
                &r.entry,
                crate::actions::AuditEntry::QueryShed { reason } if reason.contains("fd budget")
            )),
            "shed client must leave an audit row"
        );
    }

    #[test]
    fn query_wire_protocol_round_trips() {
        let spec = QuerySpec {
            monitor: "mem.free".into(),
            from: SimTime::from_nanos(5),
            to: SimTime::from_nanos(7_000_000_000),
            window_nanos: 1_000_000_000,
            agg: AggFunc::P99,
            groups: vec![
                QueryGroup {
                    key: "rack0".into(),
                    nodes: vec![0, 1, 2],
                },
                QueryGroup {
                    key: "rack1".into(),
                    nodes: vec![10, 11],
                },
            ],
            max_scan: 1234,
        };
        let parsed = parse_query(&encode_query(&spec)).unwrap();
        assert_eq!(parsed.monitor, spec.monitor);
        assert_eq!(parsed.agg, spec.agg);
        assert_eq!(parsed.from, spec.from);
        assert_eq!(parsed.to, spec.to);
        assert_eq!(parsed.window_nanos, spec.window_nanos);
        assert_eq!(parsed.max_scan, spec.max_scan);
        assert_eq!(parsed.groups.len(), 2);
        assert_eq!(parsed.groups[1].nodes, vec![10, 11]);
    }

    #[test]
    fn oversized_frame_is_evicted_not_allocated() {
        let rig = harness(IngestMode::Reactor, |c| c.max_frame = 1024);
        let mut s = TcpStream::connect(rig.ingest.addr()).unwrap();
        let _ = io::Write::write_all(&mut s, &u32::MAX.to_le_bytes());
        let deadline = Instant::now() + Duration::from_secs(5);
        while rig.ingest.stats().evicted == 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(rig.ingest.stats().evicted, 1);
        drop(s);
        rig.ingest.shutdown();
    }
}
