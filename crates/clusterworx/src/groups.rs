//! Node groups: the GUI's bulk-management primitive.
//!
//! The product's screens operate on selections — "ClusterWorX
//! automatically clones the images to selected nodes", power-cycle a
//! rack, chart one partition. [`Groups`] is that selection model: named,
//! possibly overlapping sets of nodes, with bulk power operations and
//! per-group monitoring summaries.

use std::collections::{BTreeMap, BTreeSet};

use cwx_monitor::monitor::MonitorKey;
use cwx_util::sim::Sim;

use crate::world::{power_off_node, power_on_node, World};

/// Named node groups.
#[derive(Debug, Default, Clone)]
pub struct Groups {
    map: BTreeMap<String, BTreeSet<u32>>,
}

/// Aggregate monitoring view of one group.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupSummary {
    /// Group name.
    pub name: String,
    /// Members.
    pub members: usize,
    /// Members whose OS is up.
    pub up: usize,
    /// Mean of the latest `cpu.util_pct` across reporting members.
    pub mean_cpu_pct: f64,
    /// Max of the latest `temp.cpu` across reporting members.
    pub max_temp_c: f64,
}

impl Groups {
    /// Empty group set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Groups pre-populated by chassis: `rack0` = nodes 0–9, etc.
    pub fn by_rack(n_nodes: u32) -> Self {
        let mut g = Self::new();
        for node in 0..n_nodes {
            g.add(&format!("rack{}", node / 10), node);
        }
        g
    }

    /// Add a node to a group (created on first use).
    pub fn add(&mut self, group: &str, node: u32) {
        self.map.entry(group.to_string()).or_default().insert(node);
    }

    /// Remove a node from a group; drops the group when it empties.
    pub fn remove(&mut self, group: &str, node: u32) {
        if let Some(set) = self.map.get_mut(group) {
            set.remove(&node);
            if set.is_empty() {
                self.map.remove(group);
            }
        }
    }

    /// Members of a group (empty for unknown groups).
    pub fn members(&self, group: &str) -> Vec<u32> {
        self.map
            .get(group)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default()
    }

    /// All group names.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.map.keys().map(String::as_str)
    }

    /// Groups a node belongs to.
    pub fn groups_of(&self, node: u32) -> Vec<&str> {
        self.map
            .iter()
            .filter(|(_, s)| s.contains(&node))
            .map(|(k, _)| k.as_str())
            .collect()
    }
}

/// Power every member of a group on (sequenced through their chassis).
pub fn power_on_group(sim: &mut Sim<World>, groups: &Groups, group: &str) -> usize {
    let members = groups.members(group);
    for &n in &members {
        power_on_node(sim, n);
    }
    members.len()
}

/// Cut power to every member of a group.
pub fn power_off_group(sim: &mut Sim<World>, groups: &Groups, group: &str) -> usize {
    let members = groups.members(group);
    for &n in &members {
        power_off_node(sim, n);
    }
    members.len()
}

/// Build the monitoring summary of one group.
pub fn summarize(world: &World, groups: &Groups, group: &str) -> GroupSummary {
    let members = groups.members(group);
    let up = members
        .iter()
        .filter(|&&n| world.nodes.get(n as usize).is_some_and(|s| s.hw.is_up()))
        .count();
    let latest = |node: u32, key: &str| {
        world
            .server
            .history()
            .latest(node, &MonitorKey::new(key))
            .map(|s| s.value)
    };
    let cpus: Vec<f64> = members
        .iter()
        .filter_map(|&n| latest(n, "cpu.util_pct"))
        .collect();
    let temps: Vec<f64> = members
        .iter()
        .filter_map(|&n| latest(n, "temp.cpu"))
        .collect();
    GroupSummary {
        name: group.to_string(),
        members: members.len(),
        up,
        mean_cpu_pct: if cpus.is_empty() {
            f64::NAN
        } else {
            cpus.iter().sum::<f64>() / cpus.len() as f64
        },
        max_temp_c: temps.iter().copied().fold(f64::NAN, f64::max),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ClusterConfig, WorkloadMix};
    use crate::world::Cluster;
    use cwx_util::time::SimDuration;

    #[test]
    fn group_membership_operations() {
        let mut g = Groups::new();
        g.add("io", 1);
        g.add("io", 3);
        g.add("compute", 3);
        assert_eq!(g.members("io"), vec![1, 3]);
        assert_eq!(g.groups_of(3), vec!["compute", "io"]);
        g.remove("io", 1);
        g.remove("io", 3);
        assert!(g.members("io").is_empty());
        assert_eq!(g.names().count(), 1);
        assert!(g.members("nope").is_empty());
    }

    #[test]
    fn by_rack_matches_chassis_topology() {
        let g = Groups::by_rack(25);
        assert_eq!(g.members("rack0").len(), 10);
        assert_eq!(g.members("rack1").len(), 10);
        assert_eq!(g.members("rack2"), vec![20, 21, 22, 23, 24]);
    }

    #[test]
    fn group_power_operations_and_summary() {
        let mut sim = Cluster::build(ClusterConfig {
            n_nodes: 20,
            seed: 8,
            workload: WorkloadMix::Constant(0.5),
            ..Default::default()
        });
        sim.run_for(SimDuration::from_secs(180));
        let groups = Groups::by_rack(20);
        // take rack1 down for maintenance
        assert_eq!(power_off_group(&mut sim, &groups, "rack1"), 10);
        sim.run_for(SimDuration::from_secs(60));
        let s0 = summarize(sim.world(), &groups, "rack0");
        let s1 = summarize(sim.world(), &groups, "rack1");
        assert_eq!(s0.up, 10);
        assert_eq!(s1.up, 0);
        assert!(s0.mean_cpu_pct > 20.0, "{s0:?}");
        assert!(s0.max_temp_c > 30.0);
        // bring it back
        power_on_group(&mut sim, &groups, "rack1");
        sim.run_for(SimDuration::from_secs(120));
        assert_eq!(summarize(sim.world(), &groups, "rack1").up, 10);
    }
}
