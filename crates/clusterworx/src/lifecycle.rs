//! The per-node lifecycle state machine: the single source of truth for
//! what each node is doing and which transitions are legal.
//!
//! The paper's §5 event loop assumes one authority that knows whether a
//! node is off, booting, up, draining or failed before it fires a power
//! action at it. This module is that authority, shared verbatim between
//! the discrete-event simulation ([`crate::world`]) and the wall-clock
//! deployment ([`crate::realtime`]): both drive the identical machine
//! through [`crate::actions::ControlPlane`].
//!
//! ```text
//!          Off ──► PoweringOn ──► Bios ──► Up ──► Draining ──► Off
//!           ▲          │            │       │ │        │
//!           │          ▼            ▼       │ ▼        │
//!           └───────── Off   Failed(..) ◄───┘ Halted ──┘
//! ```
//!
//! `Cloning` overlays the power states during provisioning (the node is
//! deliberately dark while an image streams to it), and `Failed(reason)`
//! edges exist from anywhere hardware can break.

use cwx_util::time::SimTime;

/// Why a node landed in [`LifecycleState::Failed`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailReason {
    /// The firmware memory check failed; the node halts in BIOS.
    MemoryCheck,
    /// The CPU burned (unattended thermal runaway). Needs repair.
    Burned,
    /// The node stopped answering: a boot that never completed despite
    /// watchdog retries, or a clone receiver abandoned mid-session.
    Unresponsive,
}

/// Lifecycle state of one node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LifecycleState {
    /// Outlet relay open; the node draws nothing.
    Off,
    /// Relay commanded closed; the outlet is inside its sequenced
    /// energize window or the firmware has not started yet.
    PoweringOn,
    /// Energized, firmware boot in progress.
    Bios,
    /// Provisioning: deliberately dark while an image streams to it.
    Cloning,
    /// OS up, agent reporting.
    Up,
    /// A power action is gated on a scheduler drain; the OS is still up
    /// until the drain completes (or its force-after deadline passes).
    Draining,
    /// OS halted by an administrator action; the relay stays closed.
    Halted,
    /// Flap-detected: the node cycled Up/Down too many times within the
    /// flap window and is parked powered-off until an administrator (or
    /// a configured timer) releases it. No automatic power action
    /// touches a quarantined node.
    Quarantined,
    /// Broken hardware; stays failed until repaired or power-cycled.
    Failed(FailReason),
}

impl LifecycleState {
    /// Whether the administrator expects an OS (and its agent) to be
    /// running in this state. Drives probe gating and the dashboard.
    pub fn expects_os(self) -> bool {
        matches!(self, LifecycleState::Up | LifecycleState::Draining)
    }

    /// Short status word for dashboards.
    pub fn status_word(self) -> &'static str {
        match self {
            LifecycleState::Off => "off",
            LifecycleState::PoweringOn | LifecycleState::Bios => "boot",
            LifecycleState::Cloning => "cloning",
            LifecycleState::Up => "up",
            LifecycleState::Draining => "draining",
            LifecycleState::Halted => "halted",
            LifecycleState::Quarantined => "quarantined",
            LifecycleState::Failed(_) => "failed",
        }
    }
}

/// Is `from → to` a legal edge of the machine?
///
/// The table is deliberately explicit: an illegal request is a bug in
/// the caller, and [`LifecycleTracker::transition`] refuses it rather
/// than silently corrupting the node's state.
pub fn legal_transition(from: LifecycleState, to: LifecycleState) -> bool {
    use LifecycleState::*;
    if from == to {
        return false; // self-loops are caller bugs, not transitions
    }
    match (from, to) {
        // the happy boot path
        (Off, PoweringOn) | (PoweringOn, Bios) | (Bios, Up) => true,
        // power cut anywhere before or after the OS is up
        (PoweringOn, Off) | (Bios, Off) | (Up, Off) | (Halted, Off) | (Draining, Off) => true,
        // drain gating around a power action on a busy node
        (Up, Draining) => true,
        // drain abandoned (command exhausted its retries): node stays up
        (Draining, Up) => true,
        // OS halt with the relay still closed
        (Up, Halted) | (Draining, Halted) => true,
        // provisioning claims a node from any powered state, and the
        // node leaves Cloning through a fresh power-on (or stays dark)
        (Off | PoweringOn | Bios | Up | Draining | Halted, Cloning) => true,
        (Cloning, PoweringOn) | (Cloning, Off) => true,
        // failure edges: firmware memory check, burned CPU, watchdog
        // giving up on a boot that never completes
        (PoweringOn | Bios, Failed(FailReason::MemoryCheck)) => true,
        (PoweringOn | Bios, Failed(FailReason::Unresponsive)) => true,
        // a clone receiver evicted mid-session is marked failed
        (Cloning, Failed(FailReason::Unresponsive)) => true,
        (_, Failed(FailReason::Burned)) => true,
        // repair paths out of Failed: power-cycle or replacement
        (Failed(_), Off) | (Failed(_), PoweringOn) | (Failed(_), Cloning) => true,
        // flap quarantine: entered from any power/failed state the flap
        // detector can observe a node in (never mid-drain or mid-clone —
        // those overlays finish or fail first), left only through an
        // explicit release (power-cycle or park off)
        (Off | PoweringOn | Bios | Up | Halted | Failed(_), Quarantined) => true,
        (Quarantined, Off) | (Quarantined, PoweringOn) => true,
        _ => false,
    }
}

/// Per-state node tallies — the consolidated lifecycle view a
/// federation sub-server exports upward (one counter per state instead
/// of one row per node).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LifecycleCounts {
    /// Nodes in [`LifecycleState::Off`].
    pub off: u32,
    /// Nodes in [`LifecycleState::PoweringOn`].
    pub powering_on: u32,
    /// Nodes in [`LifecycleState::Bios`].
    pub bios: u32,
    /// Nodes in [`LifecycleState::Cloning`].
    pub cloning: u32,
    /// Nodes in [`LifecycleState::Up`].
    pub up: u32,
    /// Nodes in [`LifecycleState::Draining`].
    pub draining: u32,
    /// Nodes in [`LifecycleState::Halted`].
    pub halted: u32,
    /// Nodes in [`LifecycleState::Quarantined`].
    pub quarantined: u32,
    /// Nodes in any [`LifecycleState::Failed`] state.
    pub failed: u32,
}

impl LifecycleCounts {
    /// Number of counters (the wire array length).
    pub const N: usize = 9;

    /// Total nodes tallied.
    pub fn total(&self) -> u32 {
        let a = self.as_array();
        a.iter().sum()
    }

    /// Add another tally in (head-side aggregation across clusters).
    pub fn accumulate(&mut self, other: &LifecycleCounts) {
        let mut a = self.as_array();
        for (x, y) in a.iter_mut().zip(other.as_array()) {
            *x += y;
        }
        *self = LifecycleCounts::from_array(a);
    }

    /// Fixed-order array form (the federation wire layout).
    pub fn as_array(&self) -> [u32; Self::N] {
        [
            self.off,
            self.powering_on,
            self.bios,
            self.cloning,
            self.up,
            self.draining,
            self.halted,
            self.quarantined,
            self.failed,
        ]
    }

    /// Rebuild from the fixed-order array form.
    pub fn from_array(a: [u32; Self::N]) -> LifecycleCounts {
        LifecycleCounts {
            off: a[0],
            powering_on: a[1],
            bios: a[2],
            cloning: a[3],
            up: a[4],
            draining: a[5],
            halted: a[6],
            quarantined: a[7],
            failed: a[8],
        }
    }
}

/// One recorded transition (the lifecycle slice of the audit trail).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Transition {
    /// When.
    pub time: SimTime,
    /// Which node.
    pub node: u32,
    /// State left.
    pub from: LifecycleState,
    /// State entered.
    pub to: LifecycleState,
}

/// Tracks the lifecycle state of every node in a fleet.
#[derive(Debug, Default)]
pub struct LifecycleTracker {
    states: Vec<LifecycleState>,
    /// when each node entered its current state
    since: Vec<SimTime>,
    /// when each node last entered `Up` (None once it truly leaves the
    /// up family `Up`/`Draining`) — the connectivity grace anchor
    up_entered: Vec<Option<SimTime>>,
    log: Vec<Transition>,
}

impl LifecycleTracker {
    /// A tracker with `n` nodes, all [`LifecycleState::Off`].
    pub fn new(n: usize) -> Self {
        LifecycleTracker {
            states: vec![LifecycleState::Off; n],
            since: vec![SimTime::ZERO; n],
            up_entered: vec![None; n],
            log: Vec::new(),
        }
    }

    /// Grow to cover a hot-added node (starts `Off`).
    pub fn add_node(&mut self) {
        self.states.push(LifecycleState::Off);
        self.since.push(SimTime::ZERO);
        self.up_entered.push(None);
    }

    /// Nodes tracked.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Whether the tracker is empty.
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// Current state of `node`.
    pub fn state(&self, node: u32) -> LifecycleState {
        self.states[node as usize]
    }

    /// When `node` entered its current state.
    pub fn since(&self, node: u32) -> SimTime {
        self.since[node as usize]
    }

    /// When `node` last completed a boot, while it remains in the up
    /// family (`Up`/`Draining`); `None` otherwise.
    pub fn up_since(&self, node: u32) -> Option<SimTime> {
        self.up_entered[node as usize]
    }

    /// The transition log, in order.
    pub fn log(&self) -> &[Transition] {
        &self.log
    }

    /// Tally every node by its current state.
    pub fn counts(&self) -> LifecycleCounts {
        let mut c = LifecycleCounts::default();
        for s in &self.states {
            match s {
                LifecycleState::Off => c.off += 1,
                LifecycleState::PoweringOn => c.powering_on += 1,
                LifecycleState::Bios => c.bios += 1,
                LifecycleState::Cloning => c.cloning += 1,
                LifecycleState::Up => c.up += 1,
                LifecycleState::Draining => c.draining += 1,
                LifecycleState::Halted => c.halted += 1,
                LifecycleState::Quarantined => c.quarantined += 1,
                LifecycleState::Failed(_) => c.failed += 1,
            }
        }
        c
    }

    /// Attempt `node → to`. Returns the transition if the edge is legal
    /// (recording it), `None` if it is not (state unchanged).
    pub fn transition(
        &mut self,
        now: SimTime,
        node: u32,
        to: LifecycleState,
    ) -> Option<Transition> {
        let from = self.states[node as usize];
        if !legal_transition(from, to) {
            return None;
        }
        self.apply(now, node, from, to)
    }

    /// Force `node` into `to` regardless of legality — the escape hatch
    /// for adopting an already-running fleet ([`crate::realtime`]) and
    /// for hardware events that outrank the machine. Still logged.
    pub fn force(&mut self, now: SimTime, node: u32, to: LifecycleState) -> Option<Transition> {
        let from = self.states[node as usize];
        if from == to {
            return None;
        }
        self.apply(now, node, from, to)
    }

    fn apply(
        &mut self,
        now: SimTime,
        node: u32,
        from: LifecycleState,
        to: LifecycleState,
    ) -> Option<Transition> {
        self.states[node as usize] = to;
        self.since[node as usize] = now;
        match to {
            LifecycleState::Up => self.up_entered[node as usize] = Some(now),
            LifecycleState::Draining => {} // still up: keep the anchor
            _ => self.up_entered[node as usize] = None,
        }
        let t = Transition {
            time: now,
            node,
            from,
            to,
        };
        self.log.push(t);
        Some(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use LifecycleState::*;

    fn t(s: u64) -> SimTime {
        SimTime::ZERO + cwx_util::time::SimDuration::from_secs(s)
    }

    #[test]
    fn happy_path_boot_and_drain() {
        let mut lc = LifecycleTracker::new(1);
        assert_eq!(lc.state(0), Off);
        for (at, to) in [(1, PoweringOn), (2, Bios), (10, Up), (50, Draining)] {
            assert!(lc.transition(t(at), 0, to).is_some(), "{to:?}");
        }
        assert_eq!(lc.up_since(0), Some(t(10)), "draining keeps the anchor");
        assert!(lc.transition(t(60), 0, Off).is_some());
        assert_eq!(lc.up_since(0), None);
        assert_eq!(lc.log().len(), 5);
    }

    #[test]
    fn illegal_edges_are_refused_without_corruption() {
        let mut lc = LifecycleTracker::new(1);
        assert!(lc.transition(t(1), 0, Up).is_none(), "Off -> Up skips boot");
        assert!(lc.transition(t(1), 0, Halted).is_none());
        assert!(lc.transition(t(1), 0, Off).is_none(), "self loop");
        assert_eq!(lc.state(0), Off, "state untouched by refusals");
        assert!(lc.log().is_empty());
    }

    #[test]
    fn failure_edges_and_repair() {
        let mut lc = LifecycleTracker::new(1);
        lc.transition(t(1), 0, PoweringOn).unwrap();
        lc.transition(t(2), 0, Bios).unwrap();
        assert!(lc
            .transition(t(3), 0, Failed(FailReason::MemoryCheck))
            .is_some());
        // repair is a power-cycle
        assert!(lc.transition(t(9), 0, Off).is_some());
        lc.transition(t(10), 0, PoweringOn).unwrap();
        lc.transition(t(11), 0, Bios).unwrap();
        lc.transition(t(12), 0, Up).unwrap();
        // a burn outranks everything
        assert!(lc
            .transition(t(20), 0, Failed(FailReason::Burned))
            .is_some());
        assert_eq!(lc.up_since(0), None);
    }

    #[test]
    fn cloning_overlays_power_states() {
        let mut lc = LifecycleTracker::new(2);
        lc.transition(t(1), 0, PoweringOn).unwrap();
        lc.transition(t(2), 0, Bios).unwrap();
        lc.transition(t(3), 0, Up).unwrap();
        assert!(
            lc.transition(t(5), 0, Cloning).is_some(),
            "claim a live node"
        );
        assert!(lc.transition(t(9), 0, PoweringOn).is_some(), "boot back");
        assert!(
            lc.transition(t(5), 1, Cloning).is_some(),
            "claim an off node"
        );
        assert!(lc.transition(t(9), 1, Off).is_some(), "abandoned clone");
    }

    #[test]
    fn quarantine_edges() {
        let mut lc = LifecycleTracker::new(1);
        lc.transition(t(1), 0, PoweringOn).unwrap();
        lc.transition(t(2), 0, Bios).unwrap();
        lc.transition(t(3), 0, Up).unwrap();
        assert!(lc.transition(t(4), 0, Quarantined).is_some());
        assert_eq!(lc.up_since(0), None, "quarantine drops the up anchor");
        assert!(!Quarantined.expects_os());
        assert_eq!(Quarantined.status_word(), "quarantined");
        // no boot path sneaks out of quarantine without a release
        assert!(lc.transition(t(5), 0, Up).is_none());
        assert!(lc.transition(t(5), 0, Bios).is_none());
        assert!(lc.transition(t(5), 0, Draining).is_none());
        assert!(lc.transition(t(5), 0, Cloning).is_none());
        // release: park off or power-cycle back into service
        assert!(lc.transition(t(6), 0, PoweringOn).is_some());
        lc.transition(t(7), 0, Bios).unwrap();
        lc.transition(t(8), 0, Up).unwrap();
        assert!(lc.transition(t(9), 0, Quarantined).is_some());
        assert!(lc.transition(t(10), 0, Off).is_some());
    }

    #[test]
    fn unresponsive_failures_from_boot_and_clone() {
        let mut lc = LifecycleTracker::new(2);
        lc.transition(t(1), 0, PoweringOn).unwrap();
        assert!(lc
            .transition(t(2), 0, Failed(FailReason::Unresponsive))
            .is_some());
        assert!(lc.transition(t(3), 0, PoweringOn).is_some(), "repairable");
        lc.transition(t(1), 1, Cloning).unwrap();
        assert!(lc
            .transition(t(2), 1, Failed(FailReason::Unresponsive))
            .is_some());
        // but never from Up: a running node that stops answering goes
        // through the power machine, not straight to Failed
        lc.transition(t(4), 0, Bios).unwrap();
        lc.transition(t(5), 0, Up).unwrap();
        assert!(lc
            .transition(t(6), 0, Failed(FailReason::Unresponsive))
            .is_none());
    }

    #[test]
    fn force_adopts_running_fleets() {
        let mut lc = LifecycleTracker::new(3);
        for n in 0..3 {
            assert!(
                lc.force(t(0), n, Up).is_some(),
                "Off -> Up illegal but forced"
            );
        }
        assert!(
            lc.force(t(0), 0, Up).is_none(),
            "forcing a no-op is a no-op"
        );
        assert_eq!(lc.up_since(1), Some(t(0)));
    }
}
