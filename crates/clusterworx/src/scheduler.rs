//! The scheduler bridge: SLURM-lite driving the managed cluster.
//!
//! Paper §5.3: "Monitoring is at the heart of cluster management. The
//! data is used to schedule tasks, load-balance devices and services,
//! notify administrators of software and hardware failures..." — and §6
//! presents SLURM as the resource manager the monitoring substrate
//! serves. This module closes that loop inside the simulation:
//!
//! * a [`slurm_lite::Controller`] lives alongside the ClusterWorX server,
//! * job allocations drive the *physical* workload of the allocated
//!   nodes (allocated ⇒ the node computes, heats up, pages memory —
//!   all of which the monitoring pipeline then observes),
//! * node-level reality flows back: a node that dies (fan failure →
//!   power-down, kernel panic, PSU loss) is reported to the controller
//!   as a node failure, its jobs are requeued, and a healed node
//!   returns to service automatically.

use cwx_hw::workload::Workload;
use cwx_util::sim::Sim;
use cwx_util::time::{SimDuration, SimTime};
use slurm_lite::controller::NodeAllocState;
use slurm_lite::{Controller, SchedulerKind};

use crate::actions::DrainGate;
use crate::world::World;

/// Scheduler attachment state, stored in [`World::scheduler`].
pub struct SchedulerBridge {
    /// The SLURM-lite control daemon.
    pub controller: Controller,
    /// What each node was last told to do (avoids redundant workload
    /// churn).
    last_alloc: Vec<bool>,
    /// Nodes we have told the controller are down.
    reported_down: Vec<bool>,
    /// Utilisation a job imposes on its nodes.
    pub job_util: f64,
}

impl SchedulerBridge {
    fn new(n_nodes: u32, kind: SchedulerKind) -> Self {
        SchedulerBridge {
            controller: Controller::new(n_nodes, kind),
            last_alloc: vec![false; n_nodes as usize],
            reported_down: vec![false; n_nodes as usize],
            job_util: 0.92,
        }
    }
}

/// The control plane drains power-action targets through SLURM before
/// pulling the plug (paper §6: the resource manager must stop handing
/// the node work before the chassis cuts it).
impl DrainGate for SchedulerBridge {
    fn request_drain(&mut self, _now: SimTime, node: u32) -> bool {
        if self.controller.node_busy(node) {
            self.controller.drain_node(node);
            true
        } else {
            false
        }
    }

    fn is_drained(&self, node: u32) -> bool {
        self.controller.is_drained(node)
    }

    fn release(&mut self, node: u32) {
        self.controller.undrain_node(node);
    }
}

/// Attach a SLURM-lite controller to a built cluster and start the
/// periodic synchronization (every `sync_every`). Call right after
/// [`crate::Cluster::build`].
pub fn attach_scheduler(sim: &mut Sim<World>, kind: SchedulerKind, sync_every: SimDuration) {
    let n = sim.world().cfg.n_nodes;
    sim.world_mut().scheduler = Some(SchedulerBridge::new(n, kind));
    sim.schedule_every(sync_every, |sim| {
        sync_scheduler(sim);
        true
    });
}

/// Submit a job through the bridge (panics if no scheduler attached).
pub fn submit_job(
    sim: &mut Sim<World>,
    request: slurm_lite::JobRequest,
) -> Result<slurm_lite::JobId, slurm_lite::SlurmError> {
    let now = sim.now();
    let bridge = sim
        .world_mut()
        .scheduler
        .as_mut()
        .expect("scheduler attached");
    let id = bridge.controller.submit(now, request)?;
    Ok(id)
}

/// One synchronization pass: reconcile node reality with the
/// controller, advance it, then push allocations onto the hardware.
pub fn sync_scheduler(sim: &mut Sim<World>) {
    let now = sim.now();
    let w = sim.world_mut();
    let Some(bridge) = w.scheduler.as_mut() else {
        return;
    };

    // 1. node reality -> controller
    for (i, node) in w.nodes.iter().enumerate() {
        let usable = node.hw.is_up();
        if !usable && !bridge.reported_down[i] {
            // only report nodes the scheduler believes exist as capacity
            bridge.controller.node_fail(now, i as u32);
            bridge.reported_down[i] = true;
        } else if usable && bridge.reported_down[i] {
            bridge.controller.node_resume(i as u32);
            bridge.reported_down[i] = false;
        }
    }

    // 2. complete due work, run the scheduler
    bridge.controller.advance(now);

    // 3. allocations -> physical workload
    for (i, state) in bridge.controller.nodes().iter().enumerate() {
        let allocated = matches!(state, NodeAllocState::Allocated(_))
            || !bridge.controller.shared_jobs(i as u32).is_empty();
        if allocated != bridge.last_alloc[i] {
            bridge.last_alloc[i] = allocated;
            let workload = if allocated {
                Workload::Constant(bridge.job_util)
            } else {
                Workload::Idle
            };
            w.nodes[i].hw.set_workload(workload);
        }
    }

    // 4. a job completion may have finished a drain some power command
    // is gated on — give the control plane a chance to act on it now
    // rather than at its force-after deadline
    crate::world::pump_control(sim);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ClusterConfig, WorkloadMix};
    use crate::world::{schedule_fault, Cluster};
    use cwx_hw::node::Fault;
    use cwx_monitor::monitor::MonitorKey;
    use cwx_util::time::SimTime;
    use slurm_lite::{JobRequest, JobState};

    fn t(s: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(s)
    }

    fn build(n: u32) -> Sim<World> {
        let mut sim = Cluster::build(ClusterConfig {
            n_nodes: n,
            seed: 21,
            workload: WorkloadMix::Idle, // the scheduler drives the load
            ..Default::default()
        });
        attach_scheduler(
            &mut sim,
            SchedulerKind::Backfill,
            SimDuration::from_secs(10),
        );
        sim
    }

    #[test]
    fn job_allocation_shows_up_in_the_monitoring_data() {
        let mut sim = build(8);
        sim.run_for(SimDuration::from_secs(120)); // boot + idle baseline
        submit_job(&mut sim, JobRequest::batch("alice", 4, 4000, 3600)).unwrap();
        sim.run_for(SimDuration::from_secs(400));

        let w = sim.world();
        let running: Vec<u32> = w
            .scheduler
            .as_ref()
            .unwrap()
            .controller
            .jobs()
            .filter(|j| j.state == JobState::Running)
            .flat_map(|j| j.allocation.clone())
            .collect();
        assert_eq!(running.len(), 4);
        // the monitoring pipeline sees the job run: allocated nodes hot,
        // idle nodes cold
        let key = MonitorKey::new("cpu.util_pct");
        for i in 0..8u32 {
            let util = w
                .server
                .history()
                .latest(i, &key)
                .map(|s| s.value)
                .unwrap_or(0.0);
            if running.contains(&i) {
                assert!(util > 70.0, "allocated node{i} must be loaded: {util}");
            } else {
                assert!(util < 20.0, "idle node{i} must be quiet: {util}");
            }
        }
    }

    #[test]
    fn jobs_complete_and_nodes_go_quiet() {
        let mut sim = build(4);
        sim.run_for(SimDuration::from_secs(120));
        let id = submit_job(&mut sim, JobRequest::batch("u", 2, 600, 300)).unwrap();
        sim.run_for(SimDuration::from_secs(600));
        let w = sim.world();
        let job = w.scheduler.as_ref().unwrap().controller.job(id).unwrap();
        assert_eq!(job.state, JobState::Completed);
        // hardware went idle again
        assert!(w.nodes.iter().all(|n| n.hw.utilization() < 0.1));
    }

    #[test]
    fn hardware_failure_requeues_the_job_elsewhere() {
        let mut sim = build(6);
        sim.run_for(SimDuration::from_secs(120));
        submit_job(&mut sim, JobRequest::batch("u", 2, 8000, 7000)).unwrap();
        sim.run_for(SimDuration::from_secs(100));
        let victim = {
            let w = sim.world();
            w.scheduler
                .as_ref()
                .unwrap()
                .controller
                .jobs()
                .find(|j| j.state == JobState::Running)
                .unwrap()
                .allocation[0]
        };
        // fan failure on an allocated node: ClusterWorX powers it down,
        // the bridge reports the node failure, SLURM requeues
        let when = sim.now() + SimDuration::from_secs(5);
        schedule_fault(&mut sim, when, victim, Fault::FanFailure);
        sim.run_for(SimDuration::from_secs(300));
        let w = sim.world();
        let ctl = &w.scheduler.as_ref().unwrap().controller;
        assert!(ctl.stats().node_failed >= 1, "{:?}", ctl.stats());
        let rerun: Vec<&slurm_lite::job::Job> = ctl
            .jobs()
            .filter(|j| j.state == JobState::Running)
            .collect();
        assert_eq!(rerun.len(), 1, "requeued job running again");
        assert!(
            !rerun[0].allocation.contains(&victim),
            "rescheduled away from the dead node: {:?}",
            rerun[0].allocation
        );
        // and the administrator got the fan-failure mail as usual
        assert!(w
            .server
            .outbox()
            .iter()
            .any(|m| m.event == "cpu-fan-failure"));
    }

    #[test]
    fn healed_node_returns_to_service() {
        let mut sim = build(2);
        sim.run_for(SimDuration::from_secs(120));
        // panic node 1: reboot heals it
        schedule_fault(&mut sim, t(150), 1, Fault::KernelPanic);
        sim.run_for(SimDuration::from_secs(400));
        let w = sim.world();
        assert!(w.nodes[1].hw.is_up(), "healed");
        let ctl = &w.scheduler.as_ref().unwrap().controller;
        // the controller saw it leave and come back
        assert_eq!(ctl.nodes()[1], NodeAllocState::Idle);
    }
}
