//! ClusterWorX Lite: the single-host edition.
//!
//! The companion white paper ships a trimmed "ClusterWorX Lite" for
//! small installations — monitoring, history, events and notification on
//! one machine, without the 3-tier server or any chassis hardware. The
//! reproduction's Lite is a self-contained loop over any
//! [`cwx_proc::ProcSource`], which makes it directly usable on the real
//! `/proc` of a Linux host: the agent's pipeline feeds a local history
//! store and the local event engine; actions are surfaced to the caller
//! (there is no ICE Box to switch relays through).

use cwx_events::engine::{default_rules, EventDef, EventEngine, Firing};
use cwx_events::notify::{Email, Notifier};
use cwx_monitor::agent::{Agent, AgentConfig};
use cwx_monitor::history::HistoryStore;
use cwx_monitor::monitor::{Registry, Value};
use cwx_monitor::snapshot::Sensors;
use cwx_proc::source::ProcSource;
use cwx_util::time::{SimDuration, SimTime};
use std::io;

/// One Lite tick's outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct LiteTick {
    /// Values that changed this tick.
    pub changed_values: usize,
    /// Events that fired (the caller decides what to do; Lite has no
    /// chassis to act through).
    pub fired: Vec<Firing>,
    /// Emails that became due.
    pub mail: Vec<Email>,
}

/// A standalone single-host monitor.
pub struct LiteMonitor<S: ProcSource> {
    agent: Agent<S>,
    history: HistoryStore,
    engine: EventEngine,
    notifier: Notifier,
}

impl<S: ProcSource + Clone> LiteMonitor<S> {
    /// Build over a proc source with the default rule set.
    pub fn new(source: S, host: &str) -> io::Result<Self> {
        let mut engine = EventEngine::new();
        for r in default_rules() {
            engine.add(r);
        }
        Ok(LiteMonitor {
            agent: Agent::new(
                source,
                AgentConfig {
                    node: 0,
                    // Lite never transmits; skip compression work
                    compress: false,
                    ..AgentConfig::default()
                },
            )?,
            history: HistoryStore::new(720),
            engine,
            notifier: Notifier::new(host, SimDuration::from_secs(30)),
        })
    }

    /// Local history (for charting).
    pub fn history(&self) -> &HistoryStore {
        &self.history
    }

    /// Event engine (to add site rules).
    pub fn engine_mut(&mut self) -> &mut EventEngine {
        &mut self.engine
    }

    /// The monitor registry (to add plug-ins).
    pub fn registry_mut(&mut self) -> &mut Registry {
        self.agent.registry_mut()
    }

    /// All notifications so far.
    pub fn outbox(&self) -> &[Email] {
        self.notifier.outbox()
    }

    /// One sampling cycle at logical time `now`.
    pub fn tick(&mut self, now: SimTime, sensors: Sensors) -> io::Result<LiteTick> {
        let out = self.agent.tick(now, sensors)?;
        let mut fired = Vec::new();
        for (key, value) in &out.report.values {
            if let Value::Num(x) = value {
                self.history.record(0, key, now, *x);
                let (f, cleared) = self.engine.observe(now, 0, key, *x);
                for firing in &f {
                    if let Some(def) = self.engine.defs().iter().find(|d| d.id == firing.event) {
                        let def: EventDef = def.clone();
                        self.notifier.on_fire(now, &def, firing);
                    }
                }
                for c in &cleared {
                    self.notifier.on_clear(c);
                }
                fired.extend(f);
            }
        }
        let defs: Vec<EventDef> = self.engine.defs().to_vec();
        let mail = self.notifier.flush(now, &defs);
        Ok(LiteTick {
            changed_values: out.report.values.len(),
            fired,
            mail,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cwx_events::Action;
    use cwx_monitor::monitor::MonitorKey;
    use cwx_proc::synthetic::SyntheticProc;

    fn t(s: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(s)
    }

    #[test]
    fn lite_monitors_and_charts_locally() {
        let proc_ = SyntheticProc::default();
        let mut lite = LiteMonitor::new(proc_.clone(), "workstation").unwrap();
        for i in 1..=20u64 {
            proc_.with_state(|s| s.tick(5.0, 0.3));
            lite.tick(
                t(i * 5),
                Sensors {
                    udp_echo_ok: true,
                    fan_rpm: 6000.0,
                    power_watts: 120.0,
                    ..Default::default()
                },
            )
            .unwrap();
        }
        let key = MonitorKey::new("uptime.secs");
        let hist = lite.history().range(0, &key, t(0), t(1000));
        assert_eq!(hist.len(), 20);
        assert!(lite.outbox().is_empty(), "healthy host, no mail");
    }

    #[test]
    fn lite_fires_events_and_mails_without_a_server() {
        let proc_ = SyntheticProc::default();
        let mut lite = LiteMonitor::new(proc_.clone(), "workstation").unwrap();
        // healthy tick, then the fan dies
        let ok = |fan: f64| Sensors {
            fan_rpm: fan,
            udp_echo_ok: true,
            power_watts: 120.0,
            ..Default::default()
        };
        lite.tick(t(5), ok(6000.0)).unwrap();
        let tick = lite.tick(t(10), ok(0.0)).unwrap();
        assert_eq!(tick.fired.len(), 1);
        assert_eq!(tick.fired[0].action, Action::PowerDown);
        // mail flushes after the batching window
        let later = lite.tick(t(60), ok(0.0)).unwrap();
        assert_eq!(later.mail.len(), 1);
        assert!(later.mail[0].subject.contains("cpu-fan-failure"));
        assert!(later.mail[0].cluster == "workstation");
    }

    #[test]
    fn lite_accepts_plugins() {
        let proc_ = SyntheticProc::default();
        let mut lite = LiteMonitor::new(proc_, "ws").unwrap();
        lite.registry_mut().register_plugin(
            "site.answer",
            cwx_monitor::monitor::MonitorClass::Static,
            "",
            |_| Some(Value::Num(42.0)),
        );
        lite.tick(
            t(5),
            Sensors {
                power_watts: 120.0,
                fan_rpm: 6000.0,
                ..Default::default()
            },
        )
        .unwrap();
        let v = lite
            .history()
            .latest(0, &MonitorKey::new("site.answer"))
            .unwrap();
        assert_eq!(v.value, 42.0);
    }

    #[test]
    #[cfg(target_os = "linux")]
    fn lite_runs_on_the_real_host() {
        use cwx_proc::source::RealProc;
        let src = RealProc::new();
        if !src.available() {
            return;
        }
        let mut lite = LiteMonitor::new(src, "build-host").unwrap();
        let tick = lite
            .tick(
                t(5),
                Sensors {
                    fan_rpm: 6000.0,
                    udp_echo_ok: true,
                    power_watts: 120.0,
                    ..Default::default()
                },
            )
            .unwrap();
        assert!(
            tick.changed_values > 40,
            "first tick carries the full monitor set"
        );
        assert!(lite
            .history()
            .latest(0, &MonitorKey::new("mem.total"))
            .is_some());
    }
}
