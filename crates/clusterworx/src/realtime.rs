//! A real-time (wall-clock, threaded) deployment of the monitoring
//! pipeline — the shape the product actually ran in, as opposed to the
//! discrete-event simulation the experiments use.
//!
//! Tier 1: one OS thread per node runs the agent loop against its
//! (synthetic or real) /proc and ships compressed reports over a real
//! loopback TCP connection — length-prefixed `CWB1` frames into the
//! [`crate::ingest`] plane, reconnecting (with
//! [`cwx_monitor::agent::Agent::resync`]) if the link drops. Tier 2 is
//! the ingest server: a readiness-driven reactor by default
//! ([`IngestMode::Reactor`]), or the retired thread-per-connection
//! baseline for differential runs. Decoded reports land in a shared
//! [`Server`] behind a `parking_lot::RwLock`. Tier 3: any number of
//! client threads read the lock concurrently ("multiple clients access
//! the ClusterWorX server at the same time without conflict").
//!
//! Two history shapes:
//!
//! * **Volatile** (default): history lives in the in-memory ring; a
//!   single ingest lane feeds the server.
//! * **Persistent** (`persist_dir` set): history goes to a
//!   [`cwx_store::disk::DiskStore`], and ingest runs one lane (flush
//!   worker) per store shard, with each agent's connection routed by
//!   its node group. Lanes batch-append samples straight into their
//!   own shard (per-shard lock, no global contention) and only take
//!   the server write lock for event evaluation. On restart the same
//!   `persist_dir` recovers every acknowledged sample.
//!
//! Backpressure is end-to-end and bounded at every hop: lane flush
//! queues are bounded (a full queue pauses the offending connections
//! and audits [`crate::actions::AuditEntry::IngestBackpressure`]),
//! paused sockets push back on agents through the TCP window, and
//! agents block in `write` rather than dropping or buffering
//! unboundedly.

use std::io::Write;
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use cwx_icebox::chassis::{IceBox, NodeCommand, PortEffect, PortId, NODE_PORTS};
use cwx_monitor::agent::{Agent, AgentConfig};
use cwx_monitor::history::HistoryStore;
use cwx_monitor::snapshot::Sensors;
use cwx_net::frame::put_frame;
use cwx_proc::synthetic::SyntheticProc;
use cwx_store::disk::{DiskStore, StoreConfig};
use cwx_util::time::{SimDuration, SimTime};
use parking_lot::{Mutex, RwLock};
use rand::rngs::StdRng;
use rand::Rng;

use crate::actions::{CommandTransport, ControlPlane, Effect, IssueOutcome, NoGate, PowerCmd};
use crate::ingest::{IngestConfig, IngestLatency, IngestMode, IngestServer, IngestStats};
use crate::server::Server;

/// Handle to a running real-time deployment.
pub struct RealTimeDeployment {
    server: Arc<RwLock<Server>>,
    control: Arc<Mutex<ControlPlane>>,
    store: Option<Arc<DiskStore>>,
    stop: Arc<AtomicBool>,
    agents: Vec<std::thread::JoinHandle<u64>>,
    ingest: Option<IngestServer>,
    controller: Option<std::thread::JoinHandle<()>>,
}

/// Parameters for [`RealTimeDeployment::start`].
#[derive(Debug, Clone)]
pub struct RealTimeConfig {
    /// Number of synthetic nodes (one agent thread each).
    pub n_nodes: u32,
    /// Wall-clock sampling interval per agent.
    pub interval: Duration,
    /// Simulated activity level of the nodes.
    pub util: f64,
    /// Which ingest front end accepts agent connections. The reactor is
    /// the default; the thread-per-connection baseline exists for
    /// differential runs and benchmarks.
    pub ingest_mode: IngestMode,
    /// Ingest listen address (port 0 picks a free port; agents connect
    /// to whatever was bound).
    pub listen: String,
    /// Bound of each ingest lane's flush queue, in batches; a full
    /// queue pauses (backpressures) the connections feeding that lane
    /// rather than dropping reports.
    pub channel_capacity: usize,
    /// How long a connection may stay paused under lane backpressure
    /// before the ingest server evicts it as a slow consumer.
    pub evict_pause: Duration,
    /// Baseline mode: bound on a connection thread's park when its
    /// lane queue is full, before the batch is dropped (audited).
    pub handoff_timeout: Duration,
    /// Test hook: confine `ingest_stall` to one lane (`None` = all).
    pub stall_lane: Option<usize>,
    /// When set, history persists to a sharded [`DiskStore`] in this
    /// directory and ingest runs one worker per shard.
    pub persist_dir: Option<PathBuf>,
    /// Store shard count for the persistent path.
    pub shards: usize,
    /// Agents emit the binary CWB1 delta wire format (the textual
    /// format still decodes; this only selects what agents send).
    pub binary_wire: bool,
    /// Persistent path: decoded samples a shard worker buffers before
    /// batch-appending to the store (one WAL write per batch).
    pub ingest_batch_samples: usize,
    /// Persistent path: longest a buffered sample waits before the
    /// batch is flushed anyway.
    pub ingest_batch_delay: Duration,
    /// Test hook: per-report processing delay injected into ingest
    /// threads, to exercise backpressure.
    pub ingest_stall: Option<Duration>,
    /// How often the controller thread drains the server's queued
    /// actions into the control plane and pumps the command bus.
    pub control_interval: Duration,
    /// Fraction of chassis commands lost in transit (the same fault
    /// knob as [`crate::ClusterConfig::icebox_command_loss`]).
    pub command_loss: f64,
    /// Wall-clock stand-in for a node's firmware+OS boot after its
    /// outlet energizes.
    pub boot_delay: Duration,
    /// How long after its last report a node counts as unreachable in
    /// the server's staleness checks (the same knob as
    /// [`crate::ClusterConfig::probe_stale_after`]).
    pub stale_after: Duration,
}

impl Default for RealTimeConfig {
    fn default() -> Self {
        RealTimeConfig {
            n_nodes: 8,
            interval: Duration::from_millis(50),
            util: 0.4,
            ingest_mode: IngestMode::Reactor,
            listen: "127.0.0.1:0".to_string(),
            channel_capacity: 64,
            evict_pause: Duration::from_secs(30),
            handoff_timeout: Duration::from_secs(30),
            stall_lane: None,
            persist_dir: None,
            shards: 4,
            binary_wire: true,
            ingest_batch_samples: 512,
            ingest_batch_delay: Duration::from_millis(25),
            ingest_stall: None,
            control_interval: Duration::from_millis(20),
            command_loss: 0.0,
            boot_delay: Duration::from_millis(100),
            stale_after: Duration::from_secs(30),
        }
    }
}

fn agent_loop(
    node: u32,
    cfg: RealTimeConfig,
    addr: Option<SocketAddr>,
    stop: Arc<AtomicBool>,
    os_up: Arc<Vec<AtomicBool>>,
    control: Arc<Mutex<ControlPlane>>,
) -> u64 {
    let Some(addr) = addr else {
        // ingest never came up (bind failure, already audited): the
        // node exists for lifecycle purposes but has nowhere to report
        return 0;
    };
    let proc_ = SyntheticProc::default();
    let mut agent = match Agent::new(
        proc_.clone(),
        AgentConfig {
            node,
            binary: cfg.binary_wire,
            ..AgentConfig::default()
        },
    ) {
        Ok(a) => a,
        Err(e) => {
            // recoverable: one node without an agent, audited, no panic
            control.lock().audit_io_error(
                SimTime::ZERO,
                Some(node),
                format!("agent start failed: {e:?}"),
            );
            return 0;
        }
    };
    let started = Instant::now();
    let mut sent = 0u64;
    let mut conn: Option<TcpStream> = None;
    let mut frame: Vec<u8> = Vec::new();
    while !stop.load(Ordering::Relaxed) {
        // a powered-down or halted node reports nothing (and its link
        // drops); the control plane flips this flag through its
        // lifecycle effects
        if !os_up[node as usize].load(Ordering::Relaxed) {
            conn = None;
            std::thread::sleep(cfg.interval);
            continue;
        }
        // (re)connect before gathering, so the first report on a fresh
        // link carries the full resync state the server-side
        // per-connection decoder needs
        if conn.is_none() {
            match TcpStream::connect(addr) {
                Ok(s) => {
                    let _ = s.set_nodelay(true);
                    agent.resync();
                    conn = Some(s);
                }
                Err(_) => {
                    std::thread::sleep(cfg.interval);
                    continue;
                }
            }
        }
        proc_.with_state(|s| s.tick(cfg.interval.as_secs_f64(), cfg.util));
        let now = SimTime::ZERO + SimDuration::from_secs_f64(started.elapsed().as_secs_f64());
        let sensors = Sensors {
            cpu_temp_c: 40.0 + 20.0 * cfg.util,
            board_temp_c: 35.0,
            fan_rpm: 6000.0,
            power_watts: 90.0 + 110.0 * cfg.util,
            udp_echo_ok: true,
        };
        if let Ok(out) = agent.tick(now, sensors) {
            frame.clear();
            put_frame(&mut frame, &out.payload);
            // blocking write into a bounded pipeline: a backpressured
            // server pauses this socket and the TCP window blocks us
            // here — never a drop, never an unbounded buffer
            match conn.as_mut().unwrap().write_all(&frame) {
                Ok(()) => sent += 1,
                Err(_) => {
                    // evicted or server restart: reconnect + resync
                    conn = None;
                    continue;
                }
            }
        }
        std::thread::sleep(cfg.interval);
    }
    sent
}

/// The wall-clock [`CommandTransport`]: a rack of ICE Boxes owned by the
/// controller thread, with the same loss injection as the simulation.
struct ChassisTransport {
    iceboxes: Vec<IceBox>,
    loss: f64,
    rng: StdRng,
}

impl ChassisTransport {
    fn rack_of(node: u32) -> (usize, PortId) {
        (
            (node / NODE_PORTS as u32) as usize,
            PortId((node % NODE_PORTS as u32) as u8),
        )
    }
}

impl CommandTransport for ChassisTransport {
    fn issue(&mut self, now: SimTime, node: u32, cmd: PowerCmd) -> IssueOutcome {
        if self.loss > 0.0 && self.rng.random::<f64>() < self.loss {
            return IssueOutcome::Lost;
        }
        let (bx, port) = Self::rack_of(node);
        let Some(icebox) = self.iceboxes.get_mut(bx) else {
            return IssueOutcome::Rejected;
        };
        let chassis_cmd = match cmd {
            PowerCmd::On => NodeCommand::PowerOn,
            PowerCmd::Off => NodeCommand::PowerOff,
        };
        match icebox.execute(now, port, chassis_cmd) {
            Ok(Some(PortEffect::EnergizeAt { at, .. })) => IssueOutcome::Applied {
                energize_at: Some(at),
            },
            Ok(Some(_)) => IssueOutcome::Applied { energize_at: None },
            Ok(None) => IssueOutcome::Noop,
            Err(_) => IssueOutcome::Rejected,
        }
    }

    fn relay_on(&self, node: u32) -> bool {
        let (bx, port) = Self::rack_of(node);
        self.iceboxes.get(bx).is_some_and(|ib| ib.relay_on(port))
    }
}

/// A node boot in progress on the controller thread's timeline.
struct PendingBoot {
    node: u32,
    energize_at: SimTime,
    up_at: SimTime,
    energized: bool,
}

/// The controller loop: the wall-clock twin of the simulation's
/// `execute_pending_actions` + `pump_control`. Every `control_interval`
/// it drains the server's queued actions into the shared
/// [`ControlPlane`], pumps the command bus through the chassis
/// transport, and applies the physical effects (power flags, boots,
/// `forget_node`). Identical state machine, different clock.
#[allow(clippy::too_many_arguments)]
fn controller_loop(
    cfg: RealTimeConfig,
    server: Arc<RwLock<Server>>,
    control: Arc<Mutex<ControlPlane>>,
    os_up: Arc<Vec<AtomicBool>>,
    stop: Arc<AtomicBool>,
) {
    let n_boxes = (cfg.n_nodes as usize).div_ceil(NODE_PORTS);
    let mut transport = ChassisTransport {
        iceboxes: (0..n_boxes.max(1)).map(|_| IceBox::new()).collect(),
        loss: cfg.command_loss,
        rng: cwx_util::rng::rng(0x1ce_b0c5),
    };
    // adopt the running fleet: relays closed, lifecycle forced Up
    {
        let mut cp = control.lock();
        for node in 0..cfg.n_nodes {
            let (bx, port) = ChassisTransport::rack_of(node);
            let _ = transport.iceboxes[bx].power_on(SimTime::ZERO, port);
            transport.iceboxes[bx].mark_energized(port);
            cp.adopt_up(SimTime::ZERO, node);
        }
    }
    let epoch = Instant::now();
    let boot_delay = SimDuration::from_secs_f64(cfg.boot_delay.as_secs_f64());
    let mut boots: Vec<PendingBoot> = Vec::new();
    loop {
        let now = SimTime::ZERO + SimDuration::from_secs_f64(epoch.elapsed().as_secs_f64());
        // boots reach their milestones on the wall clock
        let mut cp = control.lock();
        for b in &mut boots {
            if !b.energized && now >= b.energize_at {
                let (bx, port) = ChassisTransport::rack_of(b.node);
                transport.iceboxes[bx].mark_energized(port);
                cp.note_energized(now, b.node);
                b.energized = true;
            }
            if b.energized && now >= b.up_at {
                cp.note_boot_complete(now, b.node);
                os_up[b.node as usize].store(true, Ordering::Relaxed);
            }
        }
        boots.retain(|b| !(b.energized && b.up_at <= now));
        // drain queued actions, mirroring the simulation driver: pump
        // after each submission so an applied power-off suppresses later
        // duplicates in the same batch
        let actions = server.write().take_actions();
        for a in actions {
            let relay_on = transport.relay_on(a.node);
            let effects = cp.submit_action(now, a.node, &a.action, relay_on, &mut NoGate);
            for e in effects {
                apply_rt_effect(e, now, boot_delay, &mut cp, &os_up, &server, &mut boots);
            }
            loop {
                let effects = cp.step(now, &mut transport, &mut NoGate);
                if effects.is_empty() {
                    break;
                }
                for e in effects {
                    apply_rt_effect(e, now, boot_delay, &mut cp, &os_up, &server, &mut boots);
                }
            }
        }
        // pump timed work (retry backoffs, the reboot pause)
        loop {
            let effects = cp.step(now, &mut transport, &mut NoGate);
            if effects.is_empty() {
                break;
            }
            for e in effects {
                apply_rt_effect(e, now, boot_delay, &mut cp, &os_up, &server, &mut boots);
            }
        }
        let idle = cp.outstanding() == 0 && boots.is_empty();
        drop(cp);
        if stop.load(Ordering::Relaxed) && idle {
            break;
        }
        std::thread::sleep(cfg.control_interval);
    }
}

/// Apply one control-plane effect on the wall-clock deployment.
#[allow(clippy::too_many_arguments)]
fn apply_rt_effect(
    effect: Effect,
    now: SimTime,
    boot_delay: SimDuration,
    cp: &mut ControlPlane,
    os_up: &Arc<Vec<AtomicBool>>,
    server: &Arc<RwLock<Server>>,
    boots: &mut Vec<PendingBoot>,
) {
    match effect {
        Effect::PowerApplied {
            node, on: false, ..
        } => {
            boots.retain(|b| b.node != node);
            os_up[node as usize].store(false, Ordering::Relaxed);
            server.write().forget_node(node);
        }
        Effect::PowerApplied {
            node,
            on: true,
            energize_at,
        } => {
            boots.retain(|b| b.node != node);
            let energize_at = energize_at.unwrap_or(now);
            boots.push(PendingBoot {
                node,
                energize_at,
                up_at: energize_at + boot_delay,
                energized: false,
            });
        }
        Effect::HaltOs { node } => {
            boots.retain(|b| b.node != node);
            os_up[node as usize].store(false, Ordering::Relaxed);
        }
        Effect::RunPlugin { node, name } => {
            // the wall-clock deployment has no plug-in registry yet; the
            // action itself is already in the audit trail
            cp.note_plugin_ran(now, node, &name);
        }
    }
}

impl RealTimeDeployment {
    /// Start the threads.
    pub fn start(cfg: RealTimeConfig) -> Self {
        let control = Arc::new(Mutex::new(ControlPlane::new(cfg.n_nodes as usize)));
        let store = cfg.persist_dir.as_ref().and_then(|dir| {
            let store_cfg = StoreConfig {
                n_shards: cfg.shards.max(1),
                ..StoreConfig::default()
            };
            match DiskStore::open(dir, store_cfg) {
                Ok(s) => Some(Arc::new(s)),
                Err(e) => {
                    // degrade to volatile history rather than dying: the
                    // monitoring plane keeps running, the failure is audited
                    control.lock().audit_io_error(
                        SimTime::ZERO,
                        None,
                        format!("persistent store open failed, running volatile: {e:?}"),
                    );
                    None
                }
            }
        });
        let history = match &store {
            Some(s) => HistoryStore::with_backend(Box::new(Arc::clone(s))),
            None => HistoryStore::new(4096),
        };
        let server = Arc::new(RwLock::new(Server::with_history(
            "realtime",
            SimDuration::from_secs(5),
            history,
            SimDuration::from_nanos(cfg.stale_after.as_nanos().min(u64::MAX as u128) as u64),
        )));
        let stop = Arc::new(AtomicBool::new(false));
        let started = Instant::now();

        // one ingest lane per store shard (a single lane without a store)
        let n_lanes = match &store {
            Some(s) => s.config().n_shards,
            None => 1,
        };
        let nodes_per_group = match &store {
            Some(s) => s.config().nodes_per_group,
            None => u32::MAX,
        };
        let ingest = IngestServer::start(
            IngestConfig {
                listen: cfg.listen.clone(),
                mode: cfg.ingest_mode,
                n_lanes,
                nodes_per_group,
                batch_samples: cfg.ingest_batch_samples.max(1),
                batch_delay: cfg.ingest_batch_delay.max(Duration::from_millis(1)),
                lane_queue_batches: cfg.channel_capacity.max(1),
                evict_pause: cfg.evict_pause,
                handoff_timeout: cfg.handoff_timeout,
                flush_stall: cfg.ingest_stall,
                stall_lane: cfg.stall_lane,
                ..IngestConfig::default()
            },
            Arc::clone(&server),
            store.clone(),
            Arc::clone(&control),
            started,
        );
        let ingest = match ingest {
            Ok(i) => Some(i),
            Err(e) => {
                // degrade rather than die: lifecycle still runs, the
                // monitoring feed is down and audited
                control.lock().audit_io_error(
                    SimTime::ZERO,
                    None,
                    format!("ingest listener failed to start: {e:?}"),
                );
                None
            }
        };
        let addr = ingest.as_ref().map(|i| i.addr());

        // the fleet starts adopted-up; the control plane's effects flip
        // these flags as nodes power down, halt, or reboot
        let os_up: Arc<Vec<AtomicBool>> =
            Arc::new((0..cfg.n_nodes).map(|_| AtomicBool::new(true)).collect());

        let agents: Vec<_> = (0..cfg.n_nodes)
            .map(|node| {
                let stop = Arc::clone(&stop);
                let cfg = cfg.clone();
                let os_up = Arc::clone(&os_up);
                let control = Arc::clone(&control);
                std::thread::spawn(move || agent_loop(node, cfg, addr, stop, os_up, control))
            })
            .collect();

        let controller = {
            let cfg = cfg.clone();
            let server = Arc::clone(&server);
            let control = Arc::clone(&control);
            let os_up = Arc::clone(&os_up);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || controller_loop(cfg, server, control, os_up, stop))
        };

        RealTimeDeployment {
            server,
            control,
            store,
            stop,
            agents,
            ingest,
            controller: Some(controller),
        }
    }

    /// The shared server — clone the `Arc` for tier-3 clients.
    pub fn server(&self) -> Arc<RwLock<Server>> {
        Arc::clone(&self.server)
    }

    /// The shared control plane — the same lifecycle machine the
    /// simulation drives, here fed by the controller thread.
    pub fn control(&self) -> Arc<Mutex<ControlPlane>> {
        Arc::clone(&self.control)
    }

    /// The persistent store, when the deployment runs with one.
    pub fn store(&self) -> Option<Arc<DiskStore>> {
        self.store.clone()
    }

    /// The address the ingest listener bound (what agents dial), when
    /// it came up.
    pub fn ingest_addr(&self) -> Option<SocketAddr> {
        self.ingest.as_ref().map(|i| i.addr())
    }

    /// Live ingest-plane counters (connections, frames, backpressure).
    pub fn ingest_stats(&self) -> IngestStats {
        self.ingest.as_ref().map(|i| i.stats()).unwrap_or_default()
    }

    /// Ingest flush-latency percentiles observed so far.
    pub fn ingest_latency(&self) -> IngestLatency {
        self.ingest
            .as_ref()
            .map(|i| i.latency())
            .unwrap_or_default()
    }

    /// A point-in-time rollup for federation export — the realtime
    /// twin of `World::fed_snapshot`, assembled under the shared locks.
    pub fn fed_snapshot(&self) -> crate::server::ClusterSnapshot {
        let counts = self.control.lock().lifecycle().counts();
        let mut server = self.server.write();
        let (alarms, alarms_dropped) = server.take_alarms();
        crate::server::ClusterSnapshot {
            n_nodes: counts.total(),
            counts,
            reachable: server.reachable_count(),
            stats: server.stats(),
            alarms,
            alarms_dropped,
        }
    }

    /// Stop everything; returns `(reports sent, reports ingested)`.
    /// Persistent deployments flush memtables on the way out (history is
    /// WAL-recoverable even without this — the flush just trims replay).
    pub fn shutdown(mut self) -> (u64, u64) {
        self.stop.store(true, Ordering::Relaxed);
        let mut sent = 0;
        for h in self.agents.drain(..) {
            match h.join() {
                Ok(n) => sent += n,
                Err(_) => self.control.lock().audit_io_error(
                    SimTime::ZERO,
                    None,
                    "agent thread panicked during shutdown".to_string(),
                ),
            }
        }
        if let Some(controller) = self.controller.take() {
            if controller.join().is_err() {
                self.control.lock().audit_io_error(
                    SimTime::ZERO,
                    None,
                    "controller thread panicked during shutdown".to_string(),
                );
            }
        }
        // agents have hung up; the ingest server drains their sockets
        // to EOF and flushes every buffered batch before stopping
        let ingested = self.ingest.take().map(|i| i.shutdown()).unwrap_or(0);
        if let Some(store) = &self.store {
            let _ = store.flush_all();
        }
        (sent, ingested)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cwx_monitor::monitor::MonitorKey;
    use cwx_store::Store;

    #[test]
    fn threaded_pipeline_delivers_everything() {
        let dep = RealTimeDeployment::start(RealTimeConfig {
            n_nodes: 6,
            interval: Duration::from_millis(20),
            util: 0.5,
            ..RealTimeConfig::default()
        });

        // tier-3 clients read while agents write
        let server = dep.server();
        let reader = std::thread::spawn(move || {
            let key = MonitorKey::new("load.one");
            let mut reads = 0;
            for _ in 0..50 {
                let s = server.read();
                let _ = s.history().latest_across_nodes(&key);
                reads += 1;
                std::thread::sleep(Duration::from_millis(5));
            }
            reads
        });

        std::thread::sleep(Duration::from_millis(400));
        let reads = reader.join().unwrap();
        let server = dep.server();
        let (sent, ingested) = dep.shutdown();

        assert!(sent > 6 * 5, "agents produced work: {sent}");
        assert_eq!(sent, ingested, "bounded channel delivered every report");
        assert_eq!(reads, 50);
        let s = server.read();
        assert_eq!(s.stats().decode_errors, 0);
        assert_eq!(s.stats().reports_rx, ingested);
        for node in 0..6 {
            assert!(s.node_status(node).is_some(), "node{node} reported");
        }
    }

    #[test]
    fn text_wire_still_flows_end_to_end() {
        let dep = RealTimeDeployment::start(RealTimeConfig {
            n_nodes: 3,
            interval: Duration::from_millis(10),
            binary_wire: false,
            ..RealTimeConfig::default()
        });
        std::thread::sleep(Duration::from_millis(150));
        let server = dep.server();
        let (sent, ingested) = dep.shutdown();
        assert!(sent > 0);
        assert_eq!(sent, ingested);
        assert_eq!(server.read().stats().decode_errors, 0);
    }

    #[test]
    fn stalled_server_applies_backpressure_without_drops() {
        // a tiny lane queue and a deliberately slow flush worker: the
        // reactor must pause the offending connections (backpressure,
        // audited) rather than drop or balloon, agents block in the TCP
        // window, and shutdown still drains every buffered report
        let dep = RealTimeDeployment::start(RealTimeConfig {
            n_nodes: 4,
            interval: Duration::from_millis(5),
            util: 0.3,
            channel_capacity: 2,
            ingest_stall: Some(Duration::from_millis(5)),
            ..RealTimeConfig::default()
        });
        std::thread::sleep(Duration::from_millis(250));
        let server = dep.server();
        let stats = dep.ingest_stats();
        let (sent, ingested) = dep.shutdown();
        assert!(sent > 0, "agents made progress despite the stall");
        assert_eq!(sent, ingested, "backpressure means blocked, never dropped");
        assert_eq!(server.read().stats().reports_rx, ingested);
        // the lane bound held the backlog: the flush queue filled and
        // tripped backpressure instead of buffering without limit, and
        // nobody was evicted (the pause bound is far away)
        assert!(stats.backpressure_trips > 0, "lane backpressure tripped");
        assert_eq!(stats.evicted, 0);
        assert_eq!(server.read().stats().decode_errors, 0);
    }

    #[test]
    fn persistent_deployment_recovers_after_restart() {
        let dir = std::env::temp_dir().join(format!("cwx-rt-persist-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = RealTimeConfig {
            n_nodes: 8,
            interval: Duration::from_millis(5),
            util: 0.5,
            persist_dir: Some(dir.clone()),
            shards: 4,
            ..RealTimeConfig::default()
        };
        let dep = RealTimeDeployment::start(cfg.clone());
        std::thread::sleep(Duration::from_millis(300));
        let (sent, ingested) = dep.shutdown();
        assert!(sent > 0);
        assert_eq!(sent, ingested);

        // "restart": a fresh deployment over the same directory sees the
        // previous run's history before any new report arrives
        let dep = RealTimeDeployment::start(cfg);
        let store = dep.store().unwrap();
        let recovered = store.total_samples();
        assert!(recovered > 0, "prior run's samples recovered");
        let server = dep.server();
        let key = MonitorKey::new("load.one");
        {
            let s = server.read();
            let mut nodes_with_history = 0;
            for node in 0..8 {
                if !s
                    .history()
                    .range(node, &key, SimTime::ZERO, SimTime::MAX)
                    .is_empty()
                {
                    nodes_with_history += 1;
                }
            }
            assert!(
                nodes_with_history >= 4,
                "history visible for restarted cluster"
            );
        }
        dep.shutdown();
        let _ = std::fs::remove_dir_all(dir);
    }
}
