//! A real-time (wall-clock, threaded) deployment of the monitoring
//! pipeline — the shape the product actually ran in, as opposed to the
//! discrete-event simulation the experiments use.
//!
//! Tier 1: one OS thread per node runs the agent loop against its
//! (synthetic or real) /proc and ships compressed reports over a
//! bounded crossbeam channel — the management network stand-in. Tier 2
//! drains into a shared [`Server`] behind a `parking_lot::RwLock`.
//! Tier 3: any number of client threads read the lock concurrently
//! ("multiple clients access the ClusterWorX server at the same time
//! without conflict").
//!
//! Two ingest shapes:
//!
//! * **Volatile** (default): a single channel and server thread; history
//!   lives in the in-memory ring.
//! * **Persistent** (`persist_dir` set): history goes to a
//!   [`cwx_store::disk::DiskStore`], and ingest is sharded — one channel
//!   plus worker thread per store shard, with each agent routed by its
//!   node group. Workers decode and write samples straight into their
//!   own shard (per-shard lock, no global contention) and only take the
//!   server write lock for event evaluation. On restart the same
//!   `persist_dir` recovers every acknowledged sample.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, RecvTimeoutError, Sender};
use cwx_monitor::agent::{Agent, AgentConfig};
use cwx_monitor::history::HistoryStore;
use cwx_monitor::monitor::Value;
use cwx_monitor::snapshot::Sensors;
use cwx_monitor::transmit::{self, Report};
use cwx_proc::synthetic::SyntheticProc;
use cwx_store::disk::{DiskStore, StoreConfig};
use cwx_store::{BatchSample, Store};
use cwx_util::time::{SimDuration, SimTime};
use parking_lot::RwLock;

use crate::server::Server;

/// Handle to a running real-time deployment.
pub struct RealTimeDeployment {
    server: Arc<RwLock<Server>>,
    store: Option<Arc<DiskStore>>,
    stop: Arc<AtomicBool>,
    agents: Vec<std::thread::JoinHandle<u64>>,
    ingest_threads: Vec<std::thread::JoinHandle<u64>>,
}

/// Parameters for [`RealTimeDeployment::start`].
#[derive(Debug, Clone)]
pub struct RealTimeConfig {
    /// Number of synthetic nodes (one agent thread each).
    pub n_nodes: u32,
    /// Wall-clock sampling interval per agent.
    pub interval: Duration,
    /// Simulated activity level of the nodes.
    pub util: f64,
    /// Bound of each report channel; full channels block the sending
    /// agent (backpressure) rather than dropping reports.
    pub channel_capacity: usize,
    /// When set, history persists to a sharded [`DiskStore`] in this
    /// directory and ingest runs one worker per shard.
    pub persist_dir: Option<PathBuf>,
    /// Store shard count for the persistent path.
    pub shards: usize,
    /// Agents emit the binary CWB1 delta wire format (the textual
    /// format still decodes; this only selects what agents send).
    pub binary_wire: bool,
    /// Persistent path: decoded samples a shard worker buffers before
    /// batch-appending to the store (one WAL write per batch).
    pub ingest_batch_samples: usize,
    /// Persistent path: longest a buffered sample waits before the
    /// batch is flushed anyway.
    pub ingest_batch_delay: Duration,
    /// Test hook: per-report processing delay injected into ingest
    /// threads, to exercise backpressure.
    pub ingest_stall: Option<Duration>,
}

impl Default for RealTimeConfig {
    fn default() -> Self {
        RealTimeConfig {
            n_nodes: 8,
            interval: Duration::from_millis(50),
            util: 0.4,
            channel_capacity: 1024,
            persist_dir: None,
            shards: 4,
            binary_wire: true,
            ingest_batch_samples: 512,
            ingest_batch_delay: Duration::from_millis(25),
            ingest_stall: None,
        }
    }
}

fn agent_loop(node: u32, cfg: RealTimeConfig, tx: Sender<Vec<u8>>, stop: Arc<AtomicBool>) -> u64 {
    let proc_ = SyntheticProc::default();
    let mut agent = Agent::new(
        proc_.clone(),
        AgentConfig {
            node,
            binary: cfg.binary_wire,
            ..AgentConfig::default()
        },
    )
    .expect("agent over synthetic proc");
    let started = Instant::now();
    let mut sent = 0u64;
    while !stop.load(Ordering::Relaxed) {
        proc_.with_state(|s| s.tick(cfg.interval.as_secs_f64(), cfg.util));
        let now = SimTime::ZERO + SimDuration::from_secs_f64(started.elapsed().as_secs_f64());
        let sensors = Sensors {
            cpu_temp_c: 40.0 + 20.0 * cfg.util,
            board_temp_c: 35.0,
            fan_rpm: 6000.0,
            power_watts: 90.0 + 110.0 * cfg.util,
            udp_echo_ok: true,
        };
        if let Ok(out) = agent.tick(now, sensors) {
            // bounded channel: a slow server applies backpressure rather
            // than ballooning memory
            if tx.send(out.payload).is_err() {
                break;
            }
            sent += 1;
        }
        std::thread::sleep(cfg.interval);
    }
    sent
}

impl RealTimeDeployment {
    /// Start the threads.
    pub fn start(cfg: RealTimeConfig) -> Self {
        let store = cfg.persist_dir.as_ref().map(|dir| {
            let store_cfg = StoreConfig {
                n_shards: cfg.shards.max(1),
                ..StoreConfig::default()
            };
            Arc::new(DiskStore::open(dir, store_cfg).expect("open persistent store"))
        });
        let history = match &store {
            Some(s) => HistoryStore::with_backend(Box::new(Arc::clone(s))),
            None => HistoryStore::new(4096),
        };
        let server = Arc::new(RwLock::new(Server::with_history(
            "realtime",
            SimDuration::from_secs(5),
            history,
            SimDuration::from_secs(30),
        )));
        let stop = Arc::new(AtomicBool::new(false));
        let started = Instant::now();

        // one ingest lane per store shard (a single lane without a store)
        let n_lanes = match &store {
            Some(s) => s.config().n_shards,
            None => 1,
        };
        let nodes_per_group = match &store {
            Some(s) => s.config().nodes_per_group,
            None => u32::MAX,
        };
        let mut txs = Vec::with_capacity(n_lanes);
        let mut rxs = Vec::with_capacity(n_lanes);
        for _ in 0..n_lanes {
            let (tx, rx) = bounded::<Vec<u8>>(cfg.channel_capacity.max(1));
            txs.push(tx);
            rxs.push(rx);
        }

        let agents: Vec<_> = (0..cfg.n_nodes)
            .map(|node| {
                let lane = (node / nodes_per_group.max(1)) as usize % n_lanes;
                let tx = txs[lane].clone();
                let stop = Arc::clone(&stop);
                let cfg = cfg.clone();
                std::thread::spawn(move || agent_loop(node, cfg, tx, stop))
            })
            .collect();
        drop(txs); // ingest lanes see disconnect once every agent stops

        let ingest_threads: Vec<_> = rxs
            .into_iter()
            .map(|rx| {
                let server = Arc::clone(&server);
                let store = store.clone();
                let stall = cfg.ingest_stall;
                let batch_samples = cfg.ingest_batch_samples.max(1);
                let batch_delay = cfg.ingest_batch_delay.max(Duration::from_millis(1));
                std::thread::spawn(move || {
                    let sim_now = |started: &Instant| {
                        SimTime::ZERO + SimDuration::from_secs_f64(started.elapsed().as_secs_f64())
                    };
                    let mut ingested = 0u64;
                    let Some(store) = store else {
                        // volatile lane: the server decodes (it keeps the
                        // per-node binary wire state) and records history
                        while let Ok(payload) = rx.recv() {
                            if let Some(d) = stall {
                                std::thread::sleep(d);
                            }
                            let now = sim_now(&started);
                            server.write().ingest(now, &payload);
                            ingested += 1;
                            // housekeeping piggybacks on traffic
                            if ingested.is_multiple_of(64) {
                                server.write().housekeeping(now);
                            }
                        }
                        return ingested;
                    };
                    // persistent lane: decode here (per-lane decoder —
                    // agents are routed to lanes by node group, so each
                    // node's frames always hit the same decoder), buffer,
                    // and batch-append so each batch costs one WAL write
                    // per shard and one server lock
                    let mut decoder = transmit::WireDecoder::new();
                    let mut pending: Vec<(SimTime, Report, usize)> = Vec::new();
                    let mut pending_samples = 0usize;
                    let mut oldest: Option<Instant> = None;
                    loop {
                        let msg = rx.recv_timeout(batch_delay);
                        let now = sim_now(&started);
                        let disconnected = matches!(msg, Err(RecvTimeoutError::Disconnected));
                        if let Ok(payload) = msg {
                            if let Some(d) = stall {
                                std::thread::sleep(d);
                            }
                            ingested += 1;
                            match decoder.decode_auto(&payload) {
                                Ok(report) => {
                                    pending_samples += report
                                        .values
                                        .iter()
                                        .filter(|(_, v)| matches!(v, Value::Num(_)))
                                        .count();
                                    pending.push((now, report, payload.len()));
                                    oldest.get_or_insert_with(Instant::now);
                                }
                                Err(_) => server.write().note_decode_error(payload.len()),
                            }
                        }
                        let due = pending_samples >= batch_samples
                            || oldest.is_some_and(|t| t.elapsed() >= batch_delay)
                            || disconnected;
                        if due && !pending.is_empty() {
                            let mut batch = Vec::with_capacity(pending_samples);
                            for (at, report, _) in &pending {
                                for (key, value) in &report.values {
                                    if let Value::Num(x) = value {
                                        batch.push(BatchSample {
                                            node: report.node,
                                            monitor: &key.0,
                                            time: *at,
                                            value: *x,
                                        });
                                    }
                                }
                            }
                            // storage writes on the shard lock only; the
                            // server lock covers just events + liveness
                            store.append_batch(&batch);
                            drop(batch);
                            let mut srv = server.write();
                            for (at, report, wire) in &pending {
                                srv.ingest_report_events_only(*at, report, *wire);
                            }
                            srv.housekeeping(now);
                            drop(srv);
                            pending.clear();
                            pending_samples = 0;
                            oldest = None;
                        }
                        if disconnected {
                            break;
                        }
                    }
                    ingested
                })
            })
            .collect();

        RealTimeDeployment {
            server,
            store,
            stop,
            agents,
            ingest_threads,
        }
    }

    /// The shared server — clone the `Arc` for tier-3 clients.
    pub fn server(&self) -> Arc<RwLock<Server>> {
        Arc::clone(&self.server)
    }

    /// The persistent store, when the deployment runs with one.
    pub fn store(&self) -> Option<Arc<DiskStore>> {
        self.store.clone()
    }

    /// Stop everything; returns `(reports sent, reports ingested)`.
    /// Persistent deployments flush memtables on the way out (history is
    /// WAL-recoverable even without this — the flush just trims replay).
    pub fn shutdown(mut self) -> (u64, u64) {
        self.stop.store(true, Ordering::Relaxed);
        let mut sent = 0;
        for h in self.agents.drain(..) {
            sent += h.join().expect("agent thread");
        }
        let mut ingested = 0;
        for h in self.ingest_threads.drain(..) {
            ingested += h.join().expect("ingest thread");
        }
        if let Some(store) = &self.store {
            let _ = store.flush_all();
        }
        (sent, ingested)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cwx_monitor::monitor::MonitorKey;

    #[test]
    fn threaded_pipeline_delivers_everything() {
        let dep = RealTimeDeployment::start(RealTimeConfig {
            n_nodes: 6,
            interval: Duration::from_millis(20),
            util: 0.5,
            ..RealTimeConfig::default()
        });

        // tier-3 clients read while agents write
        let server = dep.server();
        let reader = std::thread::spawn(move || {
            let key = MonitorKey::new("load.one");
            let mut reads = 0;
            for _ in 0..50 {
                let s = server.read();
                let _ = s.history().latest_across_nodes(&key);
                reads += 1;
                std::thread::sleep(Duration::from_millis(5));
            }
            reads
        });

        std::thread::sleep(Duration::from_millis(400));
        let reads = reader.join().unwrap();
        let server = dep.server();
        let (sent, ingested) = dep.shutdown();

        assert!(sent > 6 * 5, "agents produced work: {sent}");
        assert_eq!(sent, ingested, "bounded channel delivered every report");
        assert_eq!(reads, 50);
        let s = server.read();
        assert_eq!(s.stats().decode_errors, 0);
        assert_eq!(s.stats().reports_rx, ingested);
        for node in 0..6 {
            assert!(s.node_status(node).is_some(), "node{node} reported");
        }
    }

    #[test]
    fn text_wire_still_flows_end_to_end() {
        let dep = RealTimeDeployment::start(RealTimeConfig {
            n_nodes: 3,
            interval: Duration::from_millis(10),
            binary_wire: false,
            ..RealTimeConfig::default()
        });
        std::thread::sleep(Duration::from_millis(150));
        let server = dep.server();
        let (sent, ingested) = dep.shutdown();
        assert!(sent > 0);
        assert_eq!(sent, ingested);
        assert_eq!(server.read().stats().decode_errors, 0);
    }

    #[test]
    fn stalled_server_applies_backpressure_without_drops() {
        // a tiny channel and a deliberately slow ingest thread: agents
        // must block in send (not drop, not panic), and the stop flag
        // must still shut the deployment down cleanly
        let dep = RealTimeDeployment::start(RealTimeConfig {
            n_nodes: 4,
            interval: Duration::from_millis(1),
            util: 0.3,
            channel_capacity: 2,
            ingest_stall: Some(Duration::from_millis(15)),
            ..RealTimeConfig::default()
        });
        std::thread::sleep(Duration::from_millis(300));
        let server = dep.server();
        let (sent, ingested) = dep.shutdown();
        assert!(sent > 0, "agents made progress despite the stall");
        assert_eq!(sent, ingested, "backpressure means blocked, never dropped");
        assert_eq!(server.read().stats().reports_rx, ingested);
        // the channel bound held the backlog: with capacity 2 per lane the
        // ingest side can lag the senders by at most capacity, so every
        // report an agent counted was eventually processed, none skipped
        assert_eq!(server.read().stats().decode_errors, 0);
    }

    #[test]
    fn persistent_deployment_recovers_after_restart() {
        let dir = std::env::temp_dir().join(format!("cwx-rt-persist-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = RealTimeConfig {
            n_nodes: 8,
            interval: Duration::from_millis(5),
            util: 0.5,
            persist_dir: Some(dir.clone()),
            shards: 4,
            ..RealTimeConfig::default()
        };
        let dep = RealTimeDeployment::start(cfg.clone());
        std::thread::sleep(Duration::from_millis(300));
        let (sent, ingested) = dep.shutdown();
        assert!(sent > 0);
        assert_eq!(sent, ingested);

        // "restart": a fresh deployment over the same directory sees the
        // previous run's history before any new report arrives
        let dep = RealTimeDeployment::start(cfg);
        let store = dep.store().unwrap();
        let recovered = store.total_samples();
        assert!(recovered > 0, "prior run's samples recovered");
        let server = dep.server();
        let key = MonitorKey::new("load.one");
        {
            let s = server.read();
            let mut nodes_with_history = 0;
            for node in 0..8 {
                if !s
                    .history()
                    .range(node, &key, SimTime::ZERO, SimTime::MAX)
                    .is_empty()
                {
                    nodes_with_history += 1;
                }
            }
            assert!(
                nodes_with_history >= 4,
                "history visible for restarted cluster"
            );
        }
        dep.shutdown();
        let _ = std::fs::remove_dir_all(dir);
    }
}
