//! A real-time (wall-clock, threaded) deployment of the monitoring
//! pipeline — the shape the product actually ran in, as opposed to the
//! discrete-event simulation the experiments use.
//!
//! Tier 1: one OS thread per node runs the agent loop against its
//! (synthetic or real) /proc and ships compressed reports over a
//! crossbeam channel — the management network stand-in. Tier 2: a server
//! thread drains the channel into a shared [`Server`] behind a
//! `parking_lot::RwLock`. Tier 3: any number of client threads read the
//! lock concurrently ("multiple clients access the ClusterWorX server at
//! the same time without conflict").

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, Sender};
use cwx_monitor::agent::{Agent, AgentConfig};
use cwx_monitor::snapshot::Sensors;
use cwx_proc::synthetic::SyntheticProc;
use cwx_util::time::{SimDuration, SimTime};
use parking_lot::RwLock;

use crate::server::Server;

/// Handle to a running real-time deployment.
pub struct RealTimeDeployment {
    server: Arc<RwLock<Server>>,
    stop: Arc<AtomicBool>,
    agents: Vec<std::thread::JoinHandle<u64>>,
    server_thread: Option<std::thread::JoinHandle<u64>>,
}

/// Parameters for [`RealTimeDeployment::start`].
#[derive(Debug, Clone)]
pub struct RealTimeConfig {
    /// Number of synthetic nodes (one agent thread each).
    pub n_nodes: u32,
    /// Wall-clock sampling interval per agent.
    pub interval: Duration,
    /// Simulated activity level of the nodes.
    pub util: f64,
}

impl Default for RealTimeConfig {
    fn default() -> Self {
        RealTimeConfig { n_nodes: 8, interval: Duration::from_millis(50), util: 0.4 }
    }
}

fn agent_loop(
    node: u32,
    cfg: RealTimeConfig,
    tx: Sender<Vec<u8>>,
    stop: Arc<AtomicBool>,
) -> u64 {
    let proc_ = SyntheticProc::default();
    let mut agent = Agent::new(
        proc_.clone(),
        AgentConfig { node, ..AgentConfig::default() },
    )
    .expect("agent over synthetic proc");
    let started = Instant::now();
    let mut sent = 0u64;
    while !stop.load(Ordering::Relaxed) {
        proc_.with_state(|s| s.tick(cfg.interval.as_secs_f64(), cfg.util));
        let now = SimTime::ZERO + SimDuration::from_secs_f64(started.elapsed().as_secs_f64());
        let sensors = Sensors {
            cpu_temp_c: 40.0 + 20.0 * cfg.util,
            board_temp_c: 35.0,
            fan_rpm: 6000.0,
            power_watts: 90.0 + 110.0 * cfg.util,
            udp_echo_ok: true,
        };
        if let Ok(out) = agent.tick(now, sensors) {
            // bounded channel: a slow server applies backpressure rather
            // than ballooning memory
            if tx.send(out.payload).is_err() {
                break;
            }
            sent += 1;
        }
        std::thread::sleep(cfg.interval);
    }
    sent
}

impl RealTimeDeployment {
    /// Start the threads.
    pub fn start(cfg: RealTimeConfig) -> Self {
        let server = Arc::new(RwLock::new(Server::new(
            "realtime",
            SimDuration::from_secs(5),
            4096,
            SimDuration::from_secs(30),
        )));
        let stop = Arc::new(AtomicBool::new(false));
        let (tx, rx) = bounded::<Vec<u8>>(1024);

        let agents: Vec<_> = (0..cfg.n_nodes)
            .map(|node| {
                let tx = tx.clone();
                let stop = Arc::clone(&stop);
                let cfg = cfg.clone();
                std::thread::spawn(move || agent_loop(node, cfg, tx, stop))
            })
            .collect();
        drop(tx); // server sees disconnect once every agent stops

        let server2 = Arc::clone(&server);
        let started = Instant::now();
        let server_thread = std::thread::spawn(move || {
            let mut ingested = 0u64;
            while let Ok(payload) = rx.recv() {
                let now =
                    SimTime::ZERO + SimDuration::from_secs_f64(started.elapsed().as_secs_f64());
                server2.write().ingest(now, &payload);
                ingested += 1;
                // housekeeping piggybacks on traffic; good enough here
                if ingested.is_multiple_of(64) {
                    server2.write().housekeeping(now);
                }
            }
            ingested
        });

        RealTimeDeployment { server, stop, agents, server_thread: Some(server_thread) }
    }

    /// The shared server — clone the `Arc` for tier-3 clients.
    pub fn server(&self) -> Arc<RwLock<Server>> {
        Arc::clone(&self.server)
    }

    /// Stop everything; returns `(reports sent, reports ingested)`.
    pub fn shutdown(mut self) -> (u64, u64) {
        self.stop.store(true, Ordering::Relaxed);
        let mut sent = 0;
        for h in self.agents.drain(..) {
            sent += h.join().expect("agent thread");
        }
        let ingested =
            self.server_thread.take().map(|h| h.join().expect("server thread")).unwrap_or(0);
        (sent, ingested)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cwx_monitor::monitor::MonitorKey;

    #[test]
    fn threaded_pipeline_delivers_everything() {
        let dep = RealTimeDeployment::start(RealTimeConfig {
            n_nodes: 6,
            interval: Duration::from_millis(20),
            util: 0.5,
        });

        // tier-3 clients read while agents write
        let server = dep.server();
        let reader = std::thread::spawn(move || {
            let key = MonitorKey::new("load.one");
            let mut reads = 0;
            for _ in 0..50 {
                let s = server.read();
                let _ = s.history().latest_across_nodes(&key);
                reads += 1;
                std::thread::sleep(Duration::from_millis(5));
            }
            reads
        });

        std::thread::sleep(Duration::from_millis(400));
        let reads = reader.join().unwrap();
        let server = dep.server();
        let (sent, ingested) = dep.shutdown();

        assert!(sent > 6 * 5, "agents produced work: {sent}");
        assert_eq!(sent, ingested, "bounded channel delivered every report");
        assert_eq!(reads, 50);
        let s = server.read();
        assert_eq!(s.stats().decode_errors, 0);
        assert_eq!(s.stats().reports_rx, ingested);
        for node in 0..6 {
            assert!(s.node_status(node).is_some(), "node{node} reported");
        }
    }
}
