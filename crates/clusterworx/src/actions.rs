//! The command bus: every ICE Box action in the system flows through
//! here, in both the simulated world and the realtime deployment.
//!
//! [`ControlPlane`] owns the [`crate::lifecycle`] machine, a per-node
//! FIFO command queue with idempotent dedup, per-command retry with
//! exponential backoff against injected chassis command loss, SLURM
//! drain gating for power actions on allocated nodes, and an
//! append-only audit trail that subsumes the old `action_log` /
//! `plugin_log` vectors (both survive as projections).
//!
//! The plane is generic over [`CommandTransport`] (how a command
//! physically reaches a chassis) and [`DrainGate`] (whether a scheduler
//! must release the node first), so the deterministic simulation and
//! the threaded wall-clock deployment execute the identical state
//! machine — the acceptance test in `tests/control_plane.rs` compares
//! their transition traces record for record.

use std::collections::BTreeMap;

use cwx_events::Action;
use cwx_util::time::{SimDuration, SimTime};

use crate::lifecycle::{FailReason, LifecycleState, LifecycleTracker, Transition};

/// A chassis-level power command.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PowerCmd {
    /// Close the outlet relay (sequenced energize).
    On,
    /// Open the outlet relay (immediate).
    Off,
}

/// What happened when a command was put on the wire.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum IssueOutcome {
    /// The chassis applied it; `energize_at` is the sequenced close
    /// time for [`PowerCmd::On`] (`None` for cuts).
    Applied {
        /// When the outlet actually energizes (power-on only).
        energize_at: Option<SimTime>,
    },
    /// The chassis was already in the requested state.
    Noop,
    /// The command was lost in transit (the chassis never saw it).
    Lost,
    /// The chassis rejected it (no such port).
    Rejected,
}

/// How commands physically reach the chassis tier.
pub trait CommandTransport {
    /// Issue one command at `now`; the transport models loss itself.
    fn issue(&mut self, now: SimTime, node: u32, cmd: PowerCmd) -> IssueOutcome;
    /// Current relay state of a node's outlet (for no-op suppression).
    fn relay_on(&self, node: u32) -> bool;
}

/// Scheduler gating for power actions on allocated nodes (paper §6:
/// drain through SLURM before pulling power out from under a job).
pub trait DrainGate {
    /// Ask the scheduler to drain `node`. Returns `true` if the node is
    /// busy and a drain was started (the command must wait), `false` if
    /// the node is free to act on immediately.
    fn request_drain(&mut self, now: SimTime, node: u32) -> bool;
    /// Whether a previously requested drain has completed.
    fn is_drained(&self, node: u32) -> bool;
    /// Release the drain mark (the gated command finished or gave up).
    fn release(&mut self, node: u32);
}

/// A gate that never gates: for worlds without a scheduler attached.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoGate;

impl DrainGate for NoGate {
    fn request_drain(&mut self, _now: SimTime, _node: u32) -> bool {
        false
    }
    fn is_drained(&self, _node: u32) -> bool {
        true
    }
    fn release(&mut self, _node: u32) {}
}

/// Retry policy for lost chassis commands.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Delay before the first retry.
    pub base: SimDuration,
    /// Each further retry doubles the delay up to this cap.
    pub max_delay: SimDuration,
    /// Total issue attempts before the command is declared failed.
    pub max_attempts: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            base: SimDuration::from_millis(500),
            max_delay: SimDuration::from_secs(8),
            max_attempts: 6,
        }
    }
}

impl RetryPolicy {
    /// Backoff after the `attempt`-th failed attempt (1-based):
    /// `base * 2^(attempt-1)`, capped at `max_delay`.
    pub fn backoff(&self, attempt: u32) -> SimDuration {
        let shift = attempt.saturating_sub(1).min(16);
        let nanos = self.base.as_nanos().saturating_mul(1u64 << shift);
        SimDuration::from_nanos(nanos.min(self.max_delay.as_nanos()))
    }
}

/// Why a submitted action was dropped instead of executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SuppressReason {
    /// The node's relay is already open and the action is a no-op on a
    /// dark node (every variant: power, halt and plug-in scripts).
    PoweredOff,
    /// The identical action is already in flight on this node.
    InFlight,
    /// The node is quarantined after flap detection; no automatic
    /// action touches it until it is released.
    Quarantined,
}

/// Flap detection policy: a node that completes a boot (enters `Up`)
/// `threshold` times within `window` is cycling — power it off once and
/// park it in [`LifecycleState::Quarantined`] instead of letting the
/// event engine ride the boot loop forever.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlapPolicy {
    /// Up-entries within the window that trip quarantine.
    pub threshold: u32,
    /// Sliding window over which Up-entries are counted.
    pub window: SimDuration,
    /// Automatic release delay; `None` means an administrator must
    /// release the node by hand.
    pub release_after: Option<SimDuration>,
}

impl Default for FlapPolicy {
    fn default() -> Self {
        FlapPolicy {
            threshold: 4,
            window: SimDuration::from_secs(900),
            release_after: None,
        }
    }
}

/// Boot watchdog policy: a node sitting in `PoweringOn`/`Bios` longer
/// than `deadline` gets a power-cycle retry (a chassis-controller
/// restart can eat a pending energize); after `max_retries` cycles it
/// is marked [`FailReason::Unresponsive`] instead of retrying forever.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BootWatchdog {
    /// How long a boot may sit in a transient state.
    pub deadline: SimDuration,
    /// Power-cycle retries before giving up.
    pub max_retries: u32,
}

impl Default for BootWatchdog {
    fn default() -> Self {
        BootWatchdog {
            deadline: SimDuration::from_secs(300),
            max_retries: 5,
        }
    }
}

/// Where a command (or action) came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmdSource {
    /// Fired by the event engine.
    Engine,
    /// An administrator/provisioning request (`power_on_node` etc.).
    Admin,
    /// The follow-up verdict of an action plug-in.
    FollowUp,
}

/// One record of the append-only audit trail.
#[derive(Debug, Clone, PartialEq)]
pub struct AuditRecord {
    /// Monotonic sequence number.
    pub seq: u64,
    /// When.
    pub time: SimTime,
    /// The node concerned (`None` for deployment-level records).
    pub node: Option<u32>,
    /// What happened.
    pub entry: AuditEntry,
}

/// The audit trail's event vocabulary.
#[derive(Debug, Clone, PartialEq)]
pub enum AuditEntry {
    /// An engine action was accepted for execution (the old
    /// `action_log` rows are exactly these records).
    ActionExecuted {
        /// The action.
        action: Action,
    },
    /// An engine action was dropped by a dedup rule.
    ActionSuppressed {
        /// The action.
        action: Action,
        /// Why.
        reason: SuppressReason,
    },
    /// An action plug-in ran (the old `plugin_log` rows).
    PluginRan {
        /// Plug-in name.
        name: String,
    },
    /// A chassis command went on the wire.
    CommandIssued {
        /// The command.
        cmd: PowerCmd,
        /// 1-based attempt number.
        attempt: u32,
    },
    /// The transport lost the command; a retry is scheduled.
    CommandLost {
        /// The command.
        cmd: PowerCmd,
        /// The attempt that was lost.
        attempt: u32,
    },
    /// The chassis confirmed the command.
    CommandCompleted {
        /// The command.
        cmd: PowerCmd,
        /// Attempts it took.
        attempts: u32,
        /// The chassis was already in the requested state.
        noop: bool,
    },
    /// Retries exhausted (or the chassis rejected the command): the
    /// command failed permanently. Nothing is dropped silently.
    CommandFailed {
        /// The command.
        cmd: PowerCmd,
        /// Attempts made.
        attempts: u32,
    },
    /// A chained command was abandoned because its predecessor failed.
    CommandAborted {
        /// The command.
        cmd: PowerCmd,
    },
    /// A power action is waiting on a scheduler drain.
    DrainRequested {
        /// When the gate is forced open regardless.
        force_at: SimTime,
    },
    /// The drain finished (or its deadline forced it).
    DrainComplete {
        /// `true` when the force-after deadline expired first.
        forced: bool,
    },
    /// A lifecycle transition (mirrors the tracker log).
    Transition {
        /// State left.
        from: LifecycleState,
        /// State entered.
        to: LifecycleState,
    },
    /// Flap detection tripped: the node entered quarantine.
    Quarantined {
        /// Up-entries inside the window that tripped the detector.
        flaps: u32,
    },
    /// The node left quarantine.
    QuarantineReleased {
        /// `true` for an administrator release, `false` for the timer.
        manual: bool,
    },
    /// An admin power-on was refused because the node is quarantined.
    QuarantineHeld {
        /// The refused command.
        cmd: PowerCmd,
    },
    /// The boot watchdog expired: the node sat in `PoweringOn`/`Bios`
    /// past its deadline and gets a power-cycle retry.
    BootTimeout {
        /// 1-based retry number.
        attempt: u32,
    },
    /// A recoverable I/O error on the serving path (realtime accept,
    /// store open, thread join) that was logged instead of panicking.
    IoError {
        /// What failed.
        what: String,
    },
    /// An ingest lane's flush queue filled: connections feeding it were
    /// paused (explicit backpressure, never an unbounded buffer or a
    /// stalled thread).
    IngestBackpressure {
        /// The backpressured ingest lane / store shard.
        lane: usize,
        /// Batches queued at the moment the bound tripped.
        queued: usize,
    },
    /// An ingest connection was closed by policy rather than by its
    /// peer (slow consumer, oversized frame, garbage flood). The
    /// record's `node` carries the agent when it had identified itself.
    ConnectionEvicted {
        /// Why the connection was evicted.
        reason: String,
    },
    /// A dashboard query client or query request was shed — the query
    /// executor's admission queue was full, or accepting the client
    /// would blow the ingest plane's fd budget. Always reported with a
    /// row (mirrors [`AuditEntry::ConnectionEvicted`]); never a silent
    /// clamp.
    QueryShed {
        /// Why the query (or its client) was shed.
        reason: String,
    },
}

/// Physical side-effects the driver (sim or realtime) must apply.
#[derive(Debug, Clone, PartialEq)]
pub enum Effect {
    /// The relay state of `node` changed.
    PowerApplied {
        /// The node.
        node: u32,
        /// New relay state.
        on: bool,
        /// Sequenced energize time (power-on only).
        energize_at: Option<SimTime>,
    },
    /// Halt the node's OS (relay stays closed).
    HaltOs {
        /// The node.
        node: u32,
    },
    /// Run the named action plug-in against `node`.
    RunPlugin {
        /// The node.
        node: u32,
        /// Plug-in name.
        name: String,
    },
}

/// Counters over the bus (experiment E13 reads these).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ControlStats {
    /// Engine actions accepted.
    pub actions_executed: u64,
    /// Engine actions dropped by dedup.
    pub actions_suppressed: u64,
    /// Commands confirmed by the chassis.
    pub commands_completed: u64,
    /// Retry attempts after transport loss.
    pub retries: u64,
    /// Commands that exhausted their retries.
    pub commands_failed: u64,
    /// Drains forced open by their deadline.
    pub drains_forced: u64,
    /// Nodes parked by flap detection.
    pub quarantines: u64,
    /// Boot-watchdog power-cycle retries.
    pub boot_timeouts: u64,
}

#[derive(Debug)]
struct CmdState {
    id: u64,
    node: u32,
    cmd: PowerCmd,
    /// the engine action this command implements (dedup key), if any
    action: Option<Action>,
    /// command that must complete before this one may issue
    after: Option<u64>,
    /// extra delay once `after` completes (the reboot off→on pause)
    delay_after: SimDuration,
    /// earliest issue time (absolute); meaningless until `ready`
    not_before: SimTime,
    /// satisfied once `after` is `None` or has completed
    ready: bool,
    /// `Some(force_at)` while waiting on a scheduler drain
    gated_until: Option<SimTime>,
    /// this command requested the drain and must release it
    holds_drain: bool,
    attempts: u32,
}

/// The control plane: lifecycle machine + command bus + audit trail.
#[derive(Debug)]
pub struct ControlPlane {
    lifecycle: LifecycleTracker,
    cmds: Vec<CmdState>,
    next_cmd_id: u64,
    audit: Vec<AuditRecord>,
    next_seq: u64,
    policy: RetryPolicy,
    /// how long a drain may hold a power action before it is forced
    drain_force_after: SimDuration,
    /// pause between the off and on halves of a reboot
    reboot_delay: SimDuration,
    stats: ControlStats,
    flap_policy: FlapPolicy,
    watchdog: BootWatchdog,
    /// recent Up-entry times per node, pruned to the flap window
    up_history: Vec<Vec<SimTime>>,
    /// per-node watchdog retries since the last successful boot
    boot_retries: Vec<u32>,
    /// nodes in a transient boot state → watchdog deadline
    boot_watch: BTreeMap<u32, SimTime>,
    /// quarantined nodes with a timed release pending → release time
    release_at: BTreeMap<u32, SimTime>,
}

impl ControlPlane {
    /// A plane over `n` nodes, all off.
    pub fn new(n: usize) -> Self {
        ControlPlane {
            lifecycle: LifecycleTracker::new(n),
            cmds: Vec::new(),
            next_cmd_id: 1,
            audit: Vec::new(),
            next_seq: 0,
            policy: RetryPolicy::default(),
            drain_force_after: SimDuration::from_secs(30),
            reboot_delay: SimDuration::from_secs(2),
            stats: ControlStats::default(),
            flap_policy: FlapPolicy::default(),
            watchdog: BootWatchdog::default(),
            up_history: vec![Vec::new(); n],
            boot_retries: vec![0; n],
            boot_watch: BTreeMap::new(),
            release_at: BTreeMap::new(),
        }
    }

    /// Override the retry policy.
    pub fn set_retry_policy(&mut self, policy: RetryPolicy) {
        self.policy = policy;
    }

    /// Override the drain force-after deadline.
    pub fn set_drain_force_after(&mut self, d: SimDuration) {
        self.drain_force_after = d;
    }

    /// Override the reboot off→on pause.
    pub fn set_reboot_delay(&mut self, d: SimDuration) {
        self.reboot_delay = d;
    }

    /// Override the flap detection policy.
    pub fn set_flap_policy(&mut self, p: FlapPolicy) {
        self.flap_policy = p;
    }

    /// Override the boot watchdog.
    pub fn set_boot_watchdog(&mut self, w: BootWatchdog) {
        self.watchdog = w;
    }

    /// Is `node` currently quarantined?
    pub fn quarantined(&self, node: u32) -> bool {
        self.lifecycle.state(node) == LifecycleState::Quarantined
    }

    /// The lifecycle tracker (read access for dashboards and drivers).
    pub fn lifecycle(&self) -> &LifecycleTracker {
        &self.lifecycle
    }

    /// Counters.
    pub fn stats(&self) -> ControlStats {
        self.stats
    }

    /// The full audit trail, in order.
    pub fn audit(&self) -> &[AuditRecord] {
        &self.audit
    }

    /// Commands still pending (queued, gated or awaiting retry).
    pub fn outstanding(&self) -> usize {
        self.cmds.len()
    }

    /// Grow to cover a hot-added node.
    pub fn add_node(&mut self) {
        self.lifecycle.add_node();
        self.up_history.push(Vec::new());
        self.boot_retries.push(0);
    }

    fn record(&mut self, time: SimTime, node: Option<u32>, entry: AuditEntry) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.audit.push(AuditRecord {
            seq,
            time,
            node,
            entry,
        });
    }

    fn note_transition(&mut self, t: Option<Transition>) {
        if let Some(t) = t {
            // every transition funnels through here, so this is the one
            // place the boot watchdog is armed and disarmed
            match t.to {
                LifecycleState::PoweringOn | LifecycleState::Bios => {
                    self.boot_watch
                        .insert(t.node, t.time + self.watchdog.deadline);
                }
                _ => {
                    self.boot_watch.remove(&t.node);
                }
            }
            self.record(
                t.time,
                Some(t.node),
                AuditEntry::Transition {
                    from: t.from,
                    to: t.to,
                },
            );
        }
    }

    /// Log a recoverable I/O error into the audit trail.
    pub fn audit_io_error(&mut self, now: SimTime, node: Option<u32>, what: impl Into<String>) {
        self.record(now, node, AuditEntry::IoError { what: what.into() });
    }

    /// Log an ingest-lane backpressure trip (the lane's connections are
    /// being paused until its flush queue drains).
    pub fn audit_ingest_backpressure(&mut self, now: SimTime, lane: usize, queued: usize) {
        self.record(now, None, AuditEntry::IngestBackpressure { lane, queued });
    }

    /// Log a policy eviction of an ingest connection.
    pub fn audit_connection_evicted(
        &mut self,
        now: SimTime,
        node: Option<u32>,
        reason: impl Into<String>,
    ) {
        self.record(
            now,
            node,
            AuditEntry::ConnectionEvicted {
                reason: reason.into(),
            },
        );
    }

    /// Log a shed query client or query request (executor overload or
    /// fd-budget exhaustion on the ingest plane).
    pub fn audit_query_shed(&mut self, now: SimTime, reason: impl Into<String>) {
        self.record(
            now,
            None,
            AuditEntry::QueryShed {
                reason: reason.into(),
            },
        );
    }

    // ------------------------------------------------------------------
    // projections of the audit trail (the old World fields)

    /// Executed engine actions, in order — the old `action_log`.
    pub fn action_log(&self) -> Vec<crate::world::ActionLog> {
        self.audit
            .iter()
            .filter_map(|r| match &r.entry {
                AuditEntry::ActionExecuted { action } => Some(crate::world::ActionLog {
                    time: r.time,
                    node: r.node.expect("actions always target a node"),
                    action: action.clone(),
                }),
                _ => None,
            })
            .collect()
    }

    /// Plug-in executions, in order — the old `plugin_log`.
    pub fn plugin_log(&self) -> Vec<(SimTime, String, u32)> {
        self.audit
            .iter()
            .filter_map(|r| match &r.entry {
                AuditEntry::PluginRan { name } => {
                    Some((r.time, name.clone(), r.node.expect("plugins target a node")))
                }
                _ => None,
            })
            .collect()
    }

    // ------------------------------------------------------------------
    // submission

    /// Is `action` already in flight (queued or retrying) on `node`?
    fn action_in_flight(&self, node: u32, action: &Action) -> bool {
        self.cmds
            .iter()
            .any(|c| c.node == node && c.action.as_ref() == Some(action))
    }

    /// Submit an engine-fired action against `node`. Applies the dedup
    /// rules (idempotent for **every** [`Action`] variant), records the
    /// audit row, and enqueues the implementing command chain. Returns
    /// the immediate effects (halt/plug-in run happen at submit time).
    pub fn submit_action(
        &mut self,
        now: SimTime,
        node: u32,
        action: &Action,
        relay_on: bool,
        gate: &mut dyn DrainGate,
    ) -> Vec<Effect> {
        if *action == Action::None {
            return Vec::new();
        }
        // rule 0: quarantined nodes are off-limits to the engine — the
        // whole point of quarantine is that the boot loop's events stop
        // producing actions
        if self.quarantined(node) {
            self.stats.actions_suppressed += 1;
            self.record(
                now,
                Some(node),
                AuditEntry::ActionSuppressed {
                    action: action.clone(),
                    reason: SuppressReason::Quarantined,
                },
            );
            return Vec::new();
        }
        // rule 1: every action is a no-op against a dark node — the old
        // world only dropped PowerDown/Reboot here; Halt and Plugin now
        // get the same treatment (a script against a dead node is an
        // in-flight report re-firing a stale event)
        if !relay_on {
            self.stats.actions_suppressed += 1;
            self.record(
                now,
                Some(node),
                AuditEntry::ActionSuppressed {
                    action: action.clone(),
                    reason: SuppressReason::PoweredOff,
                },
            );
            return Vec::new();
        }
        // rule 2: the identical action already in flight on the node
        // (e.g. the overtemp rule re-firing a PowerDown while the first
        // one retries against a lossy chassis link)
        if self.action_in_flight(node, action) {
            self.stats.actions_suppressed += 1;
            self.record(
                now,
                Some(node),
                AuditEntry::ActionSuppressed {
                    action: action.clone(),
                    reason: SuppressReason::InFlight,
                },
            );
            return Vec::new();
        }
        self.stats.actions_executed += 1;
        self.record(
            now,
            Some(node),
            AuditEntry::ActionExecuted {
                action: action.clone(),
            },
        );
        match action {
            Action::PowerDown => {
                self.enqueue_power_off(now, node, Some(action.clone()), gate);
                Vec::new()
            }
            Action::Reboot => {
                let off = self.enqueue_power_off(now, node, Some(action.clone()), gate);
                self.enqueue(CmdState {
                    id: 0, // assigned by enqueue
                    node,
                    cmd: PowerCmd::On,
                    action: Some(action.clone()),
                    after: Some(off),
                    delay_after: self.reboot_delay,
                    not_before: now,
                    ready: false,
                    gated_until: None,
                    holds_drain: false,
                    attempts: 0,
                });
                Vec::new()
            }
            Action::Halt => {
                let t = self.lifecycle.transition(now, node, LifecycleState::Halted);
                self.note_transition(t);
                vec![Effect::HaltOs { node }]
            }
            Action::Plugin(name) => vec![Effect::RunPlugin {
                node,
                name: name.clone(),
            }],
            Action::None => unreachable!("filtered above"),
        }
    }

    /// Record that a plug-in actually ran (the driver owns the registry
    /// and calls this after invoking it).
    pub fn note_plugin_ran(&mut self, now: SimTime, node: u32, name: &str) {
        self.record(
            now,
            Some(node),
            AuditEntry::PluginRan {
                name: name.to_string(),
            },
        );
    }

    /// Submit a plug-in verdict's follow-up (power down / reboot after
    /// the site script ran). Ungated: the script is presumed to have
    /// done its own draining.
    pub fn submit_followup_power(&mut self, now: SimTime, node: u32, reboot: bool) {
        let off = self.enqueue(CmdState {
            id: 0,
            node,
            cmd: PowerCmd::Off,
            action: None,
            after: None,
            delay_after: SimDuration::ZERO,
            not_before: now,
            ready: true,
            gated_until: None,
            holds_drain: false,
            attempts: 0,
        });
        if reboot {
            self.enqueue(CmdState {
                id: 0,
                node,
                cmd: PowerCmd::On,
                action: None,
                after: Some(off),
                delay_after: self.reboot_delay,
                not_before: now,
                ready: false,
                gated_until: None,
                holds_drain: false,
                attempts: 0,
            });
        }
    }

    /// An administrator/provisioning power request. Ungated — the
    /// operator outranks the scheduler (and provisioning coordinates
    /// with it out of band).
    pub fn request_power(&mut self, now: SimTime, node: u32, cmd: PowerCmd) {
        // a quarantined node cannot be powered back on by a plain admin
        // request; it must go through release_quarantine (power-off is
        // allowed — it only deepens the park)
        if cmd == PowerCmd::On && self.quarantined(node) {
            self.record(now, Some(node), AuditEntry::QuarantineHeld { cmd });
            return;
        }
        self.enqueue(CmdState {
            id: 0,
            node,
            cmd,
            action: None,
            after: None,
            delay_after: SimDuration::ZERO,
            not_before: now,
            ready: true,
            gated_until: None,
            holds_drain: false,
            attempts: 0,
        });
    }

    fn enqueue_power_off(
        &mut self,
        now: SimTime,
        node: u32,
        action: Option<Action>,
        gate: &mut dyn DrainGate,
    ) -> u64 {
        let gated = gate.request_drain(now, node);
        let mut cmd = CmdState {
            id: 0,
            node,
            cmd: PowerCmd::Off,
            action,
            after: None,
            delay_after: SimDuration::ZERO,
            not_before: now,
            ready: true,
            gated_until: None,
            holds_drain: false,
            attempts: 0,
        };
        if gated {
            let force_at = now + self.drain_force_after;
            cmd.gated_until = Some(force_at);
            cmd.holds_drain = true;
            let t = self
                .lifecycle
                .transition(now, node, LifecycleState::Draining);
            self.note_transition(t);
            self.record(now, Some(node), AuditEntry::DrainRequested { force_at });
        }
        self.enqueue(cmd)
    }

    fn enqueue(&mut self, mut cmd: CmdState) -> u64 {
        let id = self.next_cmd_id;
        self.next_cmd_id += 1;
        cmd.id = id;
        self.cmds.push(cmd);
        id
    }

    // ------------------------------------------------------------------
    // driving

    /// The next instant the bus needs to run again on its own (drain
    /// deadlines, retry backoffs, reboot pauses). `None` when nothing
    /// is time-pending.
    pub fn next_wakeup(&self) -> Option<SimTime> {
        // Only the FIFO head of each node's queue can issue, so only its
        // deadline counts: a ready command parked behind a retrying
        // predecessor must not pull the wake time into the past (that
        // would re-arm a same-instant wake forever).
        let mut seen: Vec<u32> = Vec::new();
        let cmd_wake = self
            .cmds
            .iter()
            .filter_map(|c| {
                if seen.contains(&c.node) {
                    return None;
                }
                seen.push(c.node);
                match c.gated_until {
                    Some(force_at) => Some(force_at),
                    None if c.ready => Some(c.not_before),
                    None => None,
                }
            })
            .min();
        let watch = self.boot_watch.values().min().copied();
        let release = self.release_at.values().min().copied();
        [cmd_wake, watch, release].into_iter().flatten().min()
    }

    /// One bus pass at `now`: promote completed drains, issue every
    /// ready command through `transport`, schedule retries for lost
    /// ones, fail out exhausted ones. Returns the physical effects for
    /// the driver to apply. Call again after applying effects until it
    /// returns empty (chained commands may become ready mid-pass).
    pub fn step(
        &mut self,
        now: SimTime,
        transport: &mut dyn CommandTransport,
        gate: &mut dyn DrainGate,
    ) -> Vec<Effect> {
        let mut effects = Vec::new();
        // timed quarantine releases due at `now`
        let due: Vec<u32> = self
            .release_at
            .iter()
            .filter(|&(_, &at)| now >= at)
            .map(|(&n, _)| n)
            .collect();
        for node in due {
            if self.quarantined(node) {
                self.release_node(now, node, false, true);
            } else {
                self.release_at.remove(&node);
            }
        }
        // boot watchdog: nodes stuck in PoweringOn/Bios past deadline
        let expired: Vec<u32> = self
            .boot_watch
            .iter()
            .filter(|&(_, &at)| now >= at)
            .map(|(&n, _)| n)
            .collect();
        for node in expired {
            if !matches!(
                self.lifecycle.state(node),
                LifecycleState::PoweringOn | LifecycleState::Bios
            ) {
                self.boot_watch.remove(&node);
                continue;
            }
            // a pending command chain is already working this node —
            // give it a fresh deadline instead of racing it
            if self.cmds.iter().any(|c| c.node == node) {
                self.boot_watch.insert(node, now + self.watchdog.deadline);
                continue;
            }
            let attempt = self.boot_retries[node as usize] + 1;
            if attempt > self.watchdog.max_retries {
                // retries exhausted: the node never comes up on its own
                let t = self.lifecycle.transition(
                    now,
                    node,
                    LifecycleState::Failed(FailReason::Unresponsive),
                );
                self.note_transition(t);
            } else {
                self.boot_retries[node as usize] = attempt;
                self.stats.boot_timeouts += 1;
                self.record(now, Some(node), AuditEntry::BootTimeout { attempt });
                // power-cycle: the Off clears the watch, the chained On
                // re-arms it when it lands
                self.submit_followup_power(now, node, true);
            }
        }
        // promote gated commands whose drain completed (or was forced)
        for i in 0..self.cmds.len() {
            let Some(force_at) = self.cmds[i].gated_until else {
                continue;
            };
            let node = self.cmds[i].node;
            let drained = gate.is_drained(node);
            let forced = now >= force_at;
            if drained || forced {
                self.cmds[i].gated_until = None;
                self.cmds[i].not_before = now;
                if forced && !drained {
                    self.stats.drains_forced += 1;
                }
                self.record(
                    now,
                    Some(node),
                    AuditEntry::DrainComplete {
                        forced: forced && !drained,
                    },
                );
            }
        }
        // per-node FIFO: a command only issues when no earlier command
        // for the same node is still pending ("serializes commands to
        // the ICE Box"). A forward scan with in-place removal keeps the
        // order deterministic and lets a chain complete in one pass.
        let mut i = 0;
        let mut blocked: Vec<u32> = Vec::new();
        while i < self.cmds.len() {
            let node = self.cmds[i].node;
            if blocked.contains(&node)
                || self.cmds[i].gated_until.is_some()
                || !self.cmds[i].ready
                || now < self.cmds[i].not_before
            {
                blocked.push(node);
                i += 1;
                continue;
            }
            let cmd = self.cmds[i].cmd;
            // a power-on that reaches the head of a quarantined node's
            // queue (a reboot chain whose Off half landed after the trip)
            // is aborted, not issued — quarantine means *stay dark*
            if cmd == PowerCmd::On && self.quarantined(node) {
                let id = self.cmds[i].id;
                self.stats.commands_failed += 1;
                self.record(now, Some(node), AuditEntry::CommandAborted { cmd });
                self.cmds.remove(i);
                let mut aborted = Vec::new();
                self.cmds.retain(|c| {
                    if c.after == Some(id) {
                        aborted.push((c.node, c.cmd));
                        false
                    } else {
                        true
                    }
                });
                for (n, c) in aborted {
                    self.stats.commands_failed += 1;
                    self.record(now, Some(n), AuditEntry::CommandAborted { cmd: c });
                }
                continue;
            }
            let attempt = self.cmds[i].attempts + 1;
            self.record(now, Some(node), AuditEntry::CommandIssued { cmd, attempt });
            match transport.issue(now, node, cmd) {
                IssueOutcome::Lost => {
                    self.cmds[i].attempts = attempt;
                    self.record(now, Some(node), AuditEntry::CommandLost { cmd, attempt });
                    if attempt >= self.policy.max_attempts {
                        self.fail_command(now, i, gate);
                        // removal shifts the vec; re-examine index i
                        continue;
                    }
                    self.stats.retries += 1;
                    self.cmds[i].not_before = now + self.policy.backoff(attempt);
                    blocked.push(node);
                    i += 1;
                }
                IssueOutcome::Rejected => {
                    self.cmds[i].attempts = attempt;
                    self.fail_command(now, i, gate);
                    continue;
                }
                IssueOutcome::Noop => {
                    self.complete_command(now, i, attempt, true, gate);
                    continue;
                }
                IssueOutcome::Applied { energize_at } => {
                    self.complete_command(now, i, attempt, false, gate);
                    let t = match cmd {
                        // the park power-off of a quarantined node must
                        // not ride the Quarantined→Off release edge
                        PowerCmd::Off if self.quarantined(node) => None,
                        PowerCmd::Off => self.lifecycle.transition(now, node, LifecycleState::Off),
                        PowerCmd::On => {
                            self.lifecycle
                                .transition(now, node, LifecycleState::PoweringOn)
                        }
                    };
                    self.note_transition(t);
                    effects.push(Effect::PowerApplied {
                        node,
                        on: cmd == PowerCmd::On,
                        energize_at,
                    });
                    continue;
                }
            }
        }
        effects
    }

    /// Complete `self.cmds[idx]`: audit, release its drain, mark chained
    /// successors ready, and remove it from the queue.
    fn complete_command(
        &mut self,
        now: SimTime,
        idx: usize,
        attempts: u32,
        noop: bool,
        gate: &mut dyn DrainGate,
    ) {
        let id = self.cmds[idx].id;
        let node = self.cmds[idx].node;
        let cmd = self.cmds[idx].cmd;
        if self.cmds[idx].holds_drain {
            gate.release(node);
        }
        self.stats.commands_completed += 1;
        self.record(
            now,
            Some(node),
            AuditEntry::CommandCompleted {
                cmd,
                attempts,
                noop,
            },
        );
        self.cmds.remove(idx);
        for c in &mut self.cmds {
            if c.after == Some(id) {
                c.after = None;
                c.ready = true;
                c.not_before = now + c.delay_after;
            }
        }
    }

    /// Fail `self.cmds[idx]` permanently: audit, release its drain (the
    /// node stays up — `Draining → Up`), and abort chained successors.
    fn fail_command(&mut self, now: SimTime, idx: usize, gate: &mut dyn DrainGate) {
        let id = self.cmds[idx].id;
        let node = self.cmds[idx].node;
        let cmd = self.cmds[idx].cmd;
        let attempts = self.cmds[idx].attempts;
        if self.cmds[idx].holds_drain {
            gate.release(node);
            let t = self.lifecycle.transition(now, node, LifecycleState::Up);
            self.note_transition(t);
        }
        self.stats.commands_failed += 1;
        self.record(now, Some(node), AuditEntry::CommandFailed { cmd, attempts });
        self.cmds.remove(idx);
        // abort the rest of the chain — audited, never silently dropped
        let mut aborted = Vec::new();
        self.cmds.retain(|c| {
            if c.after == Some(id) {
                aborted.push((c.node, c.cmd));
                false
            } else {
                true
            }
        });
        for (n, c) in aborted {
            self.stats.commands_failed += 1;
            self.record(now, Some(n), AuditEntry::CommandAborted { cmd: c });
        }
    }

    // ------------------------------------------------------------------
    // driver notifications (physical reality flowing back in)

    /// The outlet energized and firmware took over.
    pub fn note_energized(&mut self, now: SimTime, node: u32) {
        let t = self.lifecycle.transition(now, node, LifecycleState::Bios);
        self.note_transition(t);
    }

    /// The OS finished booting. Feeds the flap detector: the Nth Up
    /// entry inside the flap window trips quarantine — one audit event,
    /// one power-off, no boot-retry storm.
    pub fn note_boot_complete(&mut self, now: SimTime, node: u32) {
        let t = self.lifecycle.transition(now, node, LifecycleState::Up);
        let booted = t.is_some();
        self.note_transition(t);
        if !booted {
            return;
        }
        self.boot_retries[node as usize] = 0;
        let window = self.flap_policy.window;
        let hist = &mut self.up_history[node as usize];
        hist.retain(|&t0| t0 + window > now);
        hist.push(now);
        if (hist.len() as u32) >= self.flap_policy.threshold {
            let flaps = hist.len() as u32;
            hist.clear();
            self.stats.quarantines += 1;
            self.record(now, Some(node), AuditEntry::Quarantined { flaps });
            let t = self
                .lifecycle
                .transition(now, node, LifecycleState::Quarantined);
            self.note_transition(t);
            if let Some(d) = self.flap_policy.release_after {
                self.release_at.insert(node, now + d);
            }
            // park it dark; request_power allows Off while quarantined
            self.request_power(now, node, PowerCmd::Off);
        }
    }

    /// Release a quarantined node by hand. Returns `false` if the node
    /// is not quarantined. With `power_on` the node is powered straight
    /// back into service; otherwise it is left `Off`.
    pub fn release_quarantine(&mut self, now: SimTime, node: u32, power_on: bool) -> bool {
        if !self.quarantined(node) {
            return false;
        }
        self.release_node(now, node, true, power_on);
        true
    }

    fn release_node(&mut self, now: SimTime, node: u32, manual: bool, power_on: bool) {
        self.release_at.remove(&node);
        self.up_history[node as usize].clear();
        self.boot_retries[node as usize] = 0;
        self.record(now, Some(node), AuditEntry::QuarantineReleased { manual });
        let t = self.lifecycle.transition(now, node, LifecycleState::Off);
        self.note_transition(t);
        if power_on {
            self.request_power(now, node, PowerCmd::On);
        }
    }

    /// The firmware memory check failed; the node halts in BIOS.
    pub fn note_memory_failed(&mut self, now: SimTime, node: u32) {
        let t =
            self.lifecycle
                .transition(now, node, LifecycleState::Failed(FailReason::MemoryCheck));
        self.note_transition(t);
    }

    /// The CPU burned.
    pub fn note_burned(&mut self, now: SimTime, node: u32) {
        let t = self
            .lifecycle
            .force(now, node, LifecycleState::Failed(FailReason::Burned));
        self.note_transition(t);
    }

    /// Provisioning claimed the node (dark while the image streams).
    pub fn note_cloning(&mut self, now: SimTime, node: u32) {
        let t = self.lifecycle.force(now, node, LifecycleState::Cloning);
        self.note_transition(t);
    }

    /// A provisioning session gave up on this node (dead receiver,
    /// broken control channel): mark it unresponsive instead of leaving
    /// it parked in `Cloning` forever.
    pub fn note_clone_failed(&mut self, now: SimTime, node: u32) {
        let t =
            self.lifecycle
                .transition(now, node, LifecycleState::Failed(FailReason::Unresponsive));
        self.note_transition(t);
    }

    /// Adopt an already-running node (realtime startup over a live
    /// fleet): force the lifecycle straight to `Up`.
    pub fn adopt_up(&mut self, now: SimTime, node: u32) {
        let t = self.lifecycle.force(now, node, LifecycleState::Up);
        self.note_transition(t);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    /// A scriptable in-memory chassis: relay states plus a queue of
    /// loss decisions (pop-front; missing = delivered).
    struct MockTransport {
        relays: BTreeMap<u32, bool>,
        lose_next: Vec<bool>,
        issued: Vec<(u32, PowerCmd)>,
    }

    impl MockTransport {
        fn all_on(n: u32) -> Self {
            MockTransport {
                relays: (0..n).map(|i| (i, true)).collect(),
                lose_next: Vec::new(),
                issued: Vec::new(),
            }
        }

        fn all_off(n: u32) -> Self {
            MockTransport {
                relays: (0..n).map(|i| (i, false)).collect(),
                lose_next: Vec::new(),
                issued: Vec::new(),
            }
        }
    }

    impl CommandTransport for MockTransport {
        fn issue(&mut self, _now: SimTime, node: u32, cmd: PowerCmd) -> IssueOutcome {
            self.issued.push((node, cmd));
            if !self.lose_next.is_empty() && self.lose_next.remove(0) {
                return IssueOutcome::Lost;
            }
            let Some(relay) = self.relays.get_mut(&node) else {
                return IssueOutcome::Rejected;
            };
            let want = cmd == PowerCmd::On;
            if *relay == want {
                return IssueOutcome::Noop;
            }
            *relay = want;
            IssueOutcome::Applied {
                energize_at: want.then_some(SimTime::ZERO),
            }
        }
        fn relay_on(&self, node: u32) -> bool {
            self.relays.get(&node).copied().unwrap_or(false)
        }
    }

    /// A gate that drains after being asked `passes` times.
    struct MockGate {
        busy: bool,
        drained: bool,
        released: u32,
    }

    impl DrainGate for MockGate {
        fn request_drain(&mut self, _now: SimTime, _node: u32) -> bool {
            self.busy
        }
        fn is_drained(&self, _node: u32) -> bool {
            self.drained
        }
        fn release(&mut self, _node: u32) {
            self.released += 1;
        }
    }

    fn t(s: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(s)
    }

    fn up_plane(n: usize) -> ControlPlane {
        let mut cp = ControlPlane::new(n);
        for i in 0..n {
            cp.adopt_up(SimTime::ZERO, i as u32);
        }
        cp
    }

    #[test]
    fn every_action_variant_is_suppressed_on_a_dark_node() {
        let mut cp = ControlPlane::new(1);
        let mut gate = NoGate;
        for action in [
            Action::PowerDown,
            Action::Reboot,
            Action::Halt,
            Action::Plugin("site.sh".into()),
        ] {
            let fx = cp.submit_action(t(1), 0, &action, false, &mut gate);
            assert!(fx.is_empty(), "{action:?} must be dropped when relay off");
        }
        assert_eq!(cp.stats().actions_suppressed, 4);
        assert_eq!(cp.stats().actions_executed, 0);
        assert!(cp.action_log().is_empty(), "suppressed ≠ executed");
        assert!(cp.audit().iter().all(|r| matches!(
            r.entry,
            AuditEntry::ActionSuppressed {
                reason: SuppressReason::PoweredOff,
                ..
            }
        )));
    }

    #[test]
    fn duplicate_in_flight_actions_are_deduped() {
        let mut cp = up_plane(1);
        let mut gate = NoGate;
        let mut tx = MockTransport::all_on(1);
        // first PowerDown goes in but is lost on the wire -> retrying
        tx.lose_next = vec![true];
        cp.submit_action(t(1), 0, &Action::PowerDown, true, &mut gate);
        cp.step(t(1), &mut tx, &mut gate);
        assert_eq!(cp.outstanding(), 1, "retry pending");
        // identical action re-fires while the first retries: deduped
        cp.submit_action(t(2), 0, &Action::PowerDown, true, &mut gate);
        assert_eq!(cp.stats().actions_suppressed, 1);
        // but a *different* action is not
        cp.submit_action(t(2), 0, &Action::Halt, true, &mut gate);
        assert_eq!(cp.stats().actions_executed, 2);
        assert_eq!(cp.action_log().len(), 2);
    }

    #[test]
    fn retry_backoff_is_exponential_and_bounded() {
        let p = RetryPolicy::default();
        assert_eq!(p.backoff(1), SimDuration::from_millis(500));
        assert_eq!(p.backoff(2), SimDuration::from_millis(1000));
        assert_eq!(p.backoff(3), SimDuration::from_millis(2000));
        assert_eq!(p.backoff(30), SimDuration::from_secs(8), "capped");
    }

    #[test]
    fn lost_commands_retry_then_fail_into_the_audit_trail() {
        let mut cp = up_plane(1);
        cp.set_retry_policy(RetryPolicy {
            base: SimDuration::from_millis(500),
            max_delay: SimDuration::from_secs(8),
            max_attempts: 3,
        });
        let mut gate = NoGate;
        let mut tx = MockTransport::all_on(1);
        tx.lose_next = vec![true, true, true]; // every attempt lost
        cp.submit_action(t(1), 0, &Action::PowerDown, true, &mut gate);
        let mut now = t(1);
        for _ in 0..5 {
            cp.step(now, &mut tx, &mut gate);
            now = cp.next_wakeup().unwrap_or(now);
            if cp.outstanding() == 0 {
                break;
            }
        }
        assert_eq!(cp.outstanding(), 0, "exhausted, not stuck");
        assert_eq!(cp.stats().commands_failed, 1);
        assert_eq!(cp.stats().retries, 2, "attempts 1 and 2 scheduled retries");
        assert!(
            cp.audit()
                .iter()
                .any(|r| matches!(r.entry, AuditEntry::CommandFailed { attempts: 3, .. })),
            "failure lands in the audit trail"
        );
        assert!(tx.relay_on(0), "the chassis never heard any attempt");
    }

    #[test]
    fn reboot_chains_off_then_on_and_a_failed_off_aborts_the_on() {
        let mut cp = up_plane(1);
        cp.set_retry_policy(RetryPolicy {
            base: SimDuration::from_millis(100),
            max_delay: SimDuration::from_secs(1),
            max_attempts: 2,
        });
        let mut gate = NoGate;
        let mut tx = MockTransport::all_on(1);
        tx.lose_next = vec![true, true]; // the off half never arrives
        cp.submit_action(t(1), 0, &Action::Reboot, true, &mut gate);
        assert_eq!(cp.outstanding(), 2, "off + chained on");
        let mut now = t(1);
        for _ in 0..4 {
            cp.step(now, &mut tx, &mut gate);
            now = cp.next_wakeup().unwrap_or(now);
        }
        assert_eq!(cp.outstanding(), 0);
        assert!(cp
            .audit()
            .iter()
            .any(|r| matches!(r.entry, AuditEntry::CommandAborted { cmd: PowerCmd::On })));
        assert!(tx.relay_on(0), "node untouched by the failed reboot");
    }

    #[test]
    fn reboot_completes_through_a_clean_transport() {
        let mut cp = up_plane(1);
        let mut gate = NoGate;
        let mut tx = MockTransport::all_on(1);
        cp.submit_action(t(1), 0, &Action::Reboot, true, &mut gate);
        let fx = cp.step(t(1), &mut tx, &mut gate);
        assert_eq!(
            fx,
            vec![Effect::PowerApplied {
                node: 0,
                on: false,
                energize_at: None
            }]
        );
        // the on half waits out the reboot pause
        let wake = cp.next_wakeup().unwrap();
        assert_eq!(wake, t(1) + SimDuration::from_secs(2));
        assert!(cp.step(t(1), &mut tx, &mut gate).is_empty(), "not yet");
        let fx = cp.step(wake, &mut tx, &mut gate);
        assert!(matches!(
            fx.as_slice(),
            [Effect::PowerApplied { on: true, .. }]
        ));
        assert_eq!(cp.outstanding(), 0);
        assert_eq!(cp.lifecycle().state(0), LifecycleState::PoweringOn);
    }

    #[test]
    fn drain_gate_holds_power_actions_until_drained() {
        let mut cp = up_plane(1);
        let mut gate = MockGate {
            busy: true,
            drained: false,
            released: 0,
        };
        let mut tx = MockTransport::all_on(1);
        cp.submit_action(t(10), 0, &Action::PowerDown, true, &mut gate);
        assert_eq!(cp.lifecycle().state(0), LifecycleState::Draining);
        assert!(cp.step(t(11), &mut tx, &mut gate).is_empty(), "gated");
        assert!(tx.issued.is_empty(), "nothing reached the chassis");
        // the job finishes; the drain completes
        gate.drained = true;
        let fx = cp.step(t(20), &mut tx, &mut gate);
        assert!(matches!(
            fx.as_slice(),
            [Effect::PowerApplied { on: false, .. }]
        ));
        assert_eq!(gate.released, 1, "drain mark released on completion");
        assert_eq!(cp.lifecycle().state(0), LifecycleState::Off);
        assert_eq!(cp.stats().drains_forced, 0);
    }

    #[test]
    fn drain_deadline_forces_the_gate_open() {
        let mut cp = up_plane(1);
        cp.set_drain_force_after(SimDuration::from_secs(30));
        let mut gate = MockGate {
            busy: true,
            drained: false,
            released: 0,
        };
        let mut tx = MockTransport::all_on(1);
        cp.submit_action(t(10), 0, &Action::PowerDown, true, &mut gate);
        assert_eq!(cp.next_wakeup(), Some(t(40)), "the force deadline");
        assert!(cp.step(t(39), &mut tx, &mut gate).is_empty());
        let fx = cp.step(t(40), &mut tx, &mut gate);
        assert!(matches!(
            fx.as_slice(),
            [Effect::PowerApplied { on: false, .. }]
        ));
        assert_eq!(cp.stats().drains_forced, 1);
        assert!(cp
            .audit()
            .iter()
            .any(|r| matches!(r.entry, AuditEntry::DrainComplete { forced: true })));
    }

    #[test]
    fn commands_to_one_node_issue_in_fifo_order() {
        let mut cp = up_plane(2);
        let mut gate = NoGate;
        let mut tx = MockTransport::all_on(2);
        // node 0: off, then on — but the off is lost once, so the on
        // must wait behind the retry instead of jumping the queue
        tx.lose_next = vec![true];
        cp.request_power(t(1), 0, PowerCmd::Off);
        cp.request_power(t(1), 0, PowerCmd::On);
        cp.request_power(t(1), 1, PowerCmd::Off); // other node unaffected
        cp.step(t(1), &mut tx, &mut gate);
        assert_eq!(
            tx.issued,
            vec![(0, PowerCmd::Off), (1, PowerCmd::Off)],
            "node0's On held behind its retrying Off; node1 proceeds"
        );
        let wake = cp.next_wakeup().unwrap();
        cp.step(wake, &mut tx, &mut gate);
        assert_eq!(cp.outstanding(), 0);
        assert_eq!(
            &tx.issued[2..],
            &[(0, PowerCmd::Off), (0, PowerCmd::On)],
            "retry lands, then the queued On — never inverted"
        );
    }

    /// Drive one full boot cycle (On → energized → boot complete).
    fn boot_cycle(cp: &mut ControlPlane, tx: &mut MockTransport, now: SimTime) {
        let mut gate = NoGate;
        cp.request_power(now, 0, PowerCmd::On);
        cp.step(now, tx, &mut gate);
        cp.note_energized(now, 0);
        cp.note_boot_complete(now, 0);
    }

    #[test]
    fn flap_detection_quarantines_with_one_event_and_a_park_off() {
        let mut cp = ControlPlane::new(1);
        cp.set_flap_policy(FlapPolicy {
            threshold: 3,
            window: SimDuration::from_secs(600),
            release_after: None,
        });
        let mut gate = NoGate;
        let mut tx = MockTransport::all_off(1);
        let mut now = t(10);
        for cycle in 0..3 {
            boot_cycle(&mut cp, &mut tx, now);
            if cycle < 2 {
                // node falls over; driver parks it and tries again
                cp.request_power(now, 0, PowerCmd::Off);
                cp.step(now, &mut tx, &mut gate);
                now += SimDuration::from_secs(30);
            }
        }
        // third Up inside the window trips quarantine
        assert_eq!(cp.lifecycle().state(0), LifecycleState::Quarantined);
        let trips: Vec<_> = cp
            .audit()
            .iter()
            .filter(|r| matches!(r.entry, AuditEntry::Quarantined { .. }))
            .collect();
        assert_eq!(trips.len(), 1, "exactly one quarantine event");
        assert!(matches!(
            trips[0].entry,
            AuditEntry::Quarantined { flaps: 3 }
        ));
        // the park power-off lands without un-quarantining the node
        cp.step(now, &mut tx, &mut gate);
        assert!(!tx.relay_on(0), "parked dark");
        assert_eq!(cp.lifecycle().state(0), LifecycleState::Quarantined);
        // engine actions are suppressed outright
        let fx = cp.submit_action(now, 0, &Action::Reboot, true, &mut gate);
        assert!(fx.is_empty());
        assert!(cp.audit().iter().any(|r| matches!(
            r.entry,
            AuditEntry::ActionSuppressed {
                reason: SuppressReason::Quarantined,
                ..
            }
        )));
        // an admin power-on is held, not queued
        cp.request_power(now, 0, PowerCmd::On);
        assert_eq!(cp.outstanding(), 0);
        assert!(cp
            .audit()
            .iter()
            .any(|r| matches!(r.entry, AuditEntry::QuarantineHeld { cmd: PowerCmd::On })));
        // a follow-up reboot chain aborts at the On half
        cp.submit_followup_power(now, 0, true);
        cp.step(now, &mut tx, &mut gate);
        let wake = cp.next_wakeup().expect("the chained On's reboot pause");
        cp.step(wake, &mut tx, &mut gate);
        assert_eq!(cp.outstanding(), 0);
        assert_eq!(cp.lifecycle().state(0), LifecycleState::Quarantined);
        assert!(cp
            .audit()
            .iter()
            .any(|r| matches!(r.entry, AuditEntry::CommandAborted { cmd: PowerCmd::On })));
        // manual release powers it back into service
        assert!(cp.release_quarantine(now, 0, true));
        let fx = cp.step(now, &mut tx, &mut gate);
        assert!(matches!(
            fx.as_slice(),
            [Effect::PowerApplied { on: true, .. }]
        ));
        assert_eq!(cp.lifecycle().state(0), LifecycleState::PoweringOn);
        assert_eq!(cp.stats().quarantines, 1);
    }

    #[test]
    fn timed_quarantine_release_fires_on_the_wakeup_path() {
        let mut cp = ControlPlane::new(1);
        cp.set_flap_policy(FlapPolicy {
            threshold: 2,
            window: SimDuration::from_secs(600),
            release_after: Some(SimDuration::from_secs(120)),
        });
        let mut gate = NoGate;
        let mut tx = MockTransport::all_off(1);
        boot_cycle(&mut cp, &mut tx, t(10));
        cp.request_power(t(10), 0, PowerCmd::Off);
        cp.step(t(10), &mut tx, &mut gate);
        boot_cycle(&mut cp, &mut tx, t(40)); // second Up: trip
        cp.step(t(40), &mut tx, &mut gate); // park off lands
        assert_eq!(cp.lifecycle().state(0), LifecycleState::Quarantined);
        assert_eq!(cp.next_wakeup(), Some(t(160)), "the release timer");
        let fx = cp.step(t(160), &mut tx, &mut gate);
        assert!(matches!(
            fx.as_slice(),
            [Effect::PowerApplied { on: true, .. }]
        ));
        assert_eq!(cp.lifecycle().state(0), LifecycleState::PoweringOn);
        assert!(cp
            .audit()
            .iter()
            .any(|r| matches!(r.entry, AuditEntry::QuarantineReleased { manual: false })));
    }

    #[test]
    fn boot_watchdog_power_cycles_then_fails_unresponsive() {
        let mut cp = ControlPlane::new(1);
        cp.set_boot_watchdog(BootWatchdog {
            deadline: SimDuration::from_secs(60),
            max_retries: 2,
        });
        let mut gate = NoGate;
        let mut tx = MockTransport::all_off(1);
        cp.request_power(t(0), 0, PowerCmd::On);
        cp.step(t(0), &mut tx, &mut gate);
        assert_eq!(cp.lifecycle().state(0), LifecycleState::PoweringOn);
        // the energize never arrives (chassis controller restarted and
        // dropped the pending sequencing) — drive only by wakeups
        let mut guard = 0;
        while let Some(wake) = cp.next_wakeup() {
            guard += 1;
            assert!(guard < 50, "watchdog must terminate");
            cp.step(wake, &mut tx, &mut gate);
        }
        assert_eq!(
            cp.lifecycle().state(0),
            LifecycleState::Failed(FailReason::Unresponsive),
            "retries exhausted"
        );
        assert_eq!(cp.stats().boot_timeouts, 2);
        assert!(cp
            .audit()
            .iter()
            .any(|r| matches!(r.entry, AuditEntry::BootTimeout { attempt: 2 })));
    }

    #[test]
    fn noop_commands_complete_without_effects() {
        let mut cp = up_plane(1);
        let mut gate = NoGate;
        let mut tx = MockTransport::all_on(1);
        cp.request_power(t(1), 0, PowerCmd::On); // already on
        let fx = cp.step(t(1), &mut tx, &mut gate);
        assert!(fx.is_empty());
        assert!(cp
            .audit()
            .iter()
            .any(|r| matches!(r.entry, AuditEntry::CommandCompleted { noop: true, .. })));
    }
}
