//! Cluster construction parameters.

use cwx_bios::Firmware;
use cwx_net::FAST_ETHERNET_BPS;
use cwx_util::time::SimDuration;

/// How node workloads are assigned.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WorkloadMix {
    /// Every node idles.
    Idle,
    /// Every node runs at a constant utilisation.
    Constant(f64),
    /// A realistic mix: 60% batch jobs, 30% noisy background, 10% idle,
    /// assigned round-robin by node index.
    Mixed,
}

/// Parameters for [`crate::Cluster::build`].
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Identity of this cluster inside a federation (prefix on audit
    /// rows and cluster-qualified event ids). `0` for standalone
    /// deployments.
    pub cluster_id: u16,
    /// Number of compute nodes.
    pub n_nodes: u32,
    /// Experiment seed (drives every random draw).
    pub seed: u64,
    /// Hardware/thermal integration step.
    pub hw_step: SimDuration,
    /// Monitoring agent sampling interval.
    pub agent_interval: SimDuration,
    /// ICE Box probe sampling interval (out-of-band path).
    pub probe_interval: SimDuration,
    /// Server housekeeping interval (mail flush, staleness checks).
    pub housekeeping_interval: SimDuration,
    /// Notification batching window.
    pub notify_window: SimDuration,
    /// Cluster network bandwidth (shared segment), bytes/s.
    pub bandwidth_bps: u64,
    /// Per-receiver packet loss on the segment.
    pub loss: f64,
    /// Node firmware.
    pub firmware: Firmware,
    /// Workload assignment.
    pub workload: WorkloadMix,
    /// Delta consolidation in the agents (off = E7 ablation).
    pub delta_enabled: bool,
    /// Report compression in the agents.
    pub compress: bool,
    /// Power nodes on automatically at t = 0.
    pub autostart: bool,
    /// Nodes with a bad DIMM: their boots fail the memory check.
    /// LinuxBIOS reports the failure on the serial console (captured by
    /// the ICE Box); a vendor BIOS just beeps at a monitor nobody has.
    pub bad_memory_nodes: Vec<u32>,
    /// History retained per series.
    pub history_capacity: usize,
    /// When set, server history persists to a `cwx-store` directory
    /// instead of the in-memory ring, surviving server restarts.
    pub store_dir: Option<std::path::PathBuf>,
    /// Worker shards for the parallel hardware step (and agent
    /// sampling). `0` = auto: single-threaded below 1024 nodes, then one
    /// shard per 256 nodes capped at the machine's parallelism. Results
    /// are bit-identical for every value — see `cwx_hw::fleet`.
    pub hw_shards: usize,
    /// Fraction of ICE Box commands lost in transit (fault injection for
    /// the control plane's retry machinery). `0.0` = reliable chassis
    /// link, the default.
    pub icebox_command_loss: f64,
    /// How long a SLURM drain may hold a power action on an allocated
    /// node before the control plane forces it through anyway (the
    /// hardware is at risk; the job is already lost either way).
    pub drain_force_after: SimDuration,
    /// How long after its last report a node is considered unreachable
    /// by the staleness checks (probes and housekeeping). `None` keeps
    /// the historical default of four agent intervals.
    pub probe_stale_after: Option<SimDuration>,
    /// Flap detection: Up-entries inside [`ClusterConfig::flap_window`]
    /// that quarantine a node. `0` disables flap detection.
    pub flap_threshold: u32,
    /// Flap detection sliding window.
    pub flap_window: SimDuration,
    /// Automatic quarantine release delay; `None` = manual release only.
    pub quarantine_release_after: Option<SimDuration>,
    /// Boot watchdog: how long a node may sit in `PoweringOn`/`Bios`
    /// before the control plane power-cycles it.
    pub boot_deadline: SimDuration,
    /// Boot watchdog power-cycle retries before marking the node
    /// `Failed(Unresponsive)`.
    pub boot_max_retries: u32,
    /// Build one network segment per chassis bridged by a backbone
    /// instead of a single shared segment. Rack segments can then be
    /// partitioned independently (the chaos campaigns' partition
    /// surface); the flat default keeps existing experiments identical.
    pub rack_network: bool,
}

impl ClusterConfig {
    /// Resolve [`ClusterConfig::probe_stale_after`] to a concrete
    /// staleness window: the explicit knob, or four agent intervals.
    pub fn effective_stale_after(&self) -> SimDuration {
        self.probe_stale_after.unwrap_or(self.agent_interval * 4)
    }

    /// Resolve [`ClusterConfig::hw_shards`] to a concrete shard count.
    pub fn effective_hw_shards(&self) -> usize {
        if self.hw_shards != 0 {
            return self.hw_shards;
        }
        let n = self.n_nodes as usize;
        if n < 1024 {
            return 1; // thread setup costs more than it saves
        }
        let avail = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        avail.min(n / 256).max(1)
    }
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            cluster_id: 0,
            n_nodes: 16,
            seed: 42,
            hw_step: SimDuration::from_secs(1),
            agent_interval: SimDuration::from_secs(5),
            probe_interval: SimDuration::from_secs(5),
            housekeeping_interval: SimDuration::from_secs(10),
            notify_window: SimDuration::from_secs(30),
            bandwidth_bps: FAST_ETHERNET_BPS,
            loss: 0.0,
            firmware: Firmware::LinuxBios,
            workload: WorkloadMix::Mixed,
            delta_enabled: true,
            compress: true,
            autostart: true,
            bad_memory_nodes: Vec::new(),
            history_capacity: 720,
            store_dir: None,
            hw_shards: 0,
            icebox_command_loss: 0.0,
            drain_force_after: SimDuration::from_secs(30),
            probe_stale_after: None,
            flap_threshold: 4,
            flap_window: SimDuration::from_secs(900),
            quarantine_release_after: None,
            boot_deadline: SimDuration::from_secs(300),
            boot_max_retries: 5,
            rack_network: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = ClusterConfig::default();
        assert!(c.n_nodes > 0);
        assert!(c.agent_interval.as_secs_f64() >= c.hw_step.as_secs_f64());
        assert_eq!(c.firmware, Firmware::LinuxBios);
        assert!(c.delta_enabled && c.compress && c.autostart);
    }

    #[test]
    fn shard_auto_scaling() {
        let mut c = ClusterConfig::default();
        assert_eq!(c.effective_hw_shards(), 1, "small fleets stay inline");
        c.n_nodes = 10_000;
        assert!(c.effective_hw_shards() >= 1);
        c.hw_shards = 3;
        assert_eq!(c.effective_hw_shards(), 3, "explicit setting wins");
    }
}
