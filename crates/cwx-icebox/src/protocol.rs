//! The SIMP and NIMP command protocols (paper §3.4).
//!
//! "There are native command protocols which can be used with ClusterWorX
//! or other software to control ICE Box remotely. The serial ICE
//! management protocol SIMP facilitates the serial connection of an ICE
//! Box and the network ICE management protocol NIMP uses the onboard
//! ethernet".
//!
//! The wire details are not public; we define a faithful-in-spirit text
//! protocol with two framings over one command set:
//!
//! * **SIMP**: a bare command line terminated by CR (`POWER ON 3\r`) —
//!   what a human on the serial port types.
//! * **NIMP**: a framed datagram `NIMP1 <seq> <command>\n` carrying a
//!   sequence number for request/response matching over the network.
//!
//! Both decode to [`Command`]; [`render_response`] produces the reply
//! text in the matching framing.

use std::fmt;

use crate::chassis::{PortId, ProbeReading, NODE_PORTS};

/// Which ports a command addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PortSel {
    /// Every node port.
    All,
    /// One port.
    One(PortId),
}

/// The ICE Box command set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Command {
    /// Energize outlet(s).
    PowerOn(PortSel),
    /// Cut outlet(s).
    PowerOff(PortSel),
    /// Off then on ("power-cycled on demand").
    PowerCycle(PortSel),
    /// Pulse the reset switch.
    Reset(PortSel),
    /// Relay + probe status of all ports.
    Status,
    /// Temperature readings of all ports.
    Temps,
    /// Dump a port's captured console log.
    Console(PortId),
    /// Clear a port's console log.
    ClearLog(PortId),
    /// Firmware version.
    Version,
}

/// Protocol decode errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// Unknown verb.
    UnknownCommand(String),
    /// Port out of range or not a number.
    BadPort(String),
    /// Command missing its argument.
    MissingArgument,
    /// NIMP frame malformed (bad magic or sequence).
    BadFrame,
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::UnknownCommand(c) => write!(f, "unknown command: {c}"),
            ProtoError::BadPort(p) => write!(f, "bad port: {p}"),
            ProtoError::MissingArgument => write!(f, "missing argument"),
            ProtoError::BadFrame => write!(f, "malformed NIMP frame"),
        }
    }
}

impl std::error::Error for ProtoError {}

/// A reply to a command.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Command accepted.
    Ok,
    /// Status table.
    Status(Vec<(PortId, bool, ProbeReading)>),
    /// Temperature table.
    Temps(Vec<(PortId, f64)>),
    /// Console dump.
    Console(String),
    /// Version string.
    Version(String),
    /// Error.
    Err(String),
}

fn parse_port(tok: &str) -> Result<PortId, ProtoError> {
    let n: u8 = tok
        .parse()
        .map_err(|_| ProtoError::BadPort(tok.to_string()))?;
    if (n as usize) < NODE_PORTS {
        Ok(PortId(n))
    } else {
        Err(ProtoError::BadPort(tok.to_string()))
    }
}

fn parse_sel(tok: Option<&str>) -> Result<PortSel, ProtoError> {
    match tok {
        None => Err(ProtoError::MissingArgument),
        Some(t) if t.eq_ignore_ascii_case("all") => Ok(PortSel::All),
        Some(t) => Ok(PortSel::One(parse_port(t)?)),
    }
}

/// Parse the shared command grammar (already stripped of framing).
fn parse_command(line: &str) -> Result<Command, ProtoError> {
    let mut toks = line.split_whitespace();
    let verb = toks
        .next()
        .ok_or(ProtoError::MissingArgument)?
        .to_ascii_uppercase();
    match verb.as_str() {
        "POWER" => {
            let sub = toks
                .next()
                .ok_or(ProtoError::MissingArgument)?
                .to_ascii_uppercase();
            let sel = parse_sel(toks.next())?;
            match sub.as_str() {
                "ON" => Ok(Command::PowerOn(sel)),
                "OFF" => Ok(Command::PowerOff(sel)),
                "CYCLE" => Ok(Command::PowerCycle(sel)),
                other => Err(ProtoError::UnknownCommand(format!("POWER {other}"))),
            }
        }
        "RESET" => Ok(Command::Reset(parse_sel(toks.next())?)),
        "STATUS" => Ok(Command::Status),
        "TEMPS" => Ok(Command::Temps),
        "CONSOLE" => {
            let p = toks.next().ok_or(ProtoError::MissingArgument)?;
            Ok(Command::Console(parse_port(p)?))
        }
        "CLEARLOG" => {
            let p = toks.next().ok_or(ProtoError::MissingArgument)?;
            Ok(Command::ClearLog(parse_port(p)?))
        }
        "VERSION" => Ok(Command::Version),
        other => Err(ProtoError::UnknownCommand(other.to_string())),
    }
}

/// Decode a SIMP line (serial framing: bare command, CR/LF tolerated).
pub fn parse_simp(line: &str) -> Result<Command, ProtoError> {
    parse_command(line.trim_end_matches(['\r', '\n']))
}

/// Decode a NIMP frame, returning the sequence number and command.
pub fn parse_nimp(frame: &str) -> Result<(u32, Command), ProtoError> {
    let frame = frame.trim_end_matches(['\r', '\n']);
    let rest = frame.strip_prefix("NIMP1 ").ok_or(ProtoError::BadFrame)?;
    let (seq, cmd) = rest.split_once(' ').ok_or(ProtoError::BadFrame)?;
    let seq: u32 = seq.parse().map_err(|_| ProtoError::BadFrame)?;
    Ok((seq, parse_command(cmd)?))
}

/// Render a response. For NIMP pass the request's sequence number; for
/// SIMP pass `None`.
pub fn render_response(seq: Option<u32>, resp: &Response) -> String {
    let body = match resp {
        Response::Ok => "OK".to_string(),
        Response::Err(e) => format!("ERR {e}"),
        Response::Version(v) => format!("OK VERSION {v}"),
        Response::Console(log) => format!("OK CONSOLE {} bytes\n{log}", log.len()),
        Response::Status(rows) => {
            let mut s = String::from("OK STATUS\n");
            for (p, on, probe) in rows {
                s.push_str(&format!(
                    "port {} relay={} temp={:.1}C power={:.0}W fan={:.0}rpm\n",
                    p.0,
                    if *on { "on" } else { "off" },
                    probe.temp_c,
                    probe.watts,
                    probe.fan_rpm
                ));
            }
            s
        }
        Response::Temps(rows) => {
            let mut s = String::from("OK TEMPS\n");
            for (p, t) in rows {
                s.push_str(&format!("port {} {:.1}C\n", p.0, t));
            }
            s
        }
    };
    match seq {
        Some(n) => format!("NIMP1 {n} {body}\n"),
        None => format!("{body}\r\n"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simp_parses_core_commands() {
        assert_eq!(
            parse_simp("POWER ON 3\r").unwrap(),
            Command::PowerOn(PortSel::One(PortId(3)))
        );
        assert_eq!(
            parse_simp("power off all").unwrap(),
            Command::PowerOff(PortSel::All)
        );
        assert_eq!(
            parse_simp("Power Cycle 9").unwrap(),
            Command::PowerCycle(PortSel::One(PortId(9)))
        );
        assert_eq!(
            parse_simp("RESET 0").unwrap(),
            Command::Reset(PortSel::One(PortId(0)))
        );
        assert_eq!(parse_simp("STATUS").unwrap(), Command::Status);
        assert_eq!(parse_simp("TEMPS").unwrap(), Command::Temps);
        assert_eq!(
            parse_simp("CONSOLE 4").unwrap(),
            Command::Console(PortId(4))
        );
        assert_eq!(
            parse_simp("CLEARLOG 4").unwrap(),
            Command::ClearLog(PortId(4))
        );
        assert_eq!(parse_simp("VERSION").unwrap(), Command::Version);
    }

    #[test]
    fn simp_rejects_bad_input() {
        assert!(matches!(
            parse_simp("HALT 3"),
            Err(ProtoError::UnknownCommand(_))
        ));
        assert!(matches!(
            parse_simp("POWER ON"),
            Err(ProtoError::MissingArgument)
        ));
        assert!(matches!(
            parse_simp("POWER ON 10"),
            Err(ProtoError::BadPort(_))
        ));
        assert!(matches!(
            parse_simp("POWER ON x"),
            Err(ProtoError::BadPort(_))
        ));
        assert!(matches!(
            parse_simp("POWER FRY 3"),
            Err(ProtoError::UnknownCommand(_))
        ));
        assert!(matches!(parse_simp(""), Err(ProtoError::MissingArgument)));
        assert!(matches!(
            parse_simp("CONSOLE"),
            Err(ProtoError::MissingArgument)
        ));
    }

    #[test]
    fn nimp_frames_carry_sequence_numbers() {
        let (seq, cmd) = parse_nimp("NIMP1 77 POWER CYCLE 2\n").unwrap();
        assert_eq!(seq, 77);
        assert_eq!(cmd, Command::PowerCycle(PortSel::One(PortId(2))));
    }

    #[test]
    fn nimp_rejects_bad_frames() {
        assert_eq!(parse_nimp("POWER ON 3"), Err(ProtoError::BadFrame));
        assert_eq!(
            parse_nimp("NIMP1 abc POWER ON 3"),
            Err(ProtoError::BadFrame)
        );
        assert_eq!(parse_nimp("NIMP2 1 POWER ON 3"), Err(ProtoError::BadFrame));
        assert_eq!(parse_nimp("NIMP1 5"), Err(ProtoError::BadFrame));
    }

    #[test]
    fn responses_render_in_both_framings() {
        let r = Response::Version("icebox-fw-2.3".into());
        assert_eq!(render_response(None, &r), "OK VERSION icebox-fw-2.3\r\n");
        assert_eq!(
            render_response(Some(9), &r),
            "NIMP1 9 OK VERSION icebox-fw-2.3\n"
        );
    }

    #[test]
    fn status_response_renders_rows() {
        let rows = vec![(
            PortId(0),
            true,
            ProbeReading {
                temp_c: 48.25,
                watts: 142.0,
                fan_rpm: 6000.0,
            },
        )];
        let text = render_response(None, &Response::Status(rows));
        assert!(text.contains("port 0 relay=on temp=48.2C power=142W fan=6000rpm"));
    }

    #[test]
    fn round_trip_command_via_rendered_error() {
        let text = render_response(Some(3), &Response::Err("bad port".into()));
        assert!(text.starts_with("NIMP1 3 ERR"));
    }
}
