//! Chassis state: outlets, inlets, sequencing, probes, serial capture.

use cwx_util::ring::ByteRing;
use cwx_util::time::{SimDuration, SimTime};

/// Node ports per chassis (paper: "power to 10 compute nodes").
pub const NODE_PORTS: usize = 10;
/// Auxiliary ports per chassis ("two auxiliary devices").
pub const AUX_PORTS: usize = 2;
/// Serial capture per port ("buffering (up to 16k)").
pub const SERIAL_LOG_CAPACITY: usize = 16 * 1024;
/// Outlets energize this far apart on the same inlet during sequenced
/// power-up.
pub const SEQUENCE_STAGGER: SimDuration = SimDuration::from_millis(400);
/// Inlet capacity: 15 A at 110 V.
pub const INLET_CAPACITY_WATTS: f64 = 15.0 * 110.0;

/// A node port on a chassis (0..[`NODE_PORTS`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PortId(pub u8);

/// A command addressed to one node port, as carried by the control
/// plane's command bus.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeCommand {
    /// Close the outlet relay (sequenced energize).
    PowerOn,
    /// Open the outlet relay (immediate).
    PowerOff,
    /// Pulse the reset line.
    Reset,
}

/// Why a chassis refused a command. Unlike the bare `power_on`/
/// `power_off` accessors (which return `None` both for "already there"
/// and "no such port"), [`IceBox::execute`] distinguishes a rejected
/// command from an idempotent no-op so callers can audit it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommandError {
    /// The addressed port does not exist on this chassis.
    NoSuchPort(PortId),
    /// Reset requires a powered port.
    PortNotPowered(PortId),
}

/// Latest probe sample for a port (pushed by the integration layer).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ProbeReading {
    /// CPU temperature, °C.
    pub temp_c: f64,
    /// Power draw, watts.
    pub watts: f64,
    /// Fan speed, RPM.
    pub fan_rpm: f64,
}

/// Physical side-effects the integration layer must apply to nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PortEffect {
    /// Energize the outlet for `port` at `at` (sequenced).
    EnergizeAt {
        /// Affected port.
        port: PortId,
        /// When the relay closes.
        at: SimTime,
    },
    /// Cut power to `port` immediately.
    CutPower {
        /// Affected port.
        port: PortId,
    },
    /// Pulse the reset line of `port`.
    PulseReset {
        /// Affected port.
        port: PortId,
    },
}

/// A fault on a port's temperature probe (chaos-injectable: sensors on
/// real chassis stick and drift long before they die outright).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ProbeFault {
    /// The sensor repeats its last reading forever.
    Stuck,
    /// The sensor misreads temperature by a constant offset, °C.
    Skewed {
        /// Added to every recorded temperature.
        delta_c: f64,
    },
}

#[derive(Debug, Clone)]
struct Port {
    relay_on: bool,
    /// time the outlet actually energizes (sequencing delay)
    energize_at: Option<SimTime>,
    probe: ProbeReading,
    probe_fault: Option<ProbeFault>,
    serial: ByteRing,
}

impl Port {
    fn new() -> Self {
        Port {
            relay_on: false,
            energize_at: None,
            probe: ProbeReading::default(),
            probe_fault: None,
            serial: ByteRing::new(SERIAL_LOG_CAPACITY),
        }
    }
}

/// One ICE Box chassis.
#[derive(Debug)]
pub struct IceBox {
    ports: Vec<Port>,
    /// per-inlet time before which new energizations must queue
    inlet_next_slot: [SimTime; 2],
    /// whether automatic power sequencing is enabled (ablation knob)
    sequencing: bool,
    firmware_version: String,
}

impl IceBox {
    /// A chassis with all node outlets off and sequencing enabled.
    pub fn new() -> Self {
        IceBox {
            ports: (0..NODE_PORTS).map(|_| Port::new()).collect(),
            inlet_next_slot: [SimTime::ZERO; 2],
            sequencing: true,
            firmware_version: "icebox-fw-2.3".to_string(),
        }
    }

    /// Disable/enable automatic power sequencing (for the E10 ablation).
    pub fn set_sequencing(&mut self, on: bool) {
        self.sequencing = on;
    }

    /// Firmware version string.
    pub fn firmware_version(&self) -> &str {
        &self.firmware_version
    }

    /// The inlet feeding a port: ports 0–4 on inlet 0, 5–9 on inlet 1
    /// ("two 15A power inlets each provide power to five nodes").
    pub fn inlet_of(port: PortId) -> usize {
        usize::from(port.0 >= 5)
    }

    /// Whether an auxiliary outlet is energized. "The auxiliary outlets
    /// are powered on and stay on as long as the ICE Box is receiving
    /// power. This is to ensure that host nodes, switches and other
    /// devices are not powered off by mistake" — so they are always on
    /// and there is deliberately no API to switch them.
    pub fn aux_outlet_on(&self, aux: usize) -> bool {
        aux < AUX_PORTS
    }

    fn port(&self, p: PortId) -> Option<&Port> {
        self.ports.get(p.0 as usize)
    }

    fn port_mut(&mut self, p: PortId) -> Option<&mut Port> {
        self.ports.get_mut(p.0 as usize)
    }

    /// Whether the relay for `port` is commanded on.
    pub fn relay_on(&self, port: PortId) -> bool {
        self.port(port).is_some_and(|p| p.relay_on)
    }

    /// When the outlet energizes (None if off or already energized).
    pub fn pending_energize(&self, port: PortId) -> Option<SimTime> {
        self.port(port).and_then(|p| p.energize_at)
    }

    /// Note that an outlet actually energized (integration layer calls
    /// this when it applies [`PortEffect::EnergizeAt`]).
    pub fn mark_energized(&mut self, port: PortId) {
        if let Some(p) = self.port_mut(port) {
            p.energize_at = None;
        }
    }

    /// Command a port on. Returns the energize effect, sequenced per
    /// inlet so simultaneous power-ups stagger.
    pub fn power_on(&mut self, now: SimTime, port: PortId) -> Option<PortEffect> {
        let sequencing = self.sequencing;
        let inlet = Self::inlet_of(port);
        let slot = if sequencing {
            let at = now.max(self.inlet_next_slot[inlet]);
            self.inlet_next_slot[inlet] = at + SEQUENCE_STAGGER;
            at
        } else {
            now
        };
        let p = self.port_mut(port)?;
        if p.relay_on {
            return None; // already on
        }
        p.relay_on = true;
        p.energize_at = Some(slot);
        Some(PortEffect::EnergizeAt { port, at: slot })
    }

    /// Command a port off (immediate).
    pub fn power_off(&mut self, port: PortId) -> Option<PortEffect> {
        let p = self.port_mut(port)?;
        if !p.relay_on {
            return None;
        }
        p.relay_on = false;
        p.energize_at = None;
        Some(PortEffect::CutPower { port })
    }

    /// Pulse the reset switch ("allows the user to remotely reset any
    /// standard motherboard — preventing a full power down").
    pub fn reset(&mut self, port: PortId) -> Option<PortEffect> {
        let p = self.port_mut(port)?;
        p.relay_on.then_some(PortEffect::PulseReset { port })
    }

    /// Execute a [`NodeCommand`] with typed results: `Ok(Some(effect))`
    /// when the chassis changed state, `Ok(None)` when it was already in
    /// the requested state (idempotent no-op), `Err` when the command is
    /// invalid. The control plane's command bus uses this instead of the
    /// raw `power_on`/`power_off` pair so a mis-addressed command lands
    /// in the audit trail as failed rather than vanishing.
    pub fn execute(
        &mut self,
        now: SimTime,
        port: PortId,
        cmd: NodeCommand,
    ) -> Result<Option<PortEffect>, CommandError> {
        if usize::from(port.0) >= self.ports.len() {
            return Err(CommandError::NoSuchPort(port));
        }
        match cmd {
            NodeCommand::PowerOn => Ok(self.power_on(now, port)),
            NodeCommand::PowerOff => Ok(self.power_off(port)),
            NodeCommand::Reset => match self.reset(port) {
                Some(e) => Ok(Some(e)),
                None => Err(CommandError::PortNotPowered(port)),
            },
        }
    }

    /// Latest probe sample for a port.
    pub fn probe(&self, port: PortId) -> Option<ProbeReading> {
        self.port(port).map(|p| p.probe)
    }

    /// Record a probe sample (integration layer, each sampling tick).
    /// An injected [`ProbeFault`] distorts what the chassis retains: a
    /// stuck sensor ignores the new sample, a skewed one shifts it.
    pub fn record_probe(&mut self, port: PortId, reading: ProbeReading) {
        if let Some(p) = self.port_mut(port) {
            match p.probe_fault {
                Some(ProbeFault::Stuck) => {}
                Some(ProbeFault::Skewed { delta_c }) => {
                    p.probe = ProbeReading {
                        temp_c: reading.temp_c + delta_c,
                        ..reading
                    };
                }
                None => p.probe = reading,
            }
        }
    }

    /// Inject (or with `None`, repair) a temperature-probe fault.
    pub fn set_probe_fault(&mut self, port: PortId, fault: Option<ProbeFault>) {
        if let Some(p) = self.port_mut(port) {
            p.probe_fault = fault;
        }
    }

    /// The active probe fault on a port, if any.
    pub fn probe_fault(&self, port: PortId) -> Option<ProbeFault> {
        self.port(port).and_then(|p| p.probe_fault)
    }

    /// Crash and restart the chassis controller. The relay states are
    /// latched in hardware and survive, but the controller's volatile
    /// sequencing queue does not: outlets that were commanded on but had
    /// not energized yet lose their pending energization (the relay is
    /// considered closed by the restarted firmware, yet the staggered
    /// close never happens), and the per-inlet sequencing slots reset to
    /// `now`. Returns the ports whose pending energization was lost so
    /// the integration layer can cancel the scheduled relay closes.
    pub fn controller_restart(&mut self, now: SimTime) -> Vec<PortId> {
        let mut lost = Vec::new();
        for (i, p) in self.ports.iter_mut().enumerate() {
            if p.energize_at.take().is_some() {
                lost.push(PortId(i as u8));
            }
        }
        self.inlet_next_slot = [now; 2];
        for p in lost.iter() {
            self.feed_console(
                *p,
                b"\n[icebox] controller restart: pending energize lost\n",
            );
        }
        lost
    }

    /// Spray deterministic garbage bytes onto a port's serial capture —
    /// what a wedged controller UART does to the console log.
    pub fn feed_garbage(&mut self, port: PortId, seed: u64, len: usize) {
        let mut x = seed ^ 0x9e37_79b9_7f4a_7c15;
        let mut buf = Vec::with_capacity(len);
        for _ in 0..len {
            // splitmix64 step; take the low byte
            x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            buf.push((z ^ (z >> 31)) as u8);
        }
        self.feed_console(port, &buf);
    }

    /// Append serial console bytes from the node on `port`.
    pub fn feed_console(&mut self, port: PortId, bytes: &[u8]) {
        if let Some(p) = self.port_mut(port) {
            p.serial.write(bytes);
        }
    }

    /// The captured console log (most recent ≤16 KiB) — the post-mortem
    /// view.
    pub fn console_log(&self, port: PortId) -> String {
        self.port(port)
            .map(|p| p.serial.snapshot_string())
            .unwrap_or_default()
    }

    /// Bytes of console output lost to the 16 KiB cap.
    pub fn console_overflow(&self, port: PortId) -> u64 {
        self.port(port).map(|p| p.serial.overwritten()).unwrap_or(0)
    }

    /// Clear a port's console capture.
    pub fn clear_console(&mut self, port: PortId) {
        if let Some(p) = self.port_mut(port) {
            p.serial.clear();
        }
    }

    /// Peak combined inrush wattage on an inlet if the given outlets
    /// energize at the returned times, assuming each node draws
    /// `inrush_watts` for `inrush_secs` after energizing. Used by the
    /// E10 sequencing experiment.
    pub fn peak_inlet_watts(
        energize_times: &[(PortId, SimTime)],
        inlet: usize,
        inrush_watts: f64,
        inrush_secs: f64,
    ) -> f64 {
        let times: Vec<SimTime> = energize_times
            .iter()
            .filter(|(p, _)| Self::inlet_of(*p) == inlet)
            .map(|&(_, t)| t)
            .collect();
        let mut peak = 0.0f64;
        for &t in &times {
            // concurrent inrushes at instant t
            let overlap = times
                .iter()
                .filter(|&&u| u <= t && t.since(u) < SimDuration::from_secs_f64(inrush_secs))
                .count();
            peak = peak.max(overlap as f64 * inrush_watts);
        }
        peak
    }
}

impl Default for IceBox {
    fn default() -> Self {
        IceBox::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aux_outlets_always_on_and_unswitchable() {
        let ib = IceBox::new();
        assert!(ib.aux_outlet_on(0));
        assert!(ib.aux_outlet_on(1));
        assert!(!ib.aux_outlet_on(2), "only two aux outlets exist");
        // node-port commands cannot address them: PortId space is 0..10
        // and aux outlets have no PortId at all (compile-time absence)
    }

    #[test]
    fn ten_ports_two_inlets() {
        assert_eq!(IceBox::inlet_of(PortId(0)), 0);
        assert_eq!(IceBox::inlet_of(PortId(4)), 0);
        assert_eq!(IceBox::inlet_of(PortId(5)), 1);
        assert_eq!(IceBox::inlet_of(PortId(9)), 1);
    }

    #[test]
    fn power_on_sequences_within_an_inlet() {
        let mut ib = IceBox::new();
        let now = SimTime::ZERO;
        let e0 = ib.power_on(now, PortId(0)).unwrap();
        let e1 = ib.power_on(now, PortId(1)).unwrap();
        let e2 = ib.power_on(now, PortId(2)).unwrap();
        let times: Vec<SimTime> = [e0, e1, e2]
            .iter()
            .map(|e| match e {
                PortEffect::EnergizeAt { at, .. } => *at,
                _ => panic!("expected energize"),
            })
            .collect();
        assert_eq!(times[0], now);
        assert_eq!(times[1], now + SEQUENCE_STAGGER);
        assert_eq!(times[2], now + SEQUENCE_STAGGER * 2);
    }

    #[test]
    fn inlets_sequence_independently() {
        let mut ib = IceBox::new();
        let now = SimTime::ZERO;
        let PortEffect::EnergizeAt { at: a, .. } = ib.power_on(now, PortId(0)).unwrap() else {
            panic!()
        };
        let PortEffect::EnergizeAt { at: b, .. } = ib.power_on(now, PortId(5)).unwrap() else {
            panic!()
        };
        assert_eq!(a, now);
        assert_eq!(b, now, "different inlets do not queue behind each other");
    }

    #[test]
    fn sequencing_disabled_energizes_immediately() {
        let mut ib = IceBox::new();
        ib.set_sequencing(false);
        let now = SimTime::ZERO;
        for i in 0..5 {
            let PortEffect::EnergizeAt { at, .. } = ib.power_on(now, PortId(i)).unwrap() else {
                panic!()
            };
            assert_eq!(at, now);
        }
    }

    #[test]
    fn sequencing_caps_peak_inrush() {
        let mut seq = IceBox::new();
        let mut unseq = IceBox::new();
        unseq.set_sequencing(false);
        let collect = |ib: &mut IceBox| {
            (0..5u8)
                .filter_map(|i| ib.power_on(SimTime::ZERO, PortId(i)))
                .map(|e| match e {
                    PortEffect::EnergizeAt { port, at } => (port, at),
                    _ => panic!(),
                })
                .collect::<Vec<_>>()
        };
        let seq_times = collect(&mut seq);
        let unseq_times = collect(&mut unseq);
        // node inrush: 250 W for 0.3 s
        let p_seq = IceBox::peak_inlet_watts(&seq_times, 0, 250.0, 0.3);
        let p_unseq = IceBox::peak_inlet_watts(&unseq_times, 0, 250.0, 0.3);
        assert_eq!(
            p_unseq, 1250.0,
            "all five inrush together without sequencing"
        );
        assert_eq!(p_seq, 250.0, "staggered inrush never overlaps");
        assert!(
            p_unseq > INLET_CAPACITY_WATTS * 0.7,
            "unsequenced peak approaches the limit"
        );
    }

    #[test]
    fn double_power_on_is_idempotent() {
        let mut ib = IceBox::new();
        assert!(ib.power_on(SimTime::ZERO, PortId(0)).is_some());
        assert!(ib.power_on(SimTime::ZERO, PortId(0)).is_none());
        assert!(ib.relay_on(PortId(0)));
    }

    #[test]
    fn power_off_and_reset_semantics() {
        let mut ib = IceBox::new();
        // reset on a dark port does nothing
        assert!(ib.reset(PortId(3)).is_none());
        ib.power_on(SimTime::ZERO, PortId(3));
        assert_eq!(
            ib.reset(PortId(3)),
            Some(PortEffect::PulseReset { port: PortId(3) })
        );
        assert_eq!(
            ib.power_off(PortId(3)),
            Some(PortEffect::CutPower { port: PortId(3) })
        );
        assert!(ib.power_off(PortId(3)).is_none(), "already off");
    }

    #[test]
    fn invalid_port_is_rejected() {
        let mut ib = IceBox::new();
        assert!(ib.power_on(SimTime::ZERO, PortId(10)).is_none());
        assert!(ib.probe(PortId(200)).is_none());
    }

    #[test]
    fn execute_distinguishes_noop_from_rejection() {
        let mut ib = IceBox::new();
        let now = SimTime::ZERO;
        // a mis-addressed command is an error, not a silent nothing
        assert_eq!(
            ib.execute(now, PortId(10), NodeCommand::PowerOn),
            Err(CommandError::NoSuchPort(PortId(10)))
        );
        // state change reports its effect
        assert!(matches!(
            ib.execute(now, PortId(0), NodeCommand::PowerOn),
            Ok(Some(PortEffect::EnergizeAt { .. }))
        ));
        // repeating it is an idempotent Ok(None)
        assert_eq!(ib.execute(now, PortId(0), NodeCommand::PowerOn), Ok(None));
        // reset on a powered port pulses; on a dark port it is an error
        assert!(matches!(
            ib.execute(now, PortId(0), NodeCommand::Reset),
            Ok(Some(PortEffect::PulseReset { .. }))
        ));
        assert_eq!(
            ib.execute(now, PortId(1), NodeCommand::Reset),
            Err(CommandError::PortNotPowered(PortId(1)))
        );
        assert!(matches!(
            ib.execute(now, PortId(0), NodeCommand::PowerOff),
            Ok(Some(PortEffect::CutPower { .. }))
        ));
        assert_eq!(ib.execute(now, PortId(0), NodeCommand::PowerOff), Ok(None));
    }

    #[test]
    fn console_capture_keeps_last_16k() {
        let mut ib = IceBox::new();
        let p = PortId(2);
        // a crashing node spews 100 KiB
        for i in 0..2000 {
            ib.feed_console(p, format!("Oops line {i:05}\n").as_bytes());
        }
        let log = ib.console_log(p);
        assert!(log.len() <= SERIAL_LOG_CAPACITY);
        assert!(log.contains("Oops line 01999"), "latest output retained");
        assert!(!log.contains("Oops line 00000"), "oldest output discarded");
        assert!(ib.console_overflow(p) > 0);
        ib.clear_console(p);
        assert!(ib.console_log(p).is_empty());
    }

    #[test]
    fn controller_restart_keeps_relays_loses_pending_sequencing() {
        let mut ib = IceBox::new();
        let now = SimTime::ZERO;
        // port 0 energizes immediately; ports 1 and 2 queue behind it
        ib.power_on(now, PortId(0));
        ib.mark_energized(PortId(0));
        ib.power_on(now, PortId(1));
        ib.power_on(now, PortId(2));
        assert!(ib.pending_energize(PortId(1)).is_some());
        let crash_at = now + SimDuration::from_millis(100);
        let lost = ib.controller_restart(crash_at);
        assert_eq!(lost, vec![PortId(1), PortId(2)]);
        // relay latch survives the restart...
        assert!(ib.relay_on(PortId(0)));
        assert!(ib.relay_on(PortId(1)));
        // ...but the sequencing queue does not
        assert!(ib.pending_energize(PortId(1)).is_none());
        assert!(ib.console_log(PortId(1)).contains("controller restart"));
        // sequencing restarts fresh: a new power-on energizes at `now`
        let PortEffect::EnergizeAt { at, .. } = ib.power_on(crash_at, PortId(3)).unwrap() else {
            panic!()
        };
        assert_eq!(at, crash_at);
    }

    #[test]
    fn stuck_and_skewed_probes_distort_recordings() {
        let mut ib = IceBox::new();
        let p = PortId(4);
        let r = |t: f64| ProbeReading {
            temp_c: t,
            watts: 100.0,
            fan_rpm: 6000.0,
        };
        ib.record_probe(p, r(40.0));
        ib.set_probe_fault(p, Some(ProbeFault::Stuck));
        ib.record_probe(p, r(80.0));
        assert_eq!(ib.probe(p).unwrap().temp_c, 40.0, "stuck sensor froze");
        ib.set_probe_fault(p, Some(ProbeFault::Skewed { delta_c: -15.0 }));
        ib.record_probe(p, r(80.0));
        assert_eq!(ib.probe(p).unwrap().temp_c, 65.0, "skewed sensor misreads");
        ib.set_probe_fault(p, None);
        ib.record_probe(p, r(80.0));
        assert_eq!(ib.probe(p).unwrap().temp_c, 80.0, "repaired sensor tracks");
    }

    #[test]
    fn garbage_bytes_land_in_the_console_capture() {
        let mut ib = IceBox::new();
        let p = PortId(6);
        ib.feed_console(p, b"kernel: ok\n");
        ib.feed_garbage(p, 7, 256);
        assert!(ib.console_overflow(p) == 0);
        let log = ib.console_log(p);
        assert!(log.contains("kernel: ok"), "real output survives");
        // identical seeds produce identical garbage (determinism)
        let mut ib2 = IceBox::new();
        ib2.feed_garbage(p, 7, 256);
        let mut ib3 = IceBox::new();
        ib3.feed_garbage(p, 7, 256);
        assert_eq!(ib2.console_log(p), ib3.console_log(p));
    }

    #[test]
    fn probes_store_latest_reading() {
        let mut ib = IceBox::new();
        let p = PortId(7);
        ib.record_probe(
            p,
            ProbeReading {
                temp_c: 51.0,
                watts: 180.0,
                fan_rpm: 6000.0,
            },
        );
        ib.record_probe(
            p,
            ProbeReading {
                temp_c: 53.5,
                watts: 190.0,
                fan_rpm: 5900.0,
            },
        );
        let r = ib.probe(p).unwrap();
        assert_eq!(r.temp_c, 53.5);
        assert_eq!(r.fan_rpm, 5900.0);
    }
}
