//! The ICE Box™ chassis model (paper §3).
//!
//! "Each ICE Box provides power to 10 compute nodes and two auxiliary
//! devices. Two 15A power inlets each provide power to five nodes and
//! one auxiliary device. Whereas the node outlets can be power-cycled on
//! demand, the auxiliary outlets are powered on and stay on as long as
//! the ICE Box is receiving power. ... During the power up procedure,
//! ICE Box also automatically sequences power, reducing the risk of
//! power spikes."
//!
//! Plus per-node capabilities: a temperature probe, a power probe, a
//! reset switch, and serial console capture with "logging and buffering
//! (up to 16k) of the output on each serial device" for post-mortem
//! analysis. All of it is remotely drivable over the SIMP (serial) and
//! NIMP (network) command protocols and an SNMP-style OID table.
//!
//! The chassis is deliberately *stateless about the nodes themselves*:
//! executing a command yields [`PortEffect`]s (energize outlet X at time
//! T, pulse reset on port Y) that the cluster integration layer applies
//! to the simulated [`cwx_hw::NodeHardware`]. That mirrors reality — the
//! real box switches relays and samples probes; the node is a separate
//! machine.

#![warn(missing_docs)]

pub mod chassis;
pub mod protocol;
pub mod session;
pub mod snmp;

pub use chassis::{
    CommandError, IceBox, NodeCommand, PortEffect, PortId, ProbeFault, ProbeReading, NODE_PORTS,
    SERIAL_LOG_CAPACITY,
};
pub use protocol::{
    parse_nimp, parse_simp, render_response, Command, PortSel, ProtoError, Response,
};
pub use session::{SessionManager, MGMT_PORT_BASE};
