//! SNMP-style management surface (paper §3.4: "the ICE Box is SNMP
//! compliant, so ICE Boxes can be controlled through standard SNMP
//! management software").
//!
//! A miniature SNMP agent: a table of OIDs under a private enterprise
//! prefix, with `get`, `set` and `walk` (get-next iteration). Relay
//! state is read-write; probes are read-only.

use crate::chassis::{IceBox, PortEffect, PortId, NODE_PORTS};
use cwx_util::time::SimTime;

/// The enterprise prefix all ICE Box OIDs live under
/// (`iso.org.dod.internet.private.enterprises.<lnxi>`).
pub const ENTERPRISE_PREFIX: &str = "1.3.6.1.4.1.7777";

/// Typed SNMP values.
#[derive(Debug, Clone, PartialEq)]
pub enum SnmpValue {
    /// INTEGER.
    Int(i64),
    /// Gauge (floating-point convenience for probes).
    Gauge(f64),
    /// OCTET STRING.
    Str(String),
}

/// SNMP operation errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnmpError {
    /// OID does not exist.
    NoSuchObject,
    /// OID exists but is read-only.
    NotWritable,
    /// Value has the wrong type for the OID.
    WrongType,
}

impl std::fmt::Display for SnmpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnmpError::NoSuchObject => write!(f, "noSuchObject"),
            SnmpError::NotWritable => write!(f, "notWritable"),
            SnmpError::WrongType => write!(f, "wrongType"),
        }
    }
}

impl std::error::Error for SnmpError {}

/// Columns in the port table.
const COL_RELAY: u32 = 1;
const COL_TEMP: u32 = 2;
const COL_WATTS: u32 = 3;
const COL_FAN: u32 = 4;

fn oid_for(col: u32, port: u8) -> String {
    format!("{ENTERPRISE_PREFIX}.1.{col}.{port}")
}

/// Parse `<prefix>.1.<col>.<port>`.
fn parse_oid(oid: &str) -> Option<(u32, u8)> {
    let rest = oid.strip_prefix(ENTERPRISE_PREFIX)?.strip_prefix(".1.")?;
    let (col, port) = rest.split_once('.')?;
    let col: u32 = col.parse().ok()?;
    let port: u8 = port.parse().ok()?;
    ((1..=4).contains(&col) && (port as usize) < NODE_PORTS).then_some((col, port))
}

/// GET an OID.
pub fn get(ib: &IceBox, oid: &str) -> Result<SnmpValue, SnmpError> {
    if oid == format!("{ENTERPRISE_PREFIX}.2.0") {
        return Ok(SnmpValue::Str(ib.firmware_version().to_string()));
    }
    let (col, port) = parse_oid(oid).ok_or(SnmpError::NoSuchObject)?;
    let p = PortId(port);
    match col {
        COL_RELAY => Ok(SnmpValue::Int(ib.relay_on(p) as i64)),
        COL_TEMP => Ok(SnmpValue::Gauge(
            ib.probe(p).ok_or(SnmpError::NoSuchObject)?.temp_c,
        )),
        COL_WATTS => Ok(SnmpValue::Gauge(
            ib.probe(p).ok_or(SnmpError::NoSuchObject)?.watts,
        )),
        COL_FAN => Ok(SnmpValue::Gauge(
            ib.probe(p).ok_or(SnmpError::NoSuchObject)?.fan_rpm,
        )),
        _ => Err(SnmpError::NoSuchObject),
    }
}

/// SET an OID. Only the relay column is writable; returns the effect to
/// apply (None when the relay is already in the requested state).
pub fn set(
    ib: &mut IceBox,
    now: SimTime,
    oid: &str,
    value: &SnmpValue,
) -> Result<Option<PortEffect>, SnmpError> {
    let (col, port) = parse_oid(oid).ok_or(SnmpError::NoSuchObject)?;
    if col != COL_RELAY {
        return Err(SnmpError::NotWritable);
    }
    let SnmpValue::Int(v) = value else {
        return Err(SnmpError::WrongType);
    };
    let p = PortId(port);
    Ok(match v {
        0 => ib.power_off(p),
        _ => ib.power_on(now, p),
    })
}

/// Walk the whole port table in OID order: `(oid, value)` pairs.
pub fn walk(ib: &IceBox) -> Vec<(String, SnmpValue)> {
    let mut out = Vec::with_capacity(4 * NODE_PORTS + 1);
    for col in 1..=4u32 {
        for port in 0..NODE_PORTS as u8 {
            let oid = oid_for(col, port);
            if let Ok(v) = get(ib, &oid) {
                out.push((oid, v));
            }
        }
    }
    out.push((
        format!("{ENTERPRISE_PREFIX}.2.0"),
        SnmpValue::Str(ib.firmware_version().into()),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chassis::ProbeReading;

    #[test]
    fn get_relay_and_probes() {
        let mut ib = IceBox::new();
        ib.power_on(SimTime::ZERO, PortId(3));
        ib.record_probe(
            PortId(3),
            ProbeReading {
                temp_c: 47.5,
                watts: 150.0,
                fan_rpm: 6000.0,
            },
        );
        assert_eq!(get(&ib, &oid_for(COL_RELAY, 3)).unwrap(), SnmpValue::Int(1));
        assert_eq!(
            get(&ib, &oid_for(COL_TEMP, 3)).unwrap(),
            SnmpValue::Gauge(47.5)
        );
        assert_eq!(
            get(&ib, &oid_for(COL_WATTS, 3)).unwrap(),
            SnmpValue::Gauge(150.0)
        );
        assert_eq!(
            get(&ib, &oid_for(COL_FAN, 3)).unwrap(),
            SnmpValue::Gauge(6000.0)
        );
    }

    #[test]
    fn version_scalar() {
        let ib = IceBox::new();
        assert_eq!(
            get(&ib, "1.3.6.1.4.1.7777.2.0").unwrap(),
            SnmpValue::Str("icebox-fw-2.3".into())
        );
    }

    #[test]
    fn set_relay_produces_effects() {
        let mut ib = IceBox::new();
        let eff = set(
            &mut ib,
            SimTime::ZERO,
            &oid_for(COL_RELAY, 2),
            &SnmpValue::Int(1),
        )
        .unwrap();
        assert!(matches!(
            eff,
            Some(PortEffect::EnergizeAt {
                port: PortId(2),
                ..
            })
        ));
        assert!(ib.relay_on(PortId(2)));
        let eff = set(
            &mut ib,
            SimTime::ZERO,
            &oid_for(COL_RELAY, 2),
            &SnmpValue::Int(0),
        )
        .unwrap();
        assert_eq!(eff, Some(PortEffect::CutPower { port: PortId(2) }));
    }

    #[test]
    fn probes_are_read_only() {
        let mut ib = IceBox::new();
        assert_eq!(
            set(
                &mut ib,
                SimTime::ZERO,
                &oid_for(COL_TEMP, 0),
                &SnmpValue::Gauge(1.0)
            ),
            Err(SnmpError::NotWritable)
        );
    }

    #[test]
    fn type_checking_on_set() {
        let mut ib = IceBox::new();
        assert_eq!(
            set(
                &mut ib,
                SimTime::ZERO,
                &oid_for(COL_RELAY, 0),
                &SnmpValue::Str("on".into())
            ),
            Err(SnmpError::WrongType)
        );
    }

    #[test]
    fn unknown_oids_rejected() {
        let ib = IceBox::new();
        assert_eq!(get(&ib, "1.3.6.1.2.1.1.1.0"), Err(SnmpError::NoSuchObject));
        assert_eq!(get(&ib, &oid_for(9, 0)), Err(SnmpError::NoSuchObject));
        assert_eq!(get(&ib, &oid_for(1, 10)), Err(SnmpError::NoSuchObject));
    }

    #[test]
    fn walk_covers_full_table() {
        let ib = IceBox::new();
        let rows = walk(&ib);
        assert_eq!(rows.len(), 4 * NODE_PORTS + 1);
        // ordered by column then port
        assert_eq!(rows[0].0, oid_for(1, 0));
        assert_eq!(rows[NODE_PORTS].0, oid_for(2, 0));
        assert!(matches!(rows.last().unwrap().1, SnmpValue::Str(_)));
    }
}
