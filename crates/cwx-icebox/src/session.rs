//! Remote access sessions (paper §3.4).
//!
//! "Furthermore, the ICE Box provides access via telnet and ssh (v1 &
//! v2) and native IP filtering can be used for higher security. Telnet
//! and ssh connections can be established either with the ICE Box or
//! with each individual device connected to the ICE Box using specific
//! port numbers."
//!
//! The model: a [`SessionManager`] owns the access policy (IP allowlist,
//! credentials, protocol enablement) and the TCP port map. Port
//! [`MGMT_PORT_BASE`] is the box's own command shell (SIMP grammar);
//! ports `CONSOLE_PORT_BASE + n` attach straight to device `n`'s serial
//! console. Sessions are typed handles the transport layer (or a test)
//! drives with lines of input.

use std::collections::BTreeMap;

use crate::chassis::{IceBox, PortId, NODE_PORTS};
use crate::protocol::{parse_simp, render_response, Command, Response};

/// TCP port of the box's own management shell.
pub const MGMT_PORT_BASE: u16 = 23;
/// TCP port attached to device 0's console; device `n` is `+n`.
pub const CONSOLE_PORT_BASE: u16 = 7001;

/// Transport protocol of a session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Proto {
    /// Cleartext telnet.
    Telnet,
    /// SSH protocol 1.
    SshV1,
    /// SSH protocol 2.
    SshV2,
}

/// A client IPv4 address (the filtering subject).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Ip(pub [u8; 4]);

impl Ip {
    /// Dotted-quad rendering.
    pub fn to_string_dotted(self) -> String {
        let [a, b, c, d] = self.0;
        format!("{a}.{b}.{c}.{d}")
    }
}

/// An allowlist rule: address + prefix length.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CidrRule {
    /// Network address.
    pub addr: Ip,
    /// Prefix length, 0..=32.
    pub prefix: u8,
}

impl CidrRule {
    /// Does `ip` fall within the rule?
    pub fn matches(&self, ip: Ip) -> bool {
        let p = self.prefix.min(32) as u32;
        if p == 0 {
            return true;
        }
        let a = u32::from_be_bytes(self.addr.0);
        let b = u32::from_be_bytes(ip.0);
        let mask = u32::MAX << (32 - p);
        (a & mask) == (b & mask)
    }
}

/// Session rejection reasons.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AccessError {
    /// Source IP not in the allowlist.
    IpFiltered(Ip),
    /// Wrong password.
    BadCredentials,
    /// The protocol is administratively disabled.
    ProtocolDisabled(Proto),
    /// No such TCP port on the box.
    NoSuchPort(u16),
    /// Too many concurrent sessions.
    TooManySessions,
}

impl std::fmt::Display for AccessError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AccessError::IpFiltered(ip) => {
                write!(f, "connection from {} filtered", ip.to_string_dotted())
            }
            AccessError::BadCredentials => write!(f, "authentication failed"),
            AccessError::ProtocolDisabled(p) => write!(f, "{p:?} disabled"),
            AccessError::NoSuchPort(p) => write!(f, "no service on port {p}"),
            AccessError::TooManySessions => write!(f, "session limit reached"),
        }
    }
}

impl std::error::Error for AccessError {}

/// What a session is attached to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Attachment {
    /// The box's management shell.
    Management,
    /// A device's serial console.
    Console(PortId),
}

/// An established session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionId(pub u32);

#[derive(Debug)]
struct Session {
    attachment: Attachment,
    proto: Proto,
    from: Ip,
}

/// The access layer of one ICE Box.
#[derive(Debug)]
pub struct SessionManager {
    allowlist: Vec<CidrRule>,
    password: String,
    telnet_enabled: bool,
    sshv1_enabled: bool,
    sshv2_enabled: bool,
    max_sessions: usize,
    sessions: BTreeMap<u32, Session>,
    next_id: u32,
    rejected: u64,
}

impl SessionManager {
    /// Defaults: open allowlist, password `icebox`, all protocols on,
    /// 16 concurrent sessions.
    pub fn new() -> Self {
        SessionManager {
            allowlist: vec![CidrRule {
                addr: Ip([0, 0, 0, 0]),
                prefix: 0,
            }],
            password: "icebox".to_string(),
            telnet_enabled: true,
            sshv1_enabled: true,
            sshv2_enabled: true,
            max_sessions: 16,
            sessions: BTreeMap::new(),
            next_id: 1,
            rejected: 0,
        }
    }

    /// Replace the allowlist ("native IP filtering ... for higher
    /// security"). An empty list denies everything.
    pub fn set_allowlist(&mut self, rules: Vec<CidrRule>) {
        self.allowlist = rules;
    }

    /// Change the password.
    pub fn set_password(&mut self, pw: &str) {
        self.password = pw.to_string();
    }

    /// Enable/disable a protocol (e.g. turn telnet off at secure sites).
    pub fn set_protocol_enabled(&mut self, proto: Proto, enabled: bool) {
        match proto {
            Proto::Telnet => self.telnet_enabled = enabled,
            Proto::SshV1 => self.sshv1_enabled = enabled,
            Proto::SshV2 => self.sshv2_enabled = enabled,
        }
    }

    /// Sessions currently open.
    pub fn active_sessions(&self) -> usize {
        self.sessions.len()
    }

    /// Who is connected — the "see all, know all" audit view:
    /// `(id, attachment, protocol, source ip)` rows.
    pub fn who(&self) -> Vec<(SessionId, Attachment, Proto, Ip)> {
        self.sessions
            .iter()
            .map(|(&id, s)| (SessionId(id), s.attachment, s.proto, s.from))
            .collect()
    }

    /// Connections rejected so far.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Resolve a TCP port to its attachment.
    pub fn attachment_for(port: u16) -> Option<Attachment> {
        if port == MGMT_PORT_BASE || port == 22 {
            return Some(Attachment::Management);
        }
        if (CONSOLE_PORT_BASE..CONSOLE_PORT_BASE + NODE_PORTS as u16).contains(&port) {
            return Some(Attachment::Console(PortId(
                (port - CONSOLE_PORT_BASE) as u8,
            )));
        }
        None
    }

    /// Attempt to open a session.
    pub fn connect(
        &mut self,
        from: Ip,
        proto: Proto,
        tcp_port: u16,
        password: &str,
    ) -> Result<SessionId, AccessError> {
        let reject = |this: &mut Self, e: AccessError| {
            this.rejected += 1;
            Err(e)
        };
        if !self.allowlist.iter().any(|r| r.matches(from)) {
            return reject(self, AccessError::IpFiltered(from));
        }
        let enabled = match proto {
            Proto::Telnet => self.telnet_enabled,
            Proto::SshV1 => self.sshv1_enabled,
            Proto::SshV2 => self.sshv2_enabled,
        };
        if !enabled {
            return reject(self, AccessError::ProtocolDisabled(proto));
        }
        let Some(attachment) = Self::attachment_for(tcp_port) else {
            return reject(self, AccessError::NoSuchPort(tcp_port));
        };
        if password != self.password {
            return reject(self, AccessError::BadCredentials);
        }
        if self.sessions.len() >= self.max_sessions {
            return reject(self, AccessError::TooManySessions);
        }
        let id = self.next_id;
        self.next_id += 1;
        self.sessions.insert(
            id,
            Session {
                attachment,
                proto,
                from,
            },
        );
        Ok(SessionId(id))
    }

    /// Close a session.
    pub fn disconnect(&mut self, id: SessionId) -> bool {
        self.sessions.remove(&id.0).is_some()
    }

    /// Drive one line of input through a session against a chassis.
    /// Management sessions speak the SIMP grammar; console sessions
    /// return the captured log (input on a console session would be
    /// forwarded to the node's serial RX, which the simulation models as
    /// a no-op acknowledgement).
    pub fn input(
        &mut self,
        ib: &mut IceBox,
        now: cwx_util::time::SimTime,
        id: SessionId,
        line: &str,
    ) -> Option<String> {
        let session = self.sessions.get(&id.0)?;
        match session.attachment {
            Attachment::Management => {
                let out = match parse_simp(line) {
                    Ok(Command::Status) => {
                        let rows = (0..NODE_PORTS as u8)
                            .map(|i| {
                                let p = PortId(i);
                                (p, ib.relay_on(p), ib.probe(p).unwrap_or_default())
                            })
                            .collect();
                        render_response(None, &Response::Status(rows))
                    }
                    Ok(Command::Version) => {
                        render_response(None, &Response::Version(ib.firmware_version().into()))
                    }
                    Ok(Command::PowerOn(sel)) => {
                        for p in expand(sel) {
                            ib.power_on(now, p);
                        }
                        render_response(None, &Response::Ok)
                    }
                    Ok(Command::PowerOff(sel)) => {
                        for p in expand(sel) {
                            ib.power_off(p);
                        }
                        render_response(None, &Response::Ok)
                    }
                    Ok(Command::Console(p)) => {
                        render_response(None, &Response::Console(ib.console_log(p)))
                    }
                    Ok(_) => render_response(None, &Response::Ok),
                    Err(e) => render_response(None, &Response::Err(e.to_string())),
                };
                Some(out)
            }
            Attachment::Console(p) => Some(ib.console_log(p)),
        }
    }
}

fn expand(sel: crate::protocol::PortSel) -> Vec<PortId> {
    match sel {
        crate::protocol::PortSel::All => (0..NODE_PORTS as u8).map(PortId).collect(),
        crate::protocol::PortSel::One(p) => vec![p],
    }
}

impl Default for SessionManager {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cwx_util::time::SimTime;

    const HOME: Ip = Ip([10, 0, 0, 5]);

    #[test]
    fn cidr_matching() {
        let lab = CidrRule {
            addr: Ip([10, 0, 0, 0]),
            prefix: 24,
        };
        assert!(lab.matches(Ip([10, 0, 0, 99])));
        assert!(!lab.matches(Ip([10, 0, 1, 1])));
        let all = CidrRule {
            addr: Ip([0, 0, 0, 0]),
            prefix: 0,
        };
        assert!(all.matches(Ip([192, 168, 1, 1])));
        let host = CidrRule {
            addr: HOME,
            prefix: 32,
        };
        assert!(host.matches(HOME));
        assert!(!host.matches(Ip([10, 0, 0, 6])));
    }

    #[test]
    fn ip_filtering_rejects_outsiders() {
        let mut sm = SessionManager::new();
        sm.set_allowlist(vec![CidrRule {
            addr: Ip([10, 0, 0, 0]),
            prefix: 8,
        }]);
        assert!(sm
            .connect(Ip([10, 1, 2, 3]), Proto::SshV2, MGMT_PORT_BASE, "icebox")
            .is_ok());
        assert_eq!(
            sm.connect(Ip([192, 168, 0, 1]), Proto::SshV2, MGMT_PORT_BASE, "icebox"),
            Err(AccessError::IpFiltered(Ip([192, 168, 0, 1])))
        );
        assert_eq!(sm.rejected(), 1);
    }

    #[test]
    fn credentials_and_protocol_gates() {
        let mut sm = SessionManager::new();
        assert_eq!(
            sm.connect(HOME, Proto::Telnet, MGMT_PORT_BASE, "wrong"),
            Err(AccessError::BadCredentials)
        );
        sm.set_protocol_enabled(Proto::Telnet, false);
        assert_eq!(
            sm.connect(HOME, Proto::Telnet, MGMT_PORT_BASE, "icebox"),
            Err(AccessError::ProtocolDisabled(Proto::Telnet))
        );
        // ssh still fine
        assert!(sm
            .connect(HOME, Proto::SshV2, MGMT_PORT_BASE, "icebox")
            .is_ok());
    }

    #[test]
    fn per_device_ports_attach_to_consoles() {
        assert_eq!(
            SessionManager::attachment_for(MGMT_PORT_BASE),
            Some(Attachment::Management)
        );
        assert_eq!(
            SessionManager::attachment_for(22),
            Some(Attachment::Management)
        );
        assert_eq!(
            SessionManager::attachment_for(CONSOLE_PORT_BASE + 3),
            Some(Attachment::Console(PortId(3)))
        );
        assert_eq!(SessionManager::attachment_for(CONSOLE_PORT_BASE + 10), None);
        assert_eq!(SessionManager::attachment_for(80), None);
    }

    #[test]
    fn management_session_executes_commands() {
        let mut sm = SessionManager::new();
        let mut ib = IceBox::new();
        let sid = sm
            .connect(HOME, Proto::SshV2, MGMT_PORT_BASE, "icebox")
            .unwrap();
        let out = sm.input(&mut ib, SimTime::ZERO, sid, "POWER ON 4").unwrap();
        assert!(out.starts_with("OK"));
        assert!(ib.relay_on(PortId(4)));
        let out = sm.input(&mut ib, SimTime::ZERO, sid, "BOGUS").unwrap();
        assert!(out.starts_with("ERR"));
        assert!(sm.disconnect(sid));
        assert!(!sm.disconnect(sid));
        assert!(sm.input(&mut ib, SimTime::ZERO, sid, "STATUS").is_none());
    }

    #[test]
    fn console_session_reads_device_output() {
        let mut sm = SessionManager::new();
        let mut ib = IceBox::new();
        ib.feed_console(PortId(2), b"LILO boot:\n");
        let sid = sm
            .connect(HOME, Proto::Telnet, CONSOLE_PORT_BASE + 2, "icebox")
            .unwrap();
        let out = sm.input(&mut ib, SimTime::ZERO, sid, "").unwrap();
        assert!(out.contains("LILO boot:"));
    }

    #[test]
    fn who_lists_active_sessions() {
        let mut sm = SessionManager::new();
        let a = sm
            .connect(HOME, Proto::SshV2, MGMT_PORT_BASE, "icebox")
            .unwrap();
        let _b = sm
            .connect(
                Ip([10, 0, 0, 9]),
                Proto::Telnet,
                CONSOLE_PORT_BASE,
                "icebox",
            )
            .unwrap();
        let who = sm.who();
        assert_eq!(who.len(), 2);
        assert!(who.iter().any(|(id, at, proto, ip)| {
            *id == a && *at == Attachment::Management && *proto == Proto::SshV2 && *ip == HOME
        }));
        assert_eq!(sm.active_sessions(), 2);
    }

    #[test]
    fn session_limit_enforced() {
        let mut sm = SessionManager::new();
        for _ in 0..16 {
            sm.connect(HOME, Proto::SshV2, MGMT_PORT_BASE, "icebox")
                .unwrap();
        }
        assert_eq!(
            sm.connect(HOME, Proto::SshV2, MGMT_PORT_BASE, "icebox"),
            Err(AccessError::TooManySessions)
        );
    }
}
